"""E6 — Comparing against the existing transfer options.

Size sweep NEU -> NUS across the data-movement options a 2013 cloud user
actually had: staging through the cloud object store (the only native
offering), a plain endpoint-to-endpoint copy, a Globus-Online-style tuned
transfer, and the environment-aware system. Reproduced shape: blob
staging is the slowest by a multiple (two passes over the data, per-op
ceilings, HTTP); the tuned grid-era tool sits in between; the managed
system wins, with the margin growing with size.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.baselines import BlobRelay, EndPoint2EndPoint, GridFtpLike
from repro.core.strategy import SageStrategy
from repro.simulation.units import GB, MB
from repro.workloads.synthetic import fresh_engine

SEED = 24006
SIZES = (64 * MB, 256 * MB, 1 * GB, 2 * GB)
STRATEGIES = (
    ("AzureBlobs", lambda: BlobRelay()),
    ("EndPoint2EndPoint", lambda: EndPoint2EndPoint(streams=4)),
    ("GlobusOnline-like", lambda: GridFtpLike()),
    ("GEO-SAGE", lambda: SageStrategy(n_nodes=10)),
)


def run_grid():
    grid = {}
    for size in SIZES:
        for name, make in STRATEGIES:
            engine = fresh_engine(seed=SEED, learning_phase=180.0)
            grid[(size, name)] = make().run(engine, "NEU", "NUS", size).seconds
    return grid


@pytest.mark.benchmark(group="e6")
def test_e6_vs_existing_solutions(benchmark, report):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        [size / MB] + [grid[(size, name)] for name, _ in STRATEGIES]
        for size in SIZES
    ]
    table = render_table(
        ["size MB"] + [name for name, _ in STRATEGIES],
        rows,
        title="E6 — transfer time (s) NEU->NUS by solution",
        precision=1,
    )

    rec = ExperimentRecord("E6", "Comparison with existing solutions", SEED)
    largest = SIZES[-1]
    sage = grid[(largest, "GEO-SAGE")]
    rec.check(
        "GEO-SAGE is the fastest option at every size above 64 MB",
        all(
            grid[(s, "GEO-SAGE")] <= min(grid[(s, n)] for n, _ in STRATEGIES[:-1])
            for s in SIZES[1:]
        ),
    )
    rec.check(
        "blob staging is slowest by a multiple",
        grid[(largest, "AzureBlobs")] > 2.0 * sage,
        f"{grid[(largest, 'AzureBlobs')] / sage:.1f}x slower than GEO-SAGE",
    )
    rec.check(
        "large gain over the plain endpoint-to-endpoint copy",
        grid[(largest, "EndPoint2EndPoint")] > 3.0 * sage,
        f"{grid[(largest, 'EndPoint2EndPoint')] / sage:.1f}x",
    )
    rec.check(
        "meaningful gain over the tuned grid-era tool",
        grid[(largest, "GlobusOnline-like")] > 1.05 * sage,
        f"{grid[(largest, 'GlobusOnline-like')] / sage:.2f}x",
    )
    margin_small = grid[(SIZES[0], "AzureBlobs")] / grid[(SIZES[0], "GEO-SAGE")]
    margin_large = grid[(largest, "AzureBlobs")] / sage
    rec.check(
        "blob staging is penalised at every size (fixed HTTP/staging "
        "overheads dominate small payloads; per-op ceilings large ones)",
        margin_small > 2.5 and margin_large > 2.5,
        f"{margin_small:.1f}x at {SIZES[0] / MB:.0f} MB, "
        f"{margin_large:.1f}x at {largest / MB:.0f} MB",
    )
    rec.note(
        "the testbed's reported ~5x over the default cloud offering falls "
        "between the two margins measured here"
    )
    report("E6", table, rec.render())
    rec.assert_shape()
