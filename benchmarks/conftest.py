"""Shared plumbing for the experiment benchmarks.

Each bench target regenerates one table/figure of the (reconstructed)
evaluation: it runs the simulation(s), prints the rows, writes them to
``benchmarks/results/<exp>.txt``, and asserts the expected qualitative
shape through :class:`repro.analysis.experiments.ExperimentRecord`.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def bench_dir():
    """Where ``BENCH_*.json`` trajectory records are published."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report():
    """Print an experiment's output and persist it to results/."""

    def _report(exp_id: str, *blocks: str) -> None:
        text = "\n\n".join(blocks)
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{exp_id.lower()}.txt").write_text(text + "\n")

    return _report


def run_until_done(engine, predicate, timeout=7 * 24 * 3600.0, step=10.0):
    """Advance simulated time until ``predicate()`` holds."""
    deadline = engine.sim.now + timeout
    while not predicate() and engine.sim.now < deadline:
        engine.run_until(min(engine.sim.now + step, deadline))
    if not predicate():
        raise TimeoutError("experiment did not converge before sim timeout")
