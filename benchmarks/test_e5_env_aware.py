"""E5 — Environment-aware transfers vs. simple parallel transfers.

Same payloads, same helper-VM count, two strategies: the decision-managed
transfer (which watches node health and achieved throughput, and re-plans
around problems) and the environment-unaware static parallel split. Both
runs experience the *same* mid-transfer degradation: two of the source
site's VMs drop to 20 % capacity partway through. Reproduced shape: the
gain of awareness grows with payload size and site distance, reaching
~20 % for multi-GB transfers between far datacenters.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.baselines import StaticParallel
from repro.core.decision import DecisionConfig
from repro.core.strategy import SageStrategy
from repro.simulation.units import GB, MB
from repro.workloads.synthetic import fresh_engine

SEED = 24005
SIZES = (256 * MB, 1 * GB, 4 * GB)
PAIRS = (("SUS", "NUS"), ("NEU", "NUS"))
N_NODES = 5


def run_one(strategy_name: str, src: str, dst: str, size: float) -> float:
    engine = fresh_engine(
        seed=SEED,
        spec={src: 8, dst: 8},
        learning_phase=180.0,
        decision_config=DecisionConfig(
            replan_interval=15.0, warmup=5.0, allow_multi_dc=False
        ),
    )
    # Injected fault: at 25 % of the naive expected duration, two of the
    # sender VMs degrade badly (same VMs, same time, in both arms).
    thr = engine.monitor.estimated_throughput(src, dst)
    eta = size / (thr * N_NODES)
    victims = engine.deployment.vms(src)[1:3]
    engine.sim.schedule(
        max(5.0, 0.25 * eta), lambda: [vm.degrade(0.2) for vm in victims]
    )
    if strategy_name == "sage":
        strat = SageStrategy(n_nodes=N_NODES, adaptive=True)
    else:
        strat = StaticParallel(n_nodes=N_NODES, streams=4)
    return strat.run(engine, src, dst, size).seconds


def run_grid():
    grid = {}
    for src, dst in PAIRS:
        for size in SIZES:
            grid[(src, dst, size, "sage")] = run_one("sage", src, dst, size)
            grid[(src, dst, size, "naive")] = run_one("naive", src, dst, size)
    return grid


@pytest.mark.benchmark(group="e5")
def test_e5_env_aware_vs_naive(benchmark, report):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    improvements = {}
    for src, dst in PAIRS:
        for size in SIZES:
            sage = grid[(src, dst, size, "sage")]
            naive = grid[(src, dst, size, "naive")]
            imp = (naive - sage) / naive
            improvements[(src, dst, size)] = imp
            rows.append(
                [f"{src}->{dst}", size / MB, naive, sage, 100 * imp]
            )
    table = render_table(
        ["pair", "size MB", "naive (s)", "GEO-SAGE (s)", "gain %"],
        rows,
        title="E5 — environment-aware vs simple parallel (2 senders degraded mid-way)",
        precision=1,
    )

    rec = ExperimentRecord(
        "E5", "Environment-aware wide-area transfers", SEED,
        parameters={"nodes": N_NODES, "fault": "2 senders to 20 %"},
    )
    large_far = improvements[("NEU", "NUS", 4 * GB)]
    rec.check(
        "awareness wins on large transfers between far sites",
        large_far > 0.10,
        f"{large_far:.0%} faster",
    )
    rec.check(
        "gain reaches the ~20 % band on the largest far transfer",
        large_far > 0.15,
        f"{large_far:.0%}",
    )
    rec.check(
        "gain grows with data size (far pair)",
        improvements[("NEU", "NUS", 4 * GB)]
        >= improvements[("NEU", "NUS", 256 * MB)],
    )
    rec.check(
        "never materially slower than the naive strategy",
        all(imp > -0.08 for imp in improvements.values()),
        f"worst {min(improvements.values()):.0%}",
    )
    report("E5", table, rec.render())
    rec.assert_shape()
