"""E11 — Fault injection and hard-failure recovery.

The scripted chaos scenario (two sender-VM crashes with restarts, one
60 s link blackhole, a batch-duplication window) against the identical
fault-free workload. Expected shape: both arms count every ingested
record exactly once — under faults because detection-driven replans,
stall-driven rerouting and at-least-once shipping with receiver dedup
close the gaps; the faulty arm pays for it in retried wide-area bytes
and recovery activity, never in data.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.config import ChaosConfig
from repro.faults import run_chaos
from repro.simulation.units import KB

SEED = 24011
DURATION = 240.0


def run_e11():
    faulty = run_chaos(ChaosConfig(seed=SEED, duration=DURATION))
    baseline = run_chaos(ChaosConfig(seed=SEED, duration=DURATION, inject=False))
    return faulty, baseline


@pytest.mark.benchmark(group="e11")
def test_e11_fault_recovery(benchmark, report):
    faulty, baseline = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    rows = []
    for name, r in (("chaos", faulty), ("fault-free", baseline)):
        rows.append(
            [
                name,
                r.ingested,
                r.counted,
                r.lost,
                r.double_counted,
                len(r.faults),
                r.retries,
                max(r.detection_latencies, default=0.0),
                r.wan_bytes / KB,
                f"${r.egress_usd:.4f}",
            ]
        )
    table = render_table(
        ["arm", "ingested", "counted", "lost", "doubled", "faults",
         "retries", "worst det (s)", "WAN KB", "egress"],
        rows,
        title="E11 — recovery under VM crashes + link blackhole "
        f"(2 sites -> NUS, {DURATION:.0f} s)",
    )

    rec = ExperimentRecord(
        "E11",
        "Fault-injection recovery: zero loss, zero double-counting",
        SEED,
        parameters={
            "scenario": "2 VM crashes (90 s outage) + 60 s blackhole + dup window",
            "detector": f"bound {faulty.detection_bound:.0f} s",
            "shipping": "reliable(sage), timeout 15 s, <=8 retries",
        },
    )
    rec.check(
        "chaos arm loses nothing and double-counts nothing",
        faulty.clean and faulty.abandoned == 0,
        f"lost {faulty.lost}, doubled {faulty.double_counted}, "
        f"abandoned {faulty.abandoned}",
    )
    rec.check(
        "goodput matches the fault-free arm record for record",
        faulty.ingested == baseline.ingested
        and faulty.counted == baseline.counted,
        f"{faulty.counted} vs {baseline.counted} records counted",
    )
    rec.check(
        "detection latency stays within the heartbeat bound",
        bool(faulty.detection_latencies)
        and max(faulty.detection_latencies) <= faulty.detection_bound,
        f"worst {max(faulty.detection_latencies, default=0.0):.1f} s "
        f"vs bound {faulty.detection_bound:.1f} s",
    )
    rec.check(
        "recovery is paid in wide-area bytes, not in data",
        faulty.retries > 0 and faulty.wan_bytes > baseline.wan_bytes,
        f"{faulty.retries} retries, "
        f"{(faulty.wan_bytes - baseline.wan_bytes) / KB:.1f} KB extra",
    )
    rec.check(
        "the baseline needed no recovery machinery at all",
        baseline.retries == 0 and baseline.suspicions == 0
        and not baseline.faults,
    )
    report("E11", table, rec.render())
    rec.assert_shape()
