"""A1 — Ablations of the design choices DESIGN.md calls out.

* **A1a — capacity learning.** The path selector's growth rule uses the
  monitor's learned per-link aggregate capacity. Arm 1 transfers with
  learning enabled (a warm-up transfer teaches the map); arm 2 has the
  learned capacities withheld, leaving only the static prior. Expected:
  learning never hurts, and helps once the prior misjudges a link.
* **A1b — estimator-in-the-loop.** E2 scores estimators offline; here the
  link model's strategy is swapped inside the full decision loop and
  scored on what the system actually uses it for: predicting transfer
  completion times. Expected: WSI's predictions are no worse than the
  last-sample strategy's.
* **A1c — adaptive re-planning.** Same managed transfer with the
  observe/re-plan loop on vs off, under an injected mid-transfer node
  degradation. Expected: adaptation recovers most of the lost time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.core.strategy import SageStrategy
from repro.monitor.agent import MonitorConfig
from repro.simulation.units import GB, MB
from repro.workloads.synthetic import fresh_engine

SEED = 24011
SPEC = {"NEU": 10, "WEU": 6, "EUS": 6, "NUS": 10}


@pytest.mark.benchmark(group="a1")
def test_a1a_capacity_learning(benchmark, report):
    def run_arm(learning: bool) -> float:
        engine = fresh_engine(seed=SEED, spec=SPEC, learning_phase=240.0)
        # Warm-up transfer: loads the direct link, teaching its capacity.
        warm = engine.decisions.transfer("NEU", "NUS", 1 * GB, n_nodes=8)
        while not warm.done:
            engine.run_until(engine.sim.now + 10)
        if not learning:
            engine.monitor.capacity_estimates.clear()
        t0 = engine.sim.now
        mt = engine.decisions.transfer("NEU", "NUS", 4 * GB, n_nodes=16)
        while not mt.done:
            engine.run_until(engine.sim.now + 10)
        return engine.sim.now - t0

    def run():
        return run_arm(True), run_arm(False)

    learned, prior_only = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["arm", "4 GB transfer (s)"],
        [["capacity learned", learned], ["static prior only", prior_only]],
        title="A1a — capacity-aware path growth (16 nodes, after warm-up)",
    )
    rec = ExperimentRecord("A1a", "Capacity learning ablation", SEED)
    rec.check(
        "learned capacities never slow the transfer",
        learned <= prior_only * 1.05,
        f"{learned:.0f}s vs {prior_only:.0f}s",
    )
    report("A1a", table, rec.render())
    rec.assert_shape()


@pytest.mark.benchmark(group="a1")
def test_a1b_estimator_in_the_loop(benchmark, report):
    strategies = ("WSI", "Monitor")

    def run():
        errors = {}
        for strategy in strategies:
            engine = fresh_engine(
                seed=SEED + 1,
                spec=SPEC,
                learning_phase=600.0,
                monitor_config=MonitorConfig(strategy=strategy),
            )
            errs = []
            for _ in range(8):
                # Single-node transfers isolate the estimator: the
                # prediction is size/estimate, so its error is exactly the
                # link model's error over the transfer's horizon.
                mt = engine.decisions.transfer(
                    "NEU", "NUS", 512 * MB, n_nodes=1, adaptive=False
                )
                while not mt.done:
                    engine.run_until(engine.sim.now + 10)
                if mt.prediction:
                    errs.append(abs(mt.elapsed - mt.prediction) / mt.elapsed)
                engine.run_until(engine.sim.now + 300.0)  # weather moves on
            errors[strategy] = float(np.mean(errs))
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["link-model strategy", "mean |predicted-measured|/measured"],
        [[s, f"{errors[s]:.1%}"] for s in strategies],
        title="A1b — completion-time prediction error by estimator",
    )
    rec = ExperimentRecord("A1b", "Estimator-in-the-loop ablation", SEED + 1)
    rec.check(
        "weighted integration predicts completion times comparably to "
        "trusting the last sample (transfers also feed the model accurate "
        "achieved-throughput samples, which narrows the offline gap of E2)",
        errors["WSI"] <= errors["Monitor"] * 1.25,
        f"WSI {errors['WSI']:.1%} vs Monitor {errors['Monitor']:.1%}",
    )
    rec.check(
        "in-the-loop prediction error is within the tolerable band",
        errors["WSI"] < 0.35,
        f"{errors['WSI']:.1%}",
    )
    report("A1b", table, rec.render())
    rec.assert_shape()


@pytest.mark.benchmark(group="a1")
def test_a1c_adaptive_replanning(benchmark, report):
    def run_arm(adaptive: bool) -> tuple[float, int]:
        engine = fresh_engine(seed=SEED + 2, spec=SPEC, learning_phase=240.0)
        victims = engine.deployment.vms("NEU")[1:4]
        engine.sim.schedule(20.0, lambda: [vm.degrade(0.15) for vm in victims])
        r = SageStrategy(n_nodes=6, adaptive=adaptive).run(
            engine, "NEU", "NUS", 2 * GB
        )
        return r.seconds, 0

    def run():
        return run_arm(True)[0], run_arm(False)[0]

    adaptive_t, frozen_t = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["arm", "2 GB transfer (s)"],
        [["adaptive re-planning", adaptive_t], ["plan frozen", frozen_t]],
        title="A1c — re-planning around 3 degraded senders (6 nodes)",
    )
    rec = ExperimentRecord("A1c", "Adaptive re-planning ablation", SEED + 2)
    rec.check(
        "re-planning recovers a large part of the degradation",
        adaptive_t < 0.75 * frozen_t,
        f"{adaptive_t:.0f}s vs {frozen_t:.0f}s",
    )
    report("A1c", table, rec.render())
    rec.assert_shape()
