"""E10 — Budget- and deadline-constrained scheduling.

The headline of cost/time-aware modelling: the application states *money*
(or *time*) and the system infers the resources. A 2 GB NEU -> NUS
transfer is repeated under a sweep of budgets and a sweep of deadlines.
Reproduced shape: realised cost never exceeds the budget beyond noise;
buying more budget buys time with diminishing returns until the option
curve saturates; looser deadlines buy money.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.core.strategy import SageStrategy
from repro.simulation.units import GB, HOUR
from repro.workloads.synthetic import fresh_engine

SEED = 24010
SIZE = 2 * GB
#: All six sites: budget buys helper nodes *and* relay paths, so money
#: keeps purchasing throughput well past the direct link's saturation.
SPEC = {"NEU": 14, "WEU": 8, "NUS": 14, "SUS": 8, "EUS": 8, "WUS": 8}


def realised_cost(result) -> float:
    return result.egress_usd + result.vm_seconds_busy * 0.06 / HOUR


def engine_30_nodes():
    from repro.core.decision import DecisionConfig

    return fresh_engine(
        seed=SEED,
        spec=SPEC,
        learning_phase=240.0,
        decision_config=DecisionConfig(max_nodes=30),
    )


def run_sweeps():
    # Determine the feasible cost range from the model once.
    probe = engine_30_nodes()
    thr = probe.monitor.estimated_throughput("NEU", "NUS")
    floor = probe.decisions.tradeoff.options(SIZE, thr, max_nodes=1)[0].usd

    budgets = [floor * f for f in (1.05, 1.15, 1.4, 2.2, 3.0)]
    budget_results = []
    for budget in budgets:
        engine = engine_30_nodes()
        r = SageStrategy(budget_usd=budget, adaptive=False).run(
            engine, "NEU", "NUS", SIZE
        )
        budget_results.append((budget, r.seconds, realised_cost(r)))

    deadlines = (60.0, 120.0, 240.0, 600.0, 1800.0)
    deadline_results = []
    for deadline in deadlines:
        engine = engine_30_nodes()
        r = SageStrategy(deadline_s=deadline, adaptive=False).run(
            engine, "NEU", "NUS", SIZE
        )
        deadline_results.append((deadline, r.seconds, realised_cost(r)))
    return budget_results, deadline_results


@pytest.mark.benchmark(group="e10")
def test_e10_budget_and_deadline(benchmark, report):
    budget_results, deadline_results = benchmark.pedantic(
        run_sweeps, rounds=1, iterations=1
    )
    btable = render_table(
        ["budget $", "time (s)", "realised $"],
        [[f"{b:.3f}", t, f"{c:.3f}"] for b, t, c in budget_results],
        title="E10a — 'I have B dollars': time bought by budget (2 GB NEU->NUS)",
        precision=1,
    )
    dtable = render_table(
        ["deadline (s)", "time (s)", "realised $"],
        [[int(d), t, f"{c:.3f}"] for d, t, c in deadline_results],
        title="E10b — 'I need it by T': money saved by looser deadlines",
        precision=1,
    )

    rec = ExperimentRecord("E10", "Budget/deadline constrained scheduling", SEED)
    rec.check(
        "realised cost stays within each budget (±15 % model error)",
        all(c <= b * 1.15 for b, _, c in budget_results),
        str([f"{c:.3f}<={b:.3f}" for b, _, c in budget_results]),
    )
    times = [t for _, t, _ in budget_results]
    rec.check(
        "more budget never buys a slower transfer",
        all(times[i + 1] <= times[i] * 1.05 for i in range(len(times) - 1)),
    )
    rec.check(
        "the budget lever is material",
        times[-1] < 0.7 * times[0],
        f"{times[0]:.0f}s -> {times[-1]:.0f}s",
    )
    rec.check(
        "time saturates once the option curve is exhausted",
        abs(times[-1] - times[-2]) / times[-2] < 0.15,
    )
    met = [(d, t) for d, t, _ in deadline_results]
    rec.check(
        "feasible deadlines are met (within model error)",
        all(t <= d * 1.25 for d, t in met if d >= 120.0),
        str([f"{t:.0f}/{d:.0f}" for d, t in met]),
    )
    dcosts = [c for _, _, c in deadline_results]
    rec.check(
        "looser deadlines cost no more",
        all(dcosts[i + 1] <= dcosts[i] * 1.05 for i in range(len(dcosts) - 1)),
        str([f"{c:.3f}" for c in dcosts]),
    )
    report("E10", btable, dtable, rec.render())
    rec.assert_shape()
