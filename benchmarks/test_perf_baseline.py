"""Perf baseline — per-stage attribution of the streaming hot path.

Runs the canonical sensor-fusion workload on the E9 deployment fully
instrumented and pins the stage profiler's contract:

* exclusive per-stage shares sum to 1.0 over the attributed time;
* attribution covers >= 90% of the externally measured wall clock;
* every hot-path stage appears (event dispatch, site drain, operator
  apply, window close, batching, shipping send, global merge);
* the records/events throughput meters are live.

The run publishes ``BENCH_perf_baseline.json`` via the canonical
:mod:`repro.obs.bench` writer — the trajectory record the ROADMAP's
perf work is judged against.
"""

from __future__ import annotations

import math
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.obs import Observer
from repro.obs.bench import (
    BenchRecord,
    compare_to_baseline,
    read_bench,
    write_bench,
)
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import SageShipping
from repro.workloads.sensors import sensor_fusion_job
from repro.workloads.synthetic import fresh_engine

SEED = 24013
SPEC = {"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3}
SITES = ("NEU", "WEU", "EUS")
DURATION = 120.0

#: Committed per-record-plane recording the columnar plane is gated
#: against (repo root; see ROADMAP item 1).
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_perf_baseline.json"
MIN_SPEEDUP = 10.0

EXPECTED_STAGES = {
    "sim.loop",
    "sim.dispatch",
    "site.drain",
    "site.window",
    "site.batch",
    "ship.send",
    "agg.merge",
    "op.MapOperator",
}


def run_baseline():
    obs = Observer()
    # Wall is measured around *everything* — engine construction and the
    # monitoring learning phase included — so coverage is judged against
    # the whole run, not a flattering subset.
    wall0 = time.perf_counter()
    engine = fresh_engine(
        seed=SEED, spec=SPEC, learning_phase=120.0, observer=obs
    )
    runtime = GeoStreamRuntime(
        engine,
        sensor_fusion_job(site_regions=list(SITES), aggregation_region="NUS"),
        SageShipping.factory(n_nodes=2),
    )
    runtime.run_for(DURATION)
    wall = time.perf_counter() - wall0
    processed = sum(s.records_processed for s in runtime.sites.values())
    return obs.profiler.snapshot(wall_seconds=wall), processed


@pytest.mark.benchmark(group="perf")
def test_perf_baseline(benchmark, report, bench_dir):
    profile, processed = benchmark.pedantic(
        run_baseline, rounds=1, iterations=1
    )
    stages = profile["stages"]
    meters = profile["meters"]
    share_sum = sum(s["share"] for s in stages.values())

    bench = BenchRecord.from_profile(
        "perf_baseline",
        "sensor-fusion-e9",
        SEED,
        profile,
        config={
            "workload": "sensors",
            "duration": DURATION,
            "sites": list(SITES),
            "spec": SPEC,
        },
        records=meters.get("records", {}).get("count", 0.0),
        events=meters.get("events", {}).get("count", 0.0),
        extras={"records_processed": processed},
    )
    path = write_bench(bench, bench_dir)
    data = read_bench(path)  # round-trip enforces schema + share sum

    table = render_table(
        ["stage", "self (s)", "share %", "calls"],
        [
            [name, s["seconds"], 100.0 * s["share"], s["calls"]]
            for name, s in stages.items()
        ],
        title="Perf baseline — exclusive per-stage wall attribution",
    )

    rec = ExperimentRecord(
        "PERF", "Stage attribution baseline on the E9 deployment", SEED,
        parameters={"duration": f"{DURATION:.0f} s"},
    )
    rec.check(
        "exclusive stage shares sum to 1.0",
        math.isclose(share_sum, 1.0, abs_tol=1e-6),
        f"sum {share_sum:.8f}",
    )
    # The columnar record plane shrank the hot path ~12×, so fixed
    # engine construction is now a visible share of an ~80 ms run;
    # 80% coverage of the whole wall still pins the attribution.
    rec.check(
        "attribution covers >= 80% of the measured wall clock",
        profile["coverage"] >= 0.80,
        f"coverage {profile['coverage']:.3f}",
    )
    rec.check(
        "every hot-path stage is attributed",
        EXPECTED_STAGES <= set(stages),
        f"missing {sorted(EXPECTED_STAGES - set(stages))}" if
        not EXPECTED_STAGES <= set(stages) else
        f"{len(stages)} stages attributed",
    )
    rec.check(
        "throughput meters are live",
        data["records_per_s"] > 0 and data["events_per_s"] > 0,
        f"{data['records_per_s']:,.0f} records/s, "
        f"{data['events_per_s']:,.0f} events/s (wall)",
    )
    # Regression gate: the columnar record plane must hold its speedup
    # over the committed per-record recording (same config_digest, so
    # the comparison cannot be faked by a config drift).
    gate = compare_to_baseline(data, BASELINE, min_speedup=MIN_SPEEDUP)
    rec.check(
        f"columnar throughput >= {MIN_SPEEDUP:.0f}x the recorded "
        "per-record baseline",
        gate is None or gate["speedup"] >= MIN_SPEEDUP,
        "no baseline recorded — gate skipped" if gate is None else
        f"{gate['current']:,.0f} vs {gate['baseline']:,.0f} records/s "
        f"({gate['speedup']:.1f}x)",
    )
    report("PERF", table, rec.render())
    rec.assert_shape()
