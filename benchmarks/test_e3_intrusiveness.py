"""E3 — Evaluating the intrusiveness control.

1 GB NEU -> NUS while varying (a) how many VMs participate (1–5) and
(b) what fraction of each VM's resources the transfer may take (the
intrusiveness parameter). Reproduced shape: transfer time falls both with
more nodes and with a larger resource share, with diminishing returns on
nodes — supporting the design choice of fine-grained resource control.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.core.strategy import SageStrategy
from repro.simulation.units import GB
from repro.workloads.synthetic import fresh_engine

SEED = 24003
INTRUSIVENESS = (0.05, 0.10, 0.25, 0.50, 1.00)
NODES = (1, 2, 3, 4, 5)
SIZE = 1 * GB


def run_grid():
    grid: dict[tuple[float, int], float] = {}
    for intr in INTRUSIVENESS:
        for n in NODES:
            engine = fresh_engine(
                seed=SEED, spec={"NEU": 6, "NUS": 6}, learning_phase=180.0
            )
            strat = SageStrategy(n_nodes=n, intrusiveness=intr, adaptive=False)
            grid[(intr, n)] = strat.run(engine, "NEU", "NUS", SIZE).seconds
    return grid


@pytest.mark.benchmark(group="e3")
def test_e3_intrusiveness(benchmark, report):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        [f"{intr:.0%}"] + [grid[(intr, n)] for n in NODES]
        for intr in INTRUSIVENESS
    ]
    table = render_table(
        ["intrusiveness"] + [f"{n} VM" for n in NODES],
        rows,
        title="E3 — transfer time (s) of 1 GB NEU->NUS",
        precision=1,
    )

    rec = ExperimentRecord(
        "E3", "Impact of intrusiveness on transfer time", SEED,
        parameters={"size": "1 GB", "pair": "NEU->NUS"},
    )
    rec.check(
        "higher intrusiveness reduces transfer time at every node count",
        all(
            grid[(INTRUSIVENESS[i], n)] >= grid[(INTRUSIVENESS[i + 1], n)] * 0.98
            for n in NODES
            for i in range(len(INTRUSIVENESS) - 1)
        ),
    )
    rec.check(
        "more nodes reduce transfer time at every intrusiveness level",
        all(
            grid[(intr, NODES[i])] >= grid[(intr, NODES[i + 1])] * 0.98
            for intr in INTRUSIVENESS
            for i in range(len(NODES) - 1)
        ),
    )
    # Diminishing returns: the 1→2 node gain exceeds the 4→5 node gain.
    gains_low = [
        grid[(intr, 1)] - grid[(intr, 2)] for intr in INTRUSIVENESS
    ]
    gains_high = [
        grid[(intr, 4)] - grid[(intr, 5)] for intr in INTRUSIVENESS
    ]
    rec.check(
        "adding nodes shows diminishing returns",
        all(lo >= hi for lo, hi in zip(gains_low, gains_high)),
    )
    rec.check(
        "a 5 % intrusiveness single-node transfer is far slower than full",
        grid[(0.05, 1)] > 5 * grid[(1.0, 1)],
        f"{grid[(0.05, 1)]:.0f}s vs {grid[(1.0, 1)]:.0f}s",
    )
    report("E3", table, rec.render())
    rec.assert_shape()
