"""E2 — Evaluating the performance prediction.

24 hours of minute-granularity throughput samples on the NEU->NUS link;
three sample-integration strategies (plus the EWMA ablation) predict what
the decision engine actually needs: the link's *mean deliverable
throughput over the next transfer* (a 15-minute horizon — transfers
planned from the model run for minutes, not for one sample interval).
Probe samples carry realistic measurement dispersion (~15 %: small probe
payloads over a WAN are noisy).

Reproduced shape: the last-sample "Monitor" strategy inherits every probe
fluctuation and loses; plain sliding integration (LSI) and weighted
integration (WSI) are close in calm periods; WSI is the smoothest and
lands in the ~10 % relative-error band the original reports as easily
tolerable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.cloud.deployment import CloudEnvironment
from repro.monitor.estimators import make_estimator
from repro.simulation.units import HOUR, MB, MINUTE

SEED = 24001
STRATEGIES = ("Monitor", "LSI", "WSI", "EWMA")
#: Horizon (in minutes) a planned transfer runs for — the prediction target.
HORIZON = 15
#: Relative dispersion of one probe measurement.
PROBE_NOISE = 0.15


def collect_trace():
    """A day of (observed sample, true link rate) pairs, one per minute."""
    env = CloudEnvironment(seed=SEED)
    src = env.provision("NEU", "Small")[0]
    dst = env.provision("NUS", "Small")[0]
    noise = env.sim.rngs.get("e2/observation-noise")
    observed, truth = [], []
    t = 0.0
    while t < 24 * HOUR:
        env.run_until(t)
        real = env.network.isolated_rate([src, dst], streams=4)
        observed.append(real * noise.lognormal(0.0, PROBE_NOISE))
        truth.append(real)
        t += MINUTE
    return np.array(observed), np.array(truth)


@pytest.mark.benchmark(group="e2")
def test_e2_prediction_accuracy(benchmark, report):
    observed, truth = benchmark.pedantic(collect_trace, rounds=1, iterations=1)
    # Prediction target: mean deliverable rate over the next HORIZON mins.
    kernel = np.ones(HORIZON) / HORIZON
    target_full = np.convolve(truth, kernel, mode="valid")  # target[i] = mean truth[i:i+H]
    n = len(target_full) - 1
    estimators = {name: make_estimator(name) for name in STRATEGIES}
    errors = {name: np.zeros(n) for name in STRATEGIES}
    estimates = {name: np.zeros(n) for name in STRATEGIES}
    for i in range(n):
        for name, est in estimators.items():
            est.update(i * MINUTE, observed[i])
            estimates[name][i] = est.mean
            target = target_full[i + 1]
            errors[name][i] = abs(est.mean - target) / target
    n = n + 1  # keep the hourly reshape arithmetic below unchanged

    # Hourly error profile (the 24-point series of the accuracy figure).
    hourly_rows = []
    per_hour = {name: errors[name][: (n - 1) // 60 * 60].reshape(-1, 60)
                for name in STRATEGIES}
    for h in range(per_hour["WSI"].shape[0]):
        hourly_rows.append(
            [h]
            + [100 * per_hour[name][h].mean() for name in ("Monitor", "LSI", "WSI")]
        )
    table_hourly = render_table(
        ["hour", "Monitor err %", "LSI err %", "WSI err %"],
        hourly_rows,
        title="E2a — hourly mean relative error of the link model",
        precision=1,
    )

    agg_rows = [
        [name, 100 * errors[name].mean(), 100 * np.percentile(errors[name], 95)]
        for name in STRATEGIES
    ]
    table_agg = render_table(
        ["strategy", "mean err %", "p95 err %"],
        agg_rows,
        title="E2b — aggregated approximation error (24 h)",
    )

    mean_err = {name: errors[name].mean() for name in STRATEGIES}
    smooth = {
        name: np.abs(np.diff(estimates[name])).mean() for name in STRATEGIES
    }
    rec = ExperimentRecord("E2", "Prediction accuracy of sample integration", SEED)
    rec.check(
        "WSI beats the Monitor (last-sample) strategy",
        mean_err["WSI"] < mean_err["Monitor"],
        f"WSI {mean_err['WSI']:.1%} vs Monitor {mean_err['Monitor']:.1%}",
    )
    rec.check(
        "WSI at least matches LSI overall",
        mean_err["WSI"] <= mean_err["LSI"] * 1.05,
        f"WSI {mean_err['WSI']:.1%} vs LSI {mean_err['LSI']:.1%}",
    )
    rec.check(
        "model error is tolerable (≈10-15 %)",
        mean_err["WSI"] < 0.18,
        f"{mean_err['WSI']:.1%}",
    )
    rec.check(
        "WSI produces the smoothest approximation",
        smooth["WSI"] <= min(smooth["Monitor"], smooth["LSI"]) * 1.05,
        f"mean |Δestimate| WSI {smooth['WSI'] / MB:.3f} vs "
        f"Monitor {smooth['Monitor'] / MB:.3f} MB/s",
    )
    rec.check(
        "fixed-gain EWMA ablation does not beat adaptive weighting",
        mean_err["WSI"] <= mean_err["EWMA"] * 1.10,
        f"WSI {mean_err['WSI']:.1%} vs EWMA {mean_err['EWMA']:.1%}",
    )
    report("E2", table_hourly, table_agg, rec.render())
    rec.assert_shape()
