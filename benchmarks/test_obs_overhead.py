"""Observability overhead on the E9-style streaming hot path.

Two claims are benchmarked on the same job, seed, and deployment as a
scaled-down E9a run:

* **off ≈ free** — with observability disabled (the default), the
  instrumentation hooks reduce to boolean guards and shared no-op
  handles, so the run must not be slower than the fully instrumented
  run by more than 2% (CI gates on this bound; the disabled run does
  strictly less work, so min-of-rounds makes it reliable).
* **on is bounded** — enabling metrics + tracing + stage profiling +
  the flight recorder must cost well under 50% wall time even on this
  workload, which is small enough that the fixed instrumentation cost
  is maximally visible.

Wall-clock timings use the best of ``ROUNDS`` runs to shave scheduler
noise; simulated work is deterministic across repeats.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.obs import Observer
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows
from repro.workloads.synthetic import fresh_engine

SEED = 24011
SPEC = {"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3}
SITES = ("NEU", "WEU", "EUS")
DURATION = 60.0
RATE = 1000.0
ROUNDS = 3


def make_job() -> StreamJob:
    return StreamJob(
        name="obs-overhead",
        sites=[
            SiteSpec(
                r,
                [PoissonSource(f"s-{r}", rate=RATE, keys=[r],
                               record_bytes=200.0)],
            )
            for r in SITES
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("mean"),
    )


def timed_run(observer=None) -> tuple[float, int]:
    engine = fresh_engine(
        seed=SEED, spec=SPEC, learning_phase=120.0, observer=observer
    )
    runtime = GeoStreamRuntime(
        engine, make_job(), SageShipping.factory(n_nodes=2)
    )
    t0 = time.perf_counter()
    runtime.run_for(DURATION)
    elapsed = time.perf_counter() - t0
    processed = sum(s.records_processed for s in runtime.sites.values())
    return elapsed, processed


def run_overhead():
    timed_run(None)  # warmup: imports, allocator, branch caches
    # off/on rounds interleave so slow drift in machine load lands on
    # both sides of the ratio; min-of-rounds shaves the noise spikes.
    off_times, on_times = [], []
    spans = series = stages = 0
    for _ in range(ROUNDS):
        off_times.append(timed_run(None)[0])
        obs = Observer()
        t, _ = timed_run(obs)
        on_times.append(t)
        spans = len(obs.tracer.spans)
        series = len(obs.registry.snapshot())
        stages = len(obs.profiler.stages())
    return min(off_times), min(on_times), spans, series, stages


@pytest.mark.benchmark(group="obs")
def test_obs_overhead(benchmark, report):
    off, on, spans, series, stages = benchmark.pedantic(
        run_overhead, rounds=1, iterations=1
    )
    _, processed = timed_run(None)
    table = render_table(
        ["mode", "wall (s)", "records/s (wall)"],
        [
            ["observability off", off, processed / off],
            ["observability on", on, processed / on],
        ],
        title="Observability overhead on a 3-site streaming run",
    )

    rec = ExperimentRecord(
        "OBS", "Observability overhead (off must stay free)", SEED,
        parameters={"rate": f"{RATE:.0f} ev/s/site",
                    "duration": f"{DURATION:.0f} s"},
    )
    rec.check(
        "disabled instrumentation costs nothing: the obs-off run is "
        "within 2% of the fully instrumented run (it should be faster)",
        off <= 1.02 * on,
        f"off {off:.3f}s vs on {on:.3f}s ({off / on:.2f}x)",
    )
    rec.check(
        "enabled observability overhead is bounded (< 50% wall time)",
        on <= 1.50 * off,
        f"on/off ratio {on / off:.2f}x",
    )
    rec.check(
        "the enabled run actually recorded something",
        spans > 0 and series > 0 and stages > 0,
        f"{spans} spans, {series} metric series, {stages} profiled stages",
    )
    report("OBS", table, rec.render())
    rec.assert_shape()
