"""E4 — The trade-off between transfer time and monetary cost.

1 GB NEU -> NUS executed with 1..10 participating VMs; both completion
time and the actual bill (egress + VM time) are measured. Reproduced
shape: time falls monotonically with diminishing returns; cost barely
moves at first (smaller times offset more nodes, and egress is a fixed
floor) and then creeps up; an interior sweet spot (maximum time reduction
for minimum cost) exists around the middle of the range.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.core.strategy import SageStrategy
from repro.simulation.units import GB, HOUR
from repro.workloads.synthetic import fresh_engine

SEED = 24004
SIZE = 1 * GB
NODES = range(1, 11)


def run_sweep():
    results = []
    for n in NODES:
        engine = fresh_engine(
            seed=SEED, spec={"NEU": 10, "NUS": 10}, learning_phase=180.0
        )
        r = SageStrategy(n_nodes=n, adaptive=False).run(engine, "NEU", "NUS", SIZE)
        vm_usd = r.vm_seconds_busy * 0.06 / HOUR
        results.append((n, r.seconds, r.egress_usd + vm_usd))
    return results


@pytest.mark.benchmark(group="e4")
def test_e4_cost_time_tradeoff(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    times = {n: t for n, t, _ in results}
    costs = {n: c for n, _, c in results}
    rows = [[n, t, c * 100] for n, t, c in results]
    table = render_table(
        ["VMs", "time (s)", "cost (cents)"],
        rows,
        title="E4 — measured time and cost of 1 GB NEU->NUS vs VM count",
    )

    rec = ExperimentRecord("E4", "Transfer time vs monetary cost", SEED)
    rec.check(
        "time decreases monotonically with more VMs",
        all(times[n + 1] <= times[n] * 1.03 for n in range(1, 10)),
    )
    rec.check(
        "large speed-up from parallelism",
        times[10] < times[1] / 3.0,
        f"{times[1]:.0f}s -> {times[10]:.0f}s",
    )
    flat_region = max(costs[n] for n in range(1, 7)) / min(
        costs[n] for n in range(1, 7)
    )
    rec.check(
        "cost stays nearly flat over the first half of the range",
        flat_region < 1.35,
        f"max/min cost ratio over n=1..6: {flat_region:.2f}",
    )
    # The sweet spot: best time reduction per (tiny) cost increase —
    # normalised-distance knee over the measured curve.
    t_lo, t_hi = min(times.values()), max(times.values())
    c_lo, c_hi = min(costs.values()), max(costs.values())
    badness = {
        n: (times[n] - t_lo) / (t_hi - t_lo) + (costs[n] - c_lo) / (c_hi - c_lo)
        for n in NODES
    }
    knee = min(badness, key=badness.get)
    rec.check(
        "an interior cost/time sweet spot exists",
        3 <= knee <= 9,
        f"knee at {knee} VMs",
    )
    rec.note(
        "egress is a fixed floor; the VM-time term shrinks as transfers "
        "get faster, which is why adding nodes is almost free at first"
    )
    report("E4", table, rec.render())
    rec.assert_shape()
