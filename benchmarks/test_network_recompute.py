"""NET — ``FluidNetwork._recompute``: incremental allocator vs pre-PR baseline.

The fluid solver re-runs max-min fair sharing on every network event, so
it is the single hottest serial path of the transfer experiments. The
incremental allocator (``allocator="fast"``, the default) interns one
resource entry per NIC/link, maintains flow↔resource incidence at flow
start/cancel/complete instead of rebuilding it per allocation, derives
per-flow caps from entry-level reads, memoises same-timestamp weather,
and early-outs when neither the flow set nor any entry capacity moved.
``allocator="reference"`` keeps the pre-PR dict-based water-fill
(including its uncached per-hop capacity walk) verbatim as the baseline
and equivalence oracle.

Methodology: the *real* E12 overload scenario (burst + blackout + crash,
``policy="block"``, seed 24012, 240 s) is run once while recording every
``start_flow``/``cancel_flow``; the captured flow trace is then replayed
against a standalone environment built exactly like the scenario's, once
per allocator, timing only ``_recompute`` (re-entrant calls from
completion callbacks are attributed to the outer call). Replay is exact:
both allocators must produce bit-identical per-flow outcomes.

Asserted shape:

* bit-identical ``(transferred, completed_at, cancelled)`` per flow
  across reference, fast/scalar, and fast/forced-vector replays;
* ≥3× ``_recompute`` speedup over the scenario's contended regime
  (allocations with ≥3 concurrent flows — the overload bursts, which
  is where the solver's cost grows with flow count);
* ≥2× over the complete trace including the single-flow steady tail,
  where both allocators are dominated by the shared fixed floor
  (settle/schedule/event bookkeeping) rather than allocation itself.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow, FluidNetwork
from repro.flow import run_overload

SEED = 24012
DURATION = 240.0
POLICY = "block"
#: Allocations with at least this many concurrent flows count as the
#: contended (overload-burst) regime.
CONTENDED_AT = 3
REPS = 10
TRIALS = 3


def capture_trace():
    """Run the real E12 scenario once, recording every flow event.

    Returns ``(trace, vm_meta)`` where ``trace`` is a list of
    ``(virtual_time, kind, flow_key, payload)`` and ``vm_meta`` maps the
    VM ids appearing on flow paths to ``(region_code, size_name)`` so the
    replay can provision an identical fleet.
    """
    trace: list[tuple[float, str, int, dict | None]] = []
    vm_meta: dict[str, tuple[str, str]] = {}
    orig_start = FluidNetwork.start_flow
    orig_cancel = FluidNetwork.cancel_flow

    def cap_start(self, flow):
        for vm in flow.path:
            vm_meta[vm.vm_id] = (vm.region_code, vm.size.name)
        trace.append(
            (
                self.sim.now,
                "start",
                id(flow),
                dict(
                    path=[vm.vm_id for vm in flow.path],
                    size=flow.size,
                    streams=flow.streams,
                    intrusiveness=flow.intrusiveness,
                    rate_cap=flow.rate_cap,
                    transport=flow.transport,
                ),
            )
        )
        return orig_start(self, flow)

    def cap_cancel(self, flow):
        if flow in self.flows:
            trace.append((self.sim.now, "cancel", id(flow), None))
        return orig_cancel(self, flow)

    FluidNetwork.start_flow = cap_start
    FluidNetwork.cancel_flow = cap_cancel
    try:
        run_overload(policy=POLICY, seed=SEED, duration=DURATION)
    finally:
        FluidNetwork.start_flow = orig_start
        FluidNetwork.cancel_flow = orig_cancel
    assert trace, "E12 produced no flows to replay"
    return trace, vm_meta


@pytest.fixture(scope="module")
def e12_trace():
    return capture_trace()


def replay(trace, vm_meta, allocator, *, reps=1, vector_threshold=None):
    """Replay the trace ``reps`` times; time ``_recompute`` only.

    Returns ``(buckets, outcomes)``: ``buckets`` maps concurrent-flow
    count at allocation time to accumulated ``_recompute`` seconds
    across all reps, ``outcomes`` is the per-flow end state of the last
    rep, in trace order.
    """
    buckets: dict[int, float] = {}
    depth = [0]
    orig = FluidNetwork._recompute

    def timed(self):
        if depth[0]:
            return orig(self)
        depth[0] += 1
        n = len(self._sorted_flows)
        t0 = time.perf_counter()
        try:
            return orig(self)
        finally:
            dt = time.perf_counter() - t0
            buckets[n] = buckets.get(n, 0.0) + dt
            depth[0] -= 1

    outcomes: list[tuple[float, float | None, bool]] = []
    for _ in range(reps):
        # The same environment the scenario itself builds (see
        # repro.flow.scenario): deterministic weather, no glitches.
        env = CloudEnvironment(seed=SEED, variability_sigma=0.0, glitches=False)
        net = env.network
        net.allocator = allocator
        if vector_threshold is not None:
            net.vector_threshold = vector_threshold
        vms = {
            vm_id: env.provision(region, size)[0]
            for vm_id, (region, size) in sorted(vm_meta.items())
        }
        live: dict[int, Flow] = {}
        order: list[int] = []
        FluidNetwork._recompute = timed
        try:
            for t, kind, key, payload in trace:
                net.sim.run_until(t)
                if kind == "start":
                    f = Flow(
                        [vms[v] for v in payload["path"]],
                        payload["size"],
                        streams=payload["streams"],
                        intrusiveness=payload["intrusiveness"],
                        rate_cap=payload["rate_cap"],
                        transport=payload["transport"],
                    )
                    net.start_flow(f)
                    live[key] = f
                    order.append(key)
                else:
                    f = live.get(key)
                    if f is not None and f in net.flows:
                        net.cancel_flow(f)
            # Drain: let surviving flows run to completion.
            net.sim.run_until(trace[-1][0] + 600.0)
        finally:
            FluidNetwork._recompute = orig
        outcomes = [
            (live[k].transferred, live[k].completed_at, live[k].cancelled)
            for k in order
        ]
    return buckets, outcomes


def test_allocators_bit_identical(e12_trace):
    """Reference, fast/scalar and fast/vector replays agree bit-for-bit."""
    trace, vm_meta = e12_trace
    _, ref = replay(trace, vm_meta, "reference")
    _, fast = replay(trace, vm_meta, "fast")
    _, vect = replay(trace, vm_meta, "fast", vector_threshold=2)
    assert fast == ref
    assert vect == ref


@pytest.mark.benchmark(group="net")
def test_network_recompute_speedup(benchmark, report, e12_trace):
    trace, vm_meta = e12_trace

    def run_bench():
        best = None
        for _ in range(TRIALS):
            ref_b, ref_out = replay(trace, vm_meta, "reference", reps=REPS)
            fast_b, fast_out = replay(trace, vm_meta, "fast", reps=REPS)
            assert fast_out == ref_out
            if best is None or sum(fast_b.values()) < sum(best[1].values()):
                best = (ref_b, fast_b)
        return best

    ref_b, fast_b = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    def total(buckets, lo=0):
        return sum(v for k, v in buckets.items() if k >= lo)

    ref_full, fast_full = total(ref_b), total(fast_b)
    ref_hot = total(ref_b, CONTENDED_AT)
    fast_hot = total(fast_b, CONTENDED_AT)
    full_x = ref_full / fast_full
    hot_x = ref_hot / fast_hot

    rows = []
    for n in sorted(set(ref_b) | set(fast_b)):
        rows.append(
            [
                n,
                f"{ref_b[n] * 1e6 / REPS:.1f}",
                f"{fast_b[n] * 1e6 / REPS:.1f}",
                f"{ref_b[n] / fast_b[n]:.2f}x",
            ]
        )
    rows.append(
        [
            f">={CONTENDED_AT} (contended)",
            f"{ref_hot * 1e6 / REPS:.1f}",
            f"{fast_hot * 1e6 / REPS:.1f}",
            f"{hot_x:.2f}x",
        ]
    )
    rows.append(
        [
            "full trace",
            f"{ref_full * 1e6 / REPS:.1f}",
            f"{fast_full * 1e6 / REPS:.1f}",
            f"{full_x:.2f}x",
        ]
    )
    table = render_table(
        ["concurrent flows", "reference (us)", "fast (us)", "speedup"],
        rows,
        title="NET — _recompute time replaying the E12 overload trace "
        f"(policy={POLICY}, seed {SEED}, {DURATION:.0f} s, "
        f"best of {TRIALS}x{REPS} reps)",
    )

    rec = ExperimentRecord(
        "NET",
        "Incremental fluid allocator vs pre-PR full recompute (E12 trace)",
        SEED,
        parameters={
            "policy": POLICY,
            "duration": f"{DURATION:.0f} s",
            "flow events": str(len(trace)),
            "reps": f"{TRIALS}x{REPS}",
        },
    )
    rec.check(
        f"contended regime (>= {CONTENDED_AT} concurrent flows, the "
        "overload bursts) speeds up >= 3x",
        hot_x >= 3.0,
        f"{hot_x:.2f}x ({ref_hot * 1e3 / REPS:.3f} ms -> "
        f"{fast_hot * 1e3 / REPS:.3f} ms per replay)",
    )
    rec.check(
        "full trace (incl. the floor-dominated single-flow tail) "
        "speeds up >= 2x",
        full_x >= 2.0,
        f"{full_x:.2f}x ({ref_full * 1e3 / REPS:.3f} ms -> "
        f"{fast_full * 1e3 / REPS:.3f} ms per replay)",
    )
    report("NET", table, rec.render())
    rec.assert_shape()
