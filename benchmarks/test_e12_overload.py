"""E12 — Overload recovery: backpressure vs load shedding.

The scripted overload scenario (5x ingest burst at both sites, a 40 s
WAN blackout mid-burst, an aggregator crash restarted from checkpoint)
run once per overload policy. Expected shape: ``block`` converts the
overload into source deferral and latency but counts every admitted
record exactly once — even across the crash; ``shed`` keeps the latency
tail flat and pays in records, every one of them accounted by a shed or
late counter, never silently.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.config import OverloadConfig
from repro.flow import run_overload
from repro.simulation.units import KB

SEED = 24012
DURATION = 240.0


def run_e12():
    block = run_overload(OverloadConfig(policy="block", seed=SEED, duration=DURATION))
    shed = run_overload(OverloadConfig(policy="shed", seed=SEED, duration=DURATION))
    return block, shed


@pytest.mark.benchmark(group="e12")
def test_e12_overload_recovery(benchmark, report):
    block, shed = benchmark.pedantic(run_e12, rounds=1, iterations=1)
    rows = []
    for r in (block, shed):
        rows.append(
            [
                r.policy,
                r.ingested,
                r.counted,
                r.lost,
                max(r.backlog_peaks.values()),
                r.max_deferred,
                r.shed,
                f"{r.latency.p99:.1f}",
                r.batches_replayed,
                r.wan_bytes / KB,
            ]
        )
    table = render_table(
        ["policy", "ingested", "counted", "lost", "peak backlog",
         "peak defer", "shed", "p99 (s)", "replayed", "WAN KB"],
        rows,
        title="E12 — overload recovery under burst + blackout + crash "
        f"(2 sites -> NUS, {DURATION:.0f} s, bound "
        f"{block.max_backlog_bound})",
    )

    rec = ExperimentRecord(
        "E12",
        "Overload recovery: bounded buffers, accounted loss, exactly-once",
        SEED,
        parameters={
            "scenario": "5x burst (60-90 s) + 40 s blackhole + crash at 150 s",
            "flow": f"max_backlog {block.max_backlog_bound}, "
            "inflight window 8, breaker 3/20 s",
            "checkpoints": "every 15 s, exactly-once sink + batch replay",
        },
    )
    rec.check(
        "block loses nothing, even across the aggregator crash",
        block.clean and block.lost == 0 and block.aggregator_crashes == 1,
        f"lost {block.lost}, crashes {block.aggregator_crashes}, "
        f"{block.batches_replayed} batches replayed",
    )
    rec.check(
        "both policies hold every site buffer at the bound",
        all(
            peak <= r.max_backlog_bound
            for r in (block, shed)
            for peak in r.backlog_peaks.values()
        ),
        f"peaks block {block.backlog_peaks}, shed {shed.backlog_peaks}",
    )
    rec.check(
        "block pays in deferral and latency, shed in records",
        block.max_deferred > 0
        and block.shed == 0
        and shed.max_deferred == 0
        and shed.shed > 0,
        f"block deferred {block.max_deferred}, shed dropped {shed.shed}",
    )
    rec.check(
        "every record shed loses is accounted by a counter",
        shed.clean and shed.accounted and shed.lost > 0,
        f"lost {shed.lost} == shed {shed.shed} + late "
        f"{shed.late_dropped + shed.late_partial_records} + abandoned "
        f"{shed.abandoned_records}",
    )
    rec.check(
        "shedding buys a flatter latency tail than blocking",
        shed.latency.p99 < block.latency.p99,
        f"p99 {shed.latency.p99:.1f} s vs {block.latency.p99:.1f} s",
    )
    rec.check(
        "the breaker cooperated with the fault bus during the blackout",
        block.breaker_opens >= 1 and block.breaker_closes >= 1,
        f"{block.breaker_opens} opens, {block.breaker_closes} closes",
    )
    report("E12", table, rec.render())
    rec.assert_shape()
