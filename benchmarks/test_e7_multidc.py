"""E7 — Multi-datacenter path transfer strategies.

An application deployed over all six EU/US sites pushes data NEU -> NUS.
Four strategies share the same node budget:

* **DirectLink** — parallel instances on the direct link only;
* **ShortestPath-static** — widest datacenter path chosen once;
* **ShortestPath-dynamic** — widest path re-chosen on fresh monitoring;
* **GEO-SAGE** — the multi-path selector (grow the widest path while the
  marginal node beats the next path's normalised throughput, else open
  that path).

E7a fixes 25 nodes and watches cumulative throughput over a 10-minute
window; E7b fixes the window and sweeps the node count. Reproduced shape:
with few nodes all strategies are close; as nodes grow, single-path
strategies saturate their one link while the multi-path schema keeps
aggregating capacity and wins by a clear margin.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.core.paths import widest_path
from repro.simulation.units import GB, MB
from repro.transfer.plan import RouteAssignment, TransferPlan
from repro.workloads.synthetic import fresh_engine

SEED = 24007
WINDOW = 600.0
HUGE = 1000 * GB  # never finishes inside the window
SPEC = {"NEU": 14, "WEU": 8, "NUS": 14, "SUS": 8, "EUS": 8, "WUS": 8}


def _materialise(engine, path, instances, streams=4):
    cyclers = {r: itertools.cycle(engine.deployment.vms(r)) for r in path}
    routes = [
        RouteAssignment([next(cyclers[r]) for r in path], streams=streams)
        for _ in range(instances)
    ]
    return TransferPlan(routes, label="e7")


def _thr_map(engine):
    return {
        pair: engine.monitor.link_map.throughput(*pair)
        for pair in engine.monitor.link_map.pairs()
    }


class DirectLinkArm:
    label = "DirectLink"

    def start(self, engine, nodes):
        plan = _materialise(engine, ["NEU", "NUS"], nodes)
        self.session = engine.transfers.execute(plan, HUGE, charge=False)

    def delivered(self):
        return self.session.transferred


class StaticPathArm:
    label = "ShortestPath-static"

    def start(self, engine, nodes):
        path = widest_path(_thr_map(engine), "NEU", "NUS", max_hops=3) or [
            "NEU", "NUS",
        ]
        instances = max(1, nodes // max(1, len(path) - 1))
        plan = _materialise(engine, path, instances)
        self.session = engine.transfers.execute(plan, HUGE, charge=False)

    def delivered(self):
        return self.session.transferred


class DynamicPathArm:
    label = "ShortestPath-dynamic"

    def __init__(self, replan_interval=30.0):
        self.replan_interval = replan_interval
        self.sessions = []

    def start(self, engine, nodes):
        self.engine = engine
        self.nodes = nodes
        self._launch(widest_path(_thr_map(engine), "NEU", "NUS", 3) or ["NEU", "NUS"])

    def _launch(self, path):
        self.path = path
        instances = max(1, self.nodes // max(1, len(path) - 1))
        plan = _materialise(self.engine, path, instances)
        self.sessions.append(self.engine.transfers.execute(plan, HUGE, charge=False))
        self.engine.sim.schedule(self.replan_interval, self._replan)

    def _replan(self):
        session = self.sessions[-1]
        if session.done:
            return
        fresh = widest_path(_thr_map(self.engine), "NEU", "NUS", 3) or [
            "NEU", "NUS",
        ]
        if fresh != self.path:
            session.cancel()
            self._launch(fresh)
        else:
            self.engine.sim.schedule(self.replan_interval, self._replan)

    def delivered(self):
        return sum(s.transferred for s in self.sessions)


class SageArm:
    label = "GEO-SAGE"

    def start(self, engine, nodes):
        self.engine = engine
        self.mt = engine.decisions.transfer(
            "NEU", "NUS", HUGE, n_nodes=nodes, adaptive=True
        )

    def delivered(self):
        return sum(s.transferred for s in self.mt.sessions)


ARMS = (DirectLinkArm, StaticPathArm, DynamicPathArm, SageArm)


def run_window(arm_cls, nodes, probe_times=()):
    engine = fresh_engine(seed=SEED, spec=SPEC, learning_phase=240.0)
    arm = arm_cls()
    t0 = engine.sim.now
    arm.start(engine, nodes)
    series = []
    for t in probe_times or (WINDOW,):
        engine.run_until(t0 + t)
        series.append(arm.delivered())
    return series


@pytest.mark.benchmark(group="e7")
def test_e7a_throughput_in_time(benchmark, report):
    probe_times = [120.0, 240.0, 360.0, 480.0, 600.0]

    def run():
        return {
            arm.label: run_window(arm, 25, probe_times) for arm in ARMS
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for i, t in enumerate(probe_times):
        rows.append(
            [int(t)] + [series[a.label][i] / (t * MB) for a in ARMS]
        )
    table = render_table(
        ["t (s)"] + [a.label for a in ARMS],
        rows,
        title="E7a — cumulative throughput (MB/s) NEU->NUS, 25 nodes over 6 sites",
    )

    final = {a.label: series[a.label][-1] for a in ARMS}
    rec = ExperimentRecord(
        "E7a", "Multi-DC paths: throughput over a 10-minute window", SEED,
        parameters={"nodes": 25},
    )
    rec.check(
        "the multi-path schema moves the most data",
        final["GEO-SAGE"] >= max(v for k, v in final.items() if k != "GEO-SAGE"),
        f"{final['GEO-SAGE'] / (WINDOW * MB):.1f} MB/s",
    )
    rec.check(
        "clear gain over the single shortest path at the 10-minute mark",
        final["GEO-SAGE"] > 1.15 * final["ShortestPath-static"],
        f"+{final['GEO-SAGE'] / final['ShortestPath-static'] - 1:.0%}",
    )
    rec.check(
        "dynamic path selection at least matches the static choice",
        final["ShortestPath-dynamic"] >= 0.95 * final["ShortestPath-static"],
    )
    rec.check(
        "single-link parallelism saturates (DirectLink is not the winner)",
        final["DirectLink"] < final["GEO-SAGE"],
    )
    report("E7a", table, rec.render())
    rec.assert_shape()


@pytest.mark.benchmark(group="e7")
def test_e7b_throughput_vs_nodes(benchmark, report):
    node_counts = (5, 10, 15, 20, 25, 30)

    def run():
        return {
            arm.label: [run_window(arm, n)[0] for n in node_counts]
            for arm in ARMS
        }

    delivered = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n] + [delivered[a.label][i] / (WINDOW * MB) for a in ARMS]
        for i, n in enumerate(node_counts)
    ]
    table = render_table(
        ["nodes"] + [a.label for a in ARMS],
        rows,
        title="E7b — mean throughput (MB/s) in a fixed 10-minute window",
    )

    rec = ExperimentRecord(
        "E7b", "Multi-DC paths: throughput vs node count", SEED
    )
    small = {a.label: delivered[a.label][0] for a in ARMS}
    big = {a.label: delivered[a.label][-1] for a in ARMS}
    ratio_small = small["GEO-SAGE"] / max(
        v for k, v in small.items() if k != "GEO-SAGE"
    )
    ratio_big = big["GEO-SAGE"] / max(
        v for k, v in big.items() if k != "GEO-SAGE"
    )
    rec.check(
        "at few nodes multi-path brings no advantage (relay instances "
        "cost extra VMs); the crossover appears as nodes grow",
        ratio_small < 1.1 < ratio_big,
        f"SAGE/best-other: {ratio_small:.2f} at 5 nodes, "
        f"{ratio_big:.2f} at 30",
    )
    rec.check(
        "GEO-SAGE wins at 25+ nodes",
        big["GEO-SAGE"] >= 1.15 * max(v for k, v in big.items() if k != "GEO-SAGE"),
        f"+{big['GEO-SAGE'] / max(v for k, v in big.items() if k != 'GEO-SAGE') - 1:.0%}",
    )
    sage_scaling = big["GEO-SAGE"] / small["GEO-SAGE"]
    direct_scaling = big["DirectLink"] / small["DirectLink"]
    rec.check(
        "the multi-path schema scales further with nodes than one link can",
        sage_scaling > direct_scaling,
        f"x{sage_scaling:.1f} vs x{direct_scaling:.1f}",
    )
    report("E7b", table, rec.render())
    rec.assert_shape()
