"""E13 — The sweep runner: parallel byte-identity and cache economics.

Runs the standard E-suite sweep three ways — serial cold (populating the
result cache), parallel without a cache, and serial warm — and checks
the contracts that make ``sage sweep`` trustworthy: every execution mode
produces the byte-identical canonical digest, and a warm cache executes
zero simulations. Wall clocks for all three are recorded; the parallel
row is reported as-is (on a single-core container it tracks the serial
time plus pool overhead — the identity guarantee, not the speedup, is
the portable claim).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.api import default_suite, run_sweep

SEED = 24013
DURATION = 240.0
JOBS = 4


def run_e13(tmp_path):
    cache = tmp_path / "cache"
    cold = run_sweep(
        default_suite(DURATION), jobs=1, cache_dir=cache, root_seed=SEED
    )
    par = run_sweep(default_suite(DURATION), jobs=JOBS, root_seed=SEED)
    warm = run_sweep(
        default_suite(DURATION), jobs=1, cache_dir=cache, root_seed=SEED
    )
    return cold, par, warm


@pytest.mark.benchmark(group="e13")
def test_e13_sweep_suite(benchmark, report, tmp_path):
    cold, par, warm = benchmark.pedantic(
        run_e13, args=(tmp_path,), rounds=1, iterations=1
    )
    rows = [
        ["serial cold", 1, cold.executed, cold.cache_hits,
         f"{cold.wall_seconds:.2f}", cold.digest()[:12]],
        [f"parallel x{JOBS}", JOBS, par.executed, par.cache_hits,
         f"{par.wall_seconds:.2f}", par.digest()[:12]],
        ["serial warm", 1, warm.executed, warm.cache_hits,
         f"{warm.wall_seconds:.2f}", warm.digest()[:12]],
    ]
    table = render_table(
        ["mode", "jobs", "simulated", "cache hits", "wall (s)", "digest"],
        rows,
        title=f"E13 — sweep runner over the E-suite ({len(cold.shards)} "
        f"shards, {DURATION:.0f} s each, root seed {SEED})",
    )

    rec = ExperimentRecord(
        "E13",
        "Sweep runner: parallel byte-identity + warm-cache zero-execution",
        SEED,
        parameters={
            "suite": "chaos x2 + overload x3",
            "pool": f"spawn, {JOBS} workers",
            "cache": "content-addressed (code fingerprint + config + seed)",
        },
    )
    rec.check(
        "all shards of all three runs succeeded",
        cold.ok and par.ok and warm.ok,
        f"failures: cold {len(cold.failures)}, par {len(par.failures)}, "
        f"warm {len(warm.failures)}",
    )
    rec.check(
        f"parallel x{JOBS} is byte-identical to serial",
        par.digest() == cold.digest()
        and par.canonical_lines() == cold.canonical_lines(),
        f"{par.digest()[:12]} vs {cold.digest()[:12]}",
    )
    rec.check(
        "warm cache executed zero simulations",
        warm.executed == 0 and warm.hit_ratio == 1.0,
        f"{warm.executed} simulated, {100 * warm.hit_ratio:.0f}% hits",
    )
    rec.check(
        "warm replay still reports the identical digest",
        warm.digest() == cold.digest(),
    )
    rec.check(
        "the cache repays its cost within a single replay",
        warm.wall_seconds < cold.wall_seconds / 5,
        f"{warm.wall_seconds:.2f} s vs {cold.wall_seconds:.2f} s cold",
    )
    report("E13", table, rec.render())
    rec.assert_shape()
