"""E8 — The A-Brain application across three datacenters.

The genetic × neuro-imaging analysis runs MapReduce in three sites; 1000
partial-result files per site ship to the Meta-Reducer in North-Central
US. Three input configurations scale the partial-file size (36 KB → 1 MB
→ 40 MB, i.e. ~108 MB → ~3 GB → ~120 GB total), each shipped over the
blob-staging backend and the managed substrate. Reproduced shape: for the
tiny-file configuration the managed transfer's per-file acknowledgement
and planning overheads erase its advantage (blob staging is competitive
or better); as files grow the managed substrate pulls ahead, approaching
the published ~3× on the 120 GB campaign.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.simulation.units import GB, KB, MB, format_bytes
from repro.streaming.shipping import BlobShipping, SageShipping
from repro.workloads.abrain import ABrainConfig, ABrainWorkload
from repro.workloads.synthetic import fresh_engine

SEED = 24008
CONFIGS = (
    ABrainConfig("small", files_per_site=1000, file_size=36 * KB),
    ABrainConfig("medium", files_per_site=1000, file_size=1 * MB),
    ABrainConfig("large", files_per_site=1000, file_size=40 * MB),
)
SPEC = {"NEU": 6, "WEU": 6, "NUS": 8}


def run_all():
    results = {}
    for config in CONFIGS:
        workload = ABrainWorkload(config, seed=SEED)
        for backend_name, factory in (
            ("AzureBlobs", BlobShipping.factory()),
            ("GEO-SAGE", SageShipping.factory(n_nodes=3)),
        ):
            engine = fresh_engine(seed=SEED, spec=SPEC, learning_phase=180.0)
            report_ = workload.run_shipping(
                engine, factory, files_in_flight_per_site=4
            )
            results[(config.name, backend_name)] = report_.transfer_time
    return results


@pytest.mark.benchmark(group="e8")
def test_e8_abrain_meta_reduce(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for config in CONFIGS:
        blob = results[(config.name, "AzureBlobs")]
        sage = results[(config.name, "GEO-SAGE")]
        rows.append(
            [
                config.name,
                format_bytes(config.total_bytes),
                blob,
                sage,
                blob / sage,
            ]
        )
    table = render_table(
        ["config", "total data", "AzureBlobs (s)", "GEO-SAGE (s)", "speed-up"],
        rows,
        title="E8 — shipping 3x1000 partial files to the Meta-Reducer (NUS)",
    )

    rec = ExperimentRecord(
        "E8", "A-Brain across 3 datacenters", SEED,
        parameters={"files": "1000/site", "sites": "NEU, WEU, NUS"},
    )
    small_ratio = results[("small", "AzureBlobs")] / results[("small", "GEO-SAGE")]
    large_ratio = results[("large", "AzureBlobs")] / results[("large", "GEO-SAGE")]
    rec.check(
        "tiny files: per-file overheads erase the managed advantage",
        small_ratio < 1.5,
        f"blob/sage = {small_ratio:.2f}",
    )
    rec.check(
        "the advantage grows with file size",
        large_ratio > results[("medium", "AzureBlobs")]
        / results[("medium", "GEO-SAGE")]
        > small_ratio,
    )
    rec.check(
        "large campaign: managed shipping is a multiple faster",
        large_ratio > 2.0,
        f"{large_ratio:.1f}x (paper: ~3x at 120 GB)",
    )
    report("E8", table, rec.render())
    rec.assert_shape()
