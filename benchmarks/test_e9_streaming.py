"""E9 — Geo-distributed stream analysis latency.

The streaming layer's own evaluation: sensor-style streams at three edge
sites, global per-site window statistics at an aggregation site.

E9a sweeps the per-site event rate and measures end-to-end result latency
(event-time window close → global emission) with the site-local partial
aggregation the design prescribes, and — ablation — shipping raw records.
Reproduced shape: latency is flat while resources keep up and knees when
a stage saturates; the raw-record ablation ships orders of magnitude more
over the WAN and saturates far earlier.

E9b sweeps batching policies on the bursty clickstream workload: small
time-triggered batches minimise latency but maximise per-batch overhead;
big size-triggered batches the reverse; the link-aware adaptive policy
sits near the best of both.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.tables import render_table
from repro.obs import Observer
from repro.obs.bench import (
    BenchRecord,
    compare_to_baseline,
    read_bench,
    write_bench,
)
from repro.simulation.units import KB, MB
from repro.streaming.batching import (
    AdaptiveBatchPolicy,
    HybridBatchPolicy,
    SizeBatchPolicy,
    TimeBatchPolicy,
)
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import DirectShipping, SageShipping, UdpShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows
from repro.workloads.clickstream import clickstream_job
from repro.workloads.synthetic import fresh_engine

SEED = 24009
SPEC = {"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3}
DURATION = 120.0
SITES = ("NEU", "WEU", "EUS")

#: Committed per-record-plane recording the columnar plane is gated
#: against (repo root; see ROADMAP item 1).
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_e9_streaming.json"
MIN_SPEEDUP = 10.0


def make_rate_job(rate: float, ship_raw: bool) -> StreamJob:
    return StreamJob(
        name=f"rate-{rate}",
        sites=[
            SiteSpec(
                r,
                [PoissonSource(f"s-{r}", rate=rate, keys=[r], record_bytes=200.0)],
            )
            for r in SITES
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("mean"),
        ship_raw_records=ship_raw,
    )


def run_e9a():
    rates = (200.0, 1000.0, 5000.0, 20000.0)
    out = {}
    profile = None
    lineage = None
    for rate in rates:
        for raw in (False, True):
            # The canonical (1000 ev/s, partial-agg) leg runs with the
            # stage profiler attached and publishes the E9 point of the
            # perf trajectory; instrumentation only observes, so the
            # simulated results are unchanged.
            obs = Observer() if (rate == 1000.0 and not raw) else None
            wall0 = time.perf_counter()
            engine = fresh_engine(
                seed=SEED, spec=SPEC, learning_phase=120.0, observer=obs
            )
            runtime = GeoStreamRuntime(
                engine,
                make_rate_job(rate, raw),
                SageShipping.factory(n_nodes=2),
                per_vm_records_per_s=5000.0,
            )
            runtime.run_for(DURATION)
            wall = time.perf_counter() - wall0
            stats = runtime.latency_stats()
            out[(rate, raw)] = (stats.p50, stats.p95, runtime.wan_bytes())
            if obs is not None:
                profile = obs.profiler.snapshot(wall_seconds=wall)
                # Lineage + ledger checks on the canonical leg: every
                # emitted window must carry complete provenance, and the
                # attributed cost must reconcile with the meter.
                engine.env.finalize()
                cost = engine.ledger.summary(
                    windows=len(runtime.results) or None,
                    records=runtime.records_ingested() or None,
                )
                lineage = {
                    "stats": runtime.lineage_stats(),
                    "reconciled": engine.ledger.reconcile(),
                    "p99_s": stats.p99,
                    "usd_per_1k": cost.usd_per_1k_records,
                    "per_site_p99_s": {
                        site: obs.histogram(
                            "stream_e2e_latency_seconds", site=site
                        ).percentile(99)
                        for site in SITES
                    },
                }
    return rates, out, profile, lineage


@pytest.mark.benchmark(group="e9")
def test_e9a_latency_vs_rate(benchmark, report, bench_dir):
    rates, out, profile, lineage = benchmark.pedantic(
        run_e9a, rounds=1, iterations=1
    )
    rows = []
    for rate in rates:
        p50, p95, wan = out[(rate, False)]
        p50r, p95r, wanr = out[(rate, True)]
        rows.append(
            [int(rate), p50, p95, wan / KB, p50r, p95r, wanr / KB]
        )
    table = render_table(
        ["rate/site", "p50 (s)", "p95 (s)", "WAN KB",
         "raw p50", "raw p95", "raw WAN KB"],
        rows,
        title="E9a — end-to-end result latency vs event rate (3 sites -> NUS)",
    )

    rec = ExperimentRecord(
        "E9a", "Stream latency vs rate; local-aggregation ablation", SEED,
        parameters={"window": "10 s", "duration": f"{DURATION:.0f} s"},
    )
    flat = out[(rates[0], False)][1] / out[(rates[1], False)][1]
    rec.check(
        "latency is rate-independent while resources keep up",
        0.7 < flat < 1.4,
        f"p95 ratio 200 vs 1000 ev/s: {1 / flat:.2f}",
    )
    rec.check(
        "overload knees the latency curve (site CPU saturates at 15k/s)",
        out[(20000.0, False)][1] > 2.0 * out[(1000.0, False)][1],
        f"p95 {out[(20000.0, False)][1]:.1f}s vs {out[(1000.0, False)][1]:.1f}s",
    )
    rec.check(
        "local partial aggregation slashes WAN volume",
        all(
            out[(r, True)][2] > 20 * out[(r, False)][2] for r in rates
        ),
        f"raw/partial WAN ratio at 5k ev/s: "
        f"{out[(5000.0, True)][2] / out[(5000.0, False)][2]:.0f}x",
    )
    lstats = lineage["stats"]
    rec.check(
        "every emitted window carries complete source→emission lineage",
        lstats["results"] > 0
        and lstats["complete"] == lstats["with_lineage"] == lstats["results"],
        f"{lstats['complete']}/{lstats['results']} windows complete",
    )
    rec.check(
        "ledger attribution reconciles with the cost meter",
        lineage["reconciled"],
        f"${lineage['usd_per_1k']:.4f} per 1k records",
    )
    per_site = lineage["per_site_p99_s"]
    rec.check(
        "per-region E2E latency histograms cover every producing site",
        all(np.isfinite(per_site[s]) for s in SITES),
        ", ".join(f"{s} p99 {per_site[s]:.1f}s" for s in SITES),
    )
    report("E9a", table, rec.render())

    # Publish the E9 trajectory point from the instrumented leg.
    meters = profile["meters"]
    bench = BenchRecord.from_profile(
        "e9_streaming",
        "e9a-rate1000-partial",
        SEED,
        profile,
        config={
            "rate_per_site": 1000.0,
            "ship_raw": False,
            "duration": DURATION,
            "window": 10.0,
            "sites": list(SITES),
            "spec": SPEC,
        },
        records=meters.get("records", {}).get("count", 0.0),
        events=meters.get("events", {}).get("count", 0.0),
        extras={
            "p50_s": out[(1000.0, False)][0],
            "p95_s": out[(1000.0, False)][1],
            "wan_bytes": out[(1000.0, False)][2],
            "per_site_p99_s": per_site,
        },
        e2e_latency_p99_s=lineage["p99_s"],
        usd_per_1k_records=lineage["usd_per_1k"],
    )
    read_bench(write_bench(bench, bench_dir))  # round-trip validates
    # Regression gate: the columnar record plane must hold its speedup
    # over the committed per-record recording (digest-matched).
    gate = compare_to_baseline(bench, BASELINE, min_speedup=MIN_SPEEDUP)
    rec.check(
        f"columnar throughput >= {MIN_SPEEDUP:.0f}x the recorded "
        "per-record baseline",
        gate is None or gate["speedup"] >= MIN_SPEEDUP,
        "no baseline recorded — gate skipped" if gate is None else
        f"{gate['current']:,.0f} vs {gate['baseline']:,.0f} records/s "
        f"({gate['speedup']:.1f}x)",
    )
    rec.assert_shape()


def run_e9b():
    # Batching only matters where there is volume to batch: the policies
    # are compared on the raw-record shipping path of the bursty
    # clickstream (the partial-aggregate path ships a few KB per window
    # regardless of policy).
    def run_policy(name, factory):
        engine = fresh_engine(seed=SEED + 1, spec=SPEC, learning_phase=120.0)
        if factory is None:  # adaptive needs the engine's link estimate
            factory = lambda: AdaptiveBatchPolicy(  # noqa: E731
                lambda: engine.monitor.estimated_throughput("NEU", "NUS"),
                target_occupancy=0.05,
                max_delay=1.0,
            )
        job = clickstream_job(
            site_regions=list(SITES),
            aggregation_region="NUS",
            batch_policy_factory=factory,
            ship_raw_records=True,
        )
        runtime = GeoStreamRuntime(
            engine, job, SageShipping.factory(n_nodes=2)
        )
        runtime.run_for(DURATION)
        return runtime

    out = {}
    out["time(0.2s)"] = run_policy("time", lambda: TimeBatchPolicy(0.2))
    out["size(512KB)"] = run_policy("size", lambda: SizeBatchPolicy(512 * KB))
    out["hybrid(64KB,1s)"] = run_policy(
        "hybrid", lambda: HybridBatchPolicy(64 * KB, 1.0)
    )
    out["adaptive"] = run_policy("adaptive", None)
    return out


@pytest.mark.benchmark(group="e9")
def test_e9b_batching_policies(benchmark, report):
    out = benchmark.pedantic(run_e9b, rounds=1, iterations=1)
    rows = []
    metrics = {}
    for name, runtime in out.items():
        stats = runtime.latency_stats()
        batches = sum(s.shipping.batches_shipped for s in runtime.sites.values())
        per_batch = runtime.wan_bytes() / max(batches, 1)
        metrics[name] = (stats.p50, batches, per_batch)
        rows.append([name, stats.p50, stats.p95, batches, per_batch / KB])
    table = render_table(
        ["policy", "p50 lat (s)", "p95 (s)", "batches", "KB/batch"],
        rows,
        title="E9b — batching policy trade-off on the bursty clickstream",
    )

    p95 = {name: out[name].latency_stats().p95 for name in out}
    rec = ExperimentRecord("E9b", "Batching policy sweep", SEED + 1)
    min_p95 = min(p95.values())
    rec.check(
        "time-triggered batching bounds staleness (tail latency near floor)",
        p95["time(0.2s)"] <= 1.10 * min_p95,
        f"p95 {p95['time(0.2s)']:.2f}s vs floor {min_p95:.2f}s",
    )
    rec.check(
        "large fixed-size batches maximise per-batch efficiency but pay "
        "tail latency (fill time depends on the burst state)",
        metrics["size(512KB)"][2] >= max(m[2] for m in metrics.values()) - 1e-9
        and p95["size(512KB)"] > 1.25 * min_p95,
        f"{metrics['size(512KB)'][2] / 1024:.0f} KB/batch, "
        f"p95 {p95['size(512KB)']:.2f}s",
    )
    rec.check(
        "smaller thresholds produce more, smaller batches",
        metrics["hybrid(64KB,1s)"][1] > metrics["size(512KB)"][1]
        and metrics["hybrid(64KB,1s)"][2] < metrics["size(512KB)"][2],
    )
    rec.check(
        "the link-aware adaptive policy keeps tail latency at the eager "
        "level while cutting fewer, larger batches than the eager policies",
        p95["adaptive"] <= 1.10 * min_p95
        and metrics["adaptive"][2] > metrics["hybrid(64KB,1s)"][2],
        f"p95 {p95['adaptive']:.2f}s, "
        f"{metrics['adaptive'][2] / 1024:.0f} KB/batch",
    )
    report("E9b", table, rec.render())
    rec.assert_shape()


def run_e9c():
    """TCP vs UDP shipping on the same stream (the protocol extension)."""
    out = {}
    for name, factory in (
        ("tcp-direct", DirectShipping.factory(streams=1)),
        ("udp", UdpShipping.factory(base_loss=0.01)),
    ):
        engine = fresh_engine(seed=SEED + 2, spec=SPEC, learning_phase=120.0)
        job = make_rate_job(1000.0, ship_raw=False)
        job.finalize_grace = 2.0  # tight grace to expose shipping latency
        runtime = GeoStreamRuntime(engine, job, factory)
        runtime.run_for(DURATION)
        out[name] = runtime
    return out


@pytest.mark.benchmark(group="e9")
def test_e9c_udp_protocol_extension(benchmark, report):
    out = benchmark.pedantic(run_e9c, rounds=1, iterations=1)
    rows = []
    for name, runtime in out.items():
        stats = runtime.latency_stats()
        counted = sum(r.record_count for r in runtime.results)
        lost = getattr(
            next(iter(runtime.sites.values())).shipping, "batches_lost", 0
        )
        rows.append([name, stats.p50, stats.p95, counted, lost])
    table = render_table(
        ["transport", "p50 lat (s)", "p95 (s)", "records counted", "batches lost/site"],
        rows,
        title="E9c — TCP vs UDP shipping of window partials",
    )

    tcp = out["tcp-direct"].latency_stats()
    udp = out["udp"].latency_stats()
    tcp_counted = sum(r.record_count for r in out["tcp-direct"].results)
    udp_counted = sum(r.record_count for r in out["udp"].results)
    rec = ExperimentRecord("E9c", "UDP protocol extension", SEED + 2)
    rec.check(
        "datagram shipping cuts result latency (no window, no ack RTT)",
        udp.p50 < tcp.p50,
        f"p50 {udp.p50:.2f}s vs {tcp.p50:.2f}s",
    )
    rec.check(
        "the price is bounded, non-silent loss",
        0.8 * tcp_counted <= udp_counted <= tcp_counted,
        f"{udp_counted} vs {tcp_counted} records counted",
    )
    report("E9c", table, rec.render())
    rec.assert_shape()
