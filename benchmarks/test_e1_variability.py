"""E1 — Assessing the cloud infrastructure's variability.

E1a: snapshot of the inter-datacenter throughput map (the figure the
Monitoring Agent renders for the whole Azure deployment).

E1b: a week of measurements from North Europe to the five other sites —
TCP throughput and blob staging times — reproducing the published
qualitative findings: double-digit relative variability, no useful trend,
and occasional deep drops, on the near and the far datacenters alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.cloud.deployment import CloudEnvironment
from repro.monitor.agent import MonitorConfig, MonitoringAgent
from repro.simulation.units import DAY, HOUR, MB, MINUTE

SEED = 20130521


@pytest.mark.benchmark(group="e1")
def test_e1a_throughput_map(benchmark, report):
    def run():
        env = CloudEnvironment(seed=SEED)
        for code in env.topology.region_codes():
            env.provision(code, "Small", 2)
        agent = MonitoringAgent(
            env.network, env.deployment, MonitorConfig(interval=MINUTE)
        )
        agent.watch_all_links()
        agent.start()
        env.run_until(30 * MINUTE)
        return env, agent

    env, agent = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = agent.link_map.matrix_rows()
    table = render_table(rows[0], rows[1:], title="E1a — inter-DC throughput map (MB/s)")

    rec = ExperimentRecord("E1a", "Inter-datacenter throughput map", SEED)
    ests = {
        pair: agent.link_map.estimate(*pair).mean
        for pair in agent.link_map.pairs()
    }
    rec.check("all 30 directed pairs measured", len(ests) == 30)
    same = [
        v
        for (s, d), v in ests.items()
        if (s in ("NEU", "WEU")) == (d in ("NEU", "WEU"))
    ]
    cross = [
        v
        for (s, d), v in ests.items()
        if (s in ("NEU", "WEU")) != (d in ("NEU", "WEU"))
    ]
    rec.check(
        "same-continent links faster than transcontinental",
        np.mean(same) > 1.5 * np.mean(cross),
        f"{np.mean(same) / MB:.1f} vs {np.mean(cross) / MB:.1f} MB/s",
    )
    intra = env.deployment.vms("NEU")[0].size.nic_bytes_per_s
    rec.check(
        "intra-DC transfers much faster than wide-area",
        intra > 2.0 * np.mean(cross),
        f"{intra / MB:.1f} vs {np.mean(cross) / MB:.1f} MB/s",
    )
    asym = [
        abs(ests[(a, b)] - ests[(b, a)]) / ests[(a, b)]
        for (a, b) in ests
        if (b, a) in ests
    ]
    rec.check("links are asymmetric", max(asym) > 0.05)
    report("E1a", table, rec.render())
    rec.assert_shape()


@pytest.mark.benchmark(group="e1")
def test_e1b_weekly_variability(benchmark, report):
    targets = ["WEU", "NUS", "SUS", "EUS", "WUS"]

    def run():
        env = CloudEnvironment(seed=SEED + 1)
        env.provision("NEU", "Small", 2)
        for code in targets:
            env.provision(code, "Small", 1)
        agent = MonitoringAgent(
            env.network,
            env.deployment,
            MonitorConfig(interval=5 * MINUTE),
        )
        for code in targets:
            agent.watch_link("NEU", code)
        agent.start()

        # Hourly 100 MB blob staging to the remote store (writing phase of
        # the storage experiment).
        blob_times: dict[str, list[float]] = {c: [] for c in targets}

        def stage(code: str) -> None:
            t0 = env.now
            env.blob(code).put(
                env.deployment.vms("NEU")[0],
                f"probe-{code}-{env.now:.0f}",
                100 * MB,
                on_done=lambda obj: blob_times[code].append(env.now - t0),
            )

        for code in targets:
            env.sim.add_periodic(2 * HOUR, stage, code)
        env.run_until(7 * DAY)
        return env, agent, blob_times

    env, agent, blob_times = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    rec = ExperimentRecord("E1b", "A week of NEU->* performance", SEED + 1)
    cvs = {}
    for code in targets:
        hist = agent.history(f"thr/NEU->{code}")
        s = summarize(hist.values())
        blobs = summarize(blob_times[code])
        cvs[code] = s.cv
        rows.append(
            [
                f"NEU->{code}",
                s.mean / MB,
                s.std / MB,
                100 * s.cv,
                s.minimum / MB,
                blobs.mean,
                blobs.std,
            ]
        )
    table = render_table(
        ["link", "thr mean MB/s", "std", "CV %", "min", "blob 100MB s", "std"],
        rows,
        title="E1b — one week of measurements from North Europe",
    )
    rec.check(
        "double-digit relative variability on WAN throughput",
        all(0.05 < cv < 0.45 for cv in cvs.values()),
        str({k: round(v, 2) for k, v in cvs.items()}),
    )
    # No useful trend: first-half and second-half weekly means agree.
    drifts = []
    for code in targets:
        hist = agent.history(f"thr/NEU->{code}")
        vals = hist.values()
        half = len(vals) // 2
        drifts.append(abs(vals[:half].mean() - vals[half:].mean()) / vals.mean())
    rec.check("no weekly trend (halves agree within 15 %)", max(drifts) < 0.15,
              f"max drift {max(drifts):.2%}")
    deep = [
        agent.history(f"thr/NEU->{c}").values().min()
        / agent.history(f"thr/NEU->{c}").mean()
        for c in targets
    ]
    rec.check(
        "occasional deep performance drops (glitches) visible",
        min(deep) < 0.55,
        f"deepest drop to {min(deep):.0%} of mean",
    )
    rec.check(
        "variability affects near and far datacenters alike",
        cvs["WEU"] > 0.05 and cvs["WUS"] > 0.05,
    )
    report("E1b", table, rec.render())
    rec.assert_shape()
