"""End-to-end backpressure, load shedding, and checkpoint/restore.

PR 2 made the system survive *failures*; this package makes it survive
*overload*. It provides:

* bounded ingest/shipping buffers with pluggable overload policies
  (:mod:`repro.flow.policy` — ``block`` / ``shed`` / ``degrade``) and
  explicit credit-based backpressure (:mod:`repro.flow.credits`);
* a circuit breaker on WAN shipping (:mod:`repro.flow.breaker`) that
  cooperates with the failure detector so dead links stop accumulating
  queued batches;
* durable checkpoint/restore of streaming state
  (:mod:`repro.flow.checkpoint`), which — combined with upstream batch
  retention and ``(origin, seq)`` dedup — upgrades at-least-once
  delivery into exactly-once window emission across aggregator restarts;
* the scripted overload-recovery scenario behind ``sage overload``
  (:mod:`repro.flow.scenario`, imported lazily to avoid a circular
  import with the streaming runtime).
"""

from repro.flow.breaker import CircuitBreaker
from repro.flow.checkpoint import Checkpointer, CheckpointStore
from repro.flow.credits import CreditGate
from repro.flow.policy import (
    POLICIES,
    BlockPolicy,
    DegradePolicy,
    FlowConfig,
    OverloadPolicy,
    ShedPolicy,
    make_policy,
)

__all__ = [
    "FlowConfig",
    "OverloadPolicy",
    "BlockPolicy",
    "ShedPolicy",
    "DegradePolicy",
    "make_policy",
    "POLICIES",
    "CreditGate",
    "CircuitBreaker",
    "CheckpointStore",
    "Checkpointer",
    "OverloadResult",
    "run_overload",
]


def __getattr__(name):
    # ``scenario`` imports the streaming runtime, which imports this
    # package for FlowConfig — resolve the cycle by loading it lazily.
    if name in ("OverloadResult", "run_overload"):
        from repro.flow import scenario

        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
