"""Circuit breaker for WAN shipping links.

Classic three-state breaker on the virtual clock:

* **closed** — traffic flows; consecutive delivery failures are counted;
* **open** — after ``failure_threshold`` consecutive failures (or a
  fault-bus event naming the link) no new attempt enters the link for
  ``reset_timeout`` seconds, so a dead route stops consuming senders,
  retries, and queue space;
* **half-open** — one probe attempt is let through; success closes the
  breaker, failure re-opens it for another full timeout.

The breaker cooperates with the failure-detection plumbing of the
engine: ``link.down`` / ``partition`` events covering its link trip it
immediately (no need to burn ``failure_threshold`` timeouts against a
link the monitor already knows is dead) and ``link.up`` arms an
immediate half-open probe.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Fault kinds that imply a specific link is gone / back.
_LINK_DOWN_KINDS = ("link.down", "partition")
_LINK_UP_KINDS = ("link.up", "partition.heal")


class CircuitBreaker:
    """Failure-counting gate for one directed WAN link."""

    def __init__(
        self,
        engine,
        link: tuple[str, str] | None = None,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        name: str | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.engine = engine
        self.link = link
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name or (f"{link[0]}->{link[1]}" if link else "breaker")
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self.closes = 0
        self._reopen_at = -1.0
        obs = engine.observer
        self._obs_on = obs.enabled
        self._m_transitions = {
            state: obs.counter(
                "flow_breaker_transitions_total", breaker=self.name, to=state
            )
            for state in (CLOSED, OPEN, HALF_OPEN)
        }
        self._m_state = obs.gauge("flow_breaker_state", breaker=self.name)
        if link is not None:
            engine.on_fault(self._on_fault)

    # ------------------------------------------------------------------
    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if state == OPEN:
            self.opens += 1
        elif state == CLOSED:
            self.closes += 1
        if self._obs_on:
            self._m_transitions[state].inc()
            self._m_state.set(
                {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}[state]
            )

    def _covers(self, target: str) -> bool:
        """Whether a fault-bus target string names this breaker's link."""
        if self.link is None:
            return False
        src, dst = self.link
        if "|" in target:  # partition: "A,B|C,D" region groups
            left, _, right = target.partition("|")
            a = {r.strip() for r in left.split(",")}
            b = {r.strip() for r in right.split(",")}
            return (src in a and dst in b) or (src in b and dst in a)
        return target == f"{src}->{dst}"

    def _on_fault(self, kind: str, target: str) -> None:
        if kind in _LINK_DOWN_KINDS and self._covers(target):
            self.trip()
        elif kind in _LINK_UP_KINDS and self._covers(target):
            if self.state == OPEN:
                # The monitor says the link is back: probe right away
                # instead of waiting out the timeout.
                self._reopen_at = self.engine.sim.now

    # ------------------------------------------------------------------
    def trip(self) -> None:
        """Open immediately (fault-bus shortcut past the failure count)."""
        self.consecutive_failures = max(
            self.consecutive_failures, self.failure_threshold
        )
        self._reopen_at = self.engine.sim.now + self.reset_timeout
        self._transition(OPEN)

    def record_failure(self) -> None:
        """One delivery attempt timed out / failed."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: back to open for a full timeout.
            self._reopen_at = self.engine.sim.now + self.reset_timeout
            self._transition(OPEN)
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._reopen_at = self.engine.sim.now + self.reset_timeout
            self._transition(OPEN)

    def record_success(self) -> None:
        """One delivery attempt was acknowledged."""
        self.consecutive_failures = 0
        self._transition(CLOSED)

    def allow(self) -> bool:
        """May an attempt enter the link now?

        In the open state the first call past the reset timeout becomes
        the half-open probe; while the probe is outstanding every other
        caller keeps waiting.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and self.engine.sim.now >= self._reopen_at:
            self._transition(HALF_OPEN)
            return True
        return False

    def probe_delay(self) -> float:
        """Seconds until the next half-open probe becomes possible."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self._reopen_at - self.engine.sim.now)
