"""The scripted overload-recovery scenario behind ``sage overload``.

:func:`run_overload` builds a deterministic geo-streaming run (two
producing sites, one aggregation site, reliable shipping with a bounded
in-flight window and per-link circuit breakers, periodic checkpointing)
and scripts three stresses on top of it:

1. a **5× ingest burst** at both sites — sustained load beyond the
   sites' processing capacity, so the configured overload policy
   actually has to answer;
2. a **link brownout** — the first site's WAN link to the aggregation
   region drops to a tenth of its capacity mid-burst, saturating the
   shipping window and exercising breaker + upstream backpressure;
3. an **aggregator crash** during the recovery tail, restarted from the
   latest checkpoint with upstream batch replay.

The run drains cleanly, so the overload contract can be checked
exactly per policy:

* ``block`` — zero lost records, every site's backlog bounded by
  ``max_backlog``; the overload surfaces as deferral (source pending
  buffers) and latency;
* ``shed`` — latency stays bounded and every lost record is accounted:
  ``ingested − counted`` equals shed (site + shipping) + late drops;
* ``degrade`` — memory bounded at twice the nominal bound, coarse-mode
  ticks counted;
* all policies — the crash/restart emits every window exactly once
  (checkpoint + ``(origin, seq)`` dedup + replay), deterministically
  under a fixed seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cloud.deployment import CloudEnvironment
from repro.config import OverloadConfig, resolve_config
from repro.core.engine import SageEngine
from repro.report import ScenarioReport, metrics_snapshot
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.flow.policy import FlowConfig
from repro.obs.audit import SLOAuditor
from repro.simulation.units import format_bytes
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime, LatencyStats
from repro.streaming.shipping import ReliableShipping, SageShipping
from repro.streaming.sources import BurstSource
from repro.streaming.windows import TumblingWindows


@dataclass
class OverloadResult:
    """Everything the overload report needs, in plain numbers."""

    seed: int
    policy: str
    duration: float
    max_backlog_bound: int
    ingested: int
    counted: int
    results: int
    #: Per-site peak backlog depth (records), keyed by region.
    backlog_peaks: dict[str, int] = field(default_factory=dict)
    #: Source records still deferred when sources stopped (block).
    deferred_final: int = 0
    max_deferred: int = 0
    shed_site: int = 0
    shed_shipping: int = 0
    late_dropped: int = 0
    late_partial_records: int = 0
    blocked_ticks: int = 0
    degraded_ticks: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    retries: int = 0
    abandoned: int = 0
    abandoned_records: int = 0
    duplicates_dropped: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    aggregator_crashes: int = 0
    batches_dropped_while_down: int = 0
    batches_replayed: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats.empty)
    wan_bytes: float = 0.0
    #: Continuous-auditor outcome (:class:`repro.obs.audit.AuditReport`
    #: dict form) and attributed cost rollup.
    audit: dict = field(default_factory=dict)
    cost: dict = field(default_factory=dict)
    slo_violations: int = 0
    strict_slo: bool = False

    @property
    def shed(self) -> int:
        return self.shed_site + self.shed_shipping

    @property
    def lost(self) -> int:
        return max(0, self.ingested - self.counted)

    @property
    def accounted(self) -> bool:
        """Every missing record is explained by a shed/late counter."""
        return self.lost == (
            self.shed
            + self.late_dropped
            + self.late_partial_records
            + self.abandoned_records
        )

    @property
    def backlog_bounded(self) -> bool:
        """No site's buffer ever exceeded its policy bound.

        ``degrade`` trims at twice the bound by contract; ``block`` and
        ``shed`` must hold the bound itself.
        """
        bound = self.max_backlog_bound
        if self.policy == "degrade":
            bound *= 2
        return all(peak <= bound for peak in self.backlog_peaks.values())

    @property
    def clean(self) -> bool:
        """The overload contract held for the configured policy."""
        ok = self.backlog_bounded and self.accounted
        if self.policy == "block":
            ok = ok and self.lost == 0
        if self.strict_slo:
            ok = ok and self.slo_violations == 0
        return ok

    def describe(self) -> str:
        peaks = ", ".join(
            f"{region}={peak}"
            for region, peak in sorted(self.backlog_peaks.items())
        )
        lines = [
            f"overload run: policy={self.policy} seed={self.seed} "
            f"duration={self.duration:.0f}s",
            "",
            f"backlog bound {self.max_backlog_bound}, peaks: {peaks}"
            + ("" if self.backlog_bounded else "  ** BOUND EXCEEDED **"),
            f"source deferral: peak {self.max_deferred}, "
            f"final {self.deferred_final}",
            f"blocked ticks {self.blocked_ticks}, "
            f"degraded ticks {self.degraded_ticks}",
            f"shed: {self.shed_site} at sites, "
            f"{self.shed_shipping} in shipping; "
            f"late: {self.late_dropped} site-dropped, "
            f"{self.late_partial_records} in late partials",
            f"breaker: {self.breaker_opens} opens, "
            f"{self.breaker_closes} closes; "
            f"shipping: {self.retries} retries, {self.abandoned} abandoned",
            f"checkpoints: {self.checkpoints} "
            f"({format_bytes(float(self.checkpoint_bytes))} latest), "
            f"aggregator crashes {self.aggregator_crashes}, "
            f"{self.batches_dropped_while_down} deliveries while down, "
            f"{self.batches_replayed} batches replayed",
            f"aggregator dedup: {self.duplicates_dropped} duplicate batches",
            "",
            f"records ingested: {self.ingested}",
            f"records counted:  {self.counted} "
            f"in {self.results} window results "
            f"(lost {self.lost}, "
            + ("accounted" if self.accounted else "UNACCOUNTED")
            + ")",
            self.latency.describe(),
            f"wide-area bytes: {format_bytes(self.wan_bytes)}",
            f"auditor: {self.audit.get('checks', 0)} checks, "
            f"{self.slo_violations} violations"
            + (" (strict)" if self.strict_slo else ""),
            "",
            "verdict: "
            + (
                "CLEAN — overload contract held"
                if self.clean
                else "OVERLOAD CONTRACT VIOLATED"
            ),
        ]
        return "\n".join(lines)


def run_overload(
    config: OverloadConfig | str | dict | None = None,
    *,
    observer=None,
    **legacy,
) -> ScenarioReport:
    """Run the scripted overload scenario to completion (virtual time).

    Takes an :class:`~repro.config.OverloadConfig` (or its dict form);
    the pre-dataclass keyword surface (``policy=``, ``seed=``, ...) —
    including the old ``policy`` first positional — still works but
    emits :class:`DeprecationWarning`. Returns a
    :class:`~repro.report.ScenarioReport` whose ``details`` is the
    :class:`OverloadResult` payload (attribute access falls through).

    Each site's processing capacity is set to twice ``base_rate``, so
    the ``burst_factor``× spike in ``burst_window`` overloads it by a
    wide margin and the post-burst drain still completes within the
    run. ``brownout`` is ``(start, duration, capacity_scale)`` on the
    first site's link to the aggregation region (None disables it);
    ``crash_at``/``restart_after`` script the aggregator crash (None
    disables). Same seed, same numbers — the determinism test relies
    on it.
    """
    if isinstance(config, str):  # pre-dataclass positional policy
        legacy["policy"] = config
        config = None
    cfg = resolve_config(
        OverloadConfig, config, legacy,
        "run_overload(policy=..., seed=..., ...)",
        "run_overload(OverloadConfig(...))",
    )
    wall0 = time.perf_counter()
    policy = cfg.policy
    seed = cfg.seed
    duration = cfg.duration
    site_regions = cfg.site_regions
    aggregation_region = cfg.aggregation_region
    base_rate = cfg.base_rate
    burst_factor = cfg.burst_factor
    burst_window = cfg.burst_window
    max_backlog = cfg.max_backlog
    brownout = cfg.brownout
    crash_at = cfg.crash_at
    restart_after = cfg.restart_after
    checkpoint_interval = cfg.checkpoint_interval

    flow = FlowConfig(
        policy=policy,
        max_backlog=max_backlog,
        max_inflight=8,
        # ``block`` must never shed in the shipping layer; the lossy
        # policies bound the parked queue as well.
        max_pending=None if policy == "block" else 64,
        breaker_threshold=3,
        breaker_reset=20.0,
    )
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    spec = {site_regions[0]: 2, site_regions[1]: 2, aggregation_region: 4}
    engine = SageEngine(env, deployment_spec=spec, observer=observer)
    engine.start(learning_phase=120.0)

    job = StreamJob(
        name="overload",
        sites=[
            SiteSpec(
                region,
                [
                    BurstSource(
                        f"src-{region}",
                        base_rate=base_rate,
                        burst_rate=base_rate * burst_factor,
                        burst_start=burst_window[0],
                        burst_end=burst_window[1],
                        keys=["k1", "k2"],
                    )
                ],
            )
            for region in site_regions
        ],
        aggregation_region=aggregation_region,
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        # The grace must cover the worst partial-arrival delay: source
        # deferral under ``block`` (tens of seconds), plus brownout
        # retries with backoff. 120s holds all of it with margin.
        finalize_grace=120.0,
        flow=flow,
    )
    factory = ReliableShipping.factory(
        SageShipping.factory(n_nodes=2, plan_ttl=30.0),
        delivery_timeout=15.0,
        max_retries=8,
        max_inflight=flow.max_inflight,
        max_pending=flow.max_pending,
        breaker=True,
        breaker_threshold=flow.breaker_threshold,
        breaker_reset=flow.breaker_reset,
    )
    runtime = GeoStreamRuntime(
        engine, job, factory, per_vm_records_per_s=base_rate
    )
    store = runtime.enable_checkpointing(
        interval=checkpoint_interval
    ).store
    auditor = SLOAuditor(
        engine,
        runtime,
        max_latency_s=cfg.slo_max_latency_s,
        max_usd_per_1k=cfg.slo_max_usd_per_1k,
    ).start()

    if brownout is not None:
        start, length, scale = brownout
        plan = FaultPlan()
        if scale <= 0.0:
            # Full blackhole: the fault bus announces link.down, so the
            # breaker trips through detector cooperation, not timeouts.
            plan.link_down(
                start, site_regions[0], aggregation_region, duration=length
            )
        else:
            plan.flap_link(
                start, site_regions[0], aggregation_region, scale, length
            )
        FaultInjector(engine, plan).arm()

    replayed = [0]
    if crash_at is not None:

        def _crash() -> None:
            runtime.crash_aggregator()

        def _restart() -> None:
            before = sum(
                site.retained_batches for site in runtime.sites.values()
            )
            runtime.restart_aggregator()
            replayed[0] += before

        engine.sim.schedule(crash_at, _crash)
        engine.sim.schedule(crash_at + restart_after, _restart)

    t0 = engine.sim.now
    runtime.start()
    engine.run_until(t0 + duration)
    # Quiet the sources but keep ticking so backlogs drain, watermarks
    # pass every open window, and the batchers flush. ``drain`` lets a
    # blocked source deliver its deferred tail instead of freezing it
    # (which would pin the watermark and strand open windows).
    for site in runtime.sites.values():
        site.stop_sources(drain=True)
    # Outlive the scripted faults (a short run may stop the sources with
    # the crash/restart or the blackout still ahead) ...
    horizon = t0 + duration
    if crash_at is not None:
        horizon = max(horizon, t0 + crash_at + restart_after)
    if brownout is not None:
        horizon = max(horizon, t0 + brownout[0] + brownout[1])
    if engine.sim.now < horizon:
        engine.run_until(horizon)

    # ... then drain to *quiescence*, not a fixed window: the recovery
    # tail is data-dependent (stopping mid-burst leaves full buffers),
    # and killing the ticks with records still in the pipe would lose
    # them silently — exactly what the overload contract forbids. The
    # cap only bounds a runaway policy bug, never healthy recovery.
    drain_cap = engine.sim.now + 1800.0
    while runtime.in_pipe() and engine.sim.now < drain_cap:
        engine.run_until(engine.sim.now + 10.0)
    engine.run_until(engine.sim.now + job.watermark_lag + 30.0)
    runtime.stop()
    engine.run_until(engine.sim.now + job.finalize_grace + 60.0)
    engine.env.finalize()

    audit_report = auditor.finish()
    cost = engine.ledger.summary(
        windows=len(runtime.results) or None,
        records=runtime.records_ingested() or None,
    )
    sites = list(runtime.sites.values())
    backends = [site.shipping for site in sites]
    breakers = [b.breaker for b in backends if b.breaker is not None]
    sources = [src for site in sites for src in site.spec.sources]
    agg = runtime.aggregator
    result = OverloadResult(
        seed=seed,
        policy=policy,
        duration=duration,
        max_backlog_bound=max_backlog,
        ingested=runtime.records_ingested(),
        counted=runtime.records_in_results(),
        results=len(runtime.results),
        backlog_peaks={
            site.spec.region: site.max_backlog for site in sites
        },
        deferred_final=sum(src.pending_count for src in sources),
        max_deferred=sum(src.max_deferred for src in sources),
        shed_site=sum(site.records_shed for site in sites),
        shed_shipping=sum(b.records_shed for b in backends),
        late_dropped=sum(site.aggregator.late_dropped for site in sites),
        late_partial_records=agg.late_partial_records,
        blocked_ticks=sum(site.blocked_ticks for site in sites),
        degraded_ticks=sum(site.degraded_ticks for site in sites),
        breaker_opens=sum(b.opens for b in breakers),
        breaker_closes=sum(b.closes for b in breakers),
        retries=sum(b.retries for b in backends),
        abandoned=sum(b.abandoned for b in backends),
        abandoned_records=sum(b.records_abandoned for b in backends),
        duplicates_dropped=agg.duplicates_dropped,
        checkpoints=store.saves,
        checkpoint_bytes=store.size_bytes("aggregator"),
        aggregator_crashes=runtime.aggregator_crashes,
        batches_dropped_while_down=runtime.batches_dropped_while_down,
        batches_replayed=replayed[0],
        latency=runtime.latency_stats(),
        wan_bytes=runtime.wan_bytes(),
        audit=audit_report.to_dict(),
        cost=cost.to_dict(),
        slo_violations=len(audit_report.violations),
        strict_slo=cfg.strict_slo,
    )
    return ScenarioReport(
        scenario="overload",
        config=cfg.to_dict(),
        seed=seed,
        virtual_seconds=engine.sim.now,
        wall_seconds=time.perf_counter() - wall0,
        details=result,
        metrics=metrics_snapshot(observer),
    )


__all__ = ["OverloadResult", "run_overload"]
