"""Overload policies: what a site does when ingest exceeds capacity.

Three answers, matching how production stream processors degrade:

* ``block`` — lossless backpressure. The ingest buffer is a hard bound;
  sources are granted exactly the remaining credits and must defer the
  rest (their pending buffer grows, their emission throttles). When the
  shipping layer saturates, the drain loop stalls too, so pressure
  propagates aggregator → shipping → site → source. Memory and loss stay
  bounded at zero; latency absorbs the overload.

* ``shed`` — bounded latency. Every arriving record is admitted, then the
  buffer is trimmed back to the bound by dropping the *oldest* records
  (or, in ``sample`` mode, by probabilistically refusing arrivals once
  the buffer is full). Shed records are counted per site so loss is
  always quantified, never silent.

* ``degrade`` — bounded memory at reduced fidelity/cost. The site enters
  a coarse mode when the buffer crosses the bound: the drain budget is
  multiplied by ``degrade_factor`` (modelling a cheaper coarse code
  path) and the batcher flushes ``degrade_factor``× less often, cutting
  fewer, larger batches. If even coarse mode cannot keep up, the buffer
  is trimmed like ``shed`` as a last resort, so memory stays bounded.

Policies are pluggable: :func:`make_policy` builds one from a
:class:`FlowConfig`, and anything implementing the same three hooks can
be passed to ``SiteRuntime`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ConfigBase

POLICIES = ("block", "shed", "degrade")


@dataclass(frozen=True)
class FlowConfig(ConfigBase):
    """End-to-end flow-control knobs for a streaming job."""

    #: Overload policy name: ``block`` | ``shed`` | ``degrade``.
    policy: str = "block"
    #: Hard bound on each site's ingest buffer (records).
    max_backlog: int = 50_000
    #: Max unacknowledged batches in flight per shipping backend
    #: (the receiver-granted credit window). ``None`` = unlimited.
    max_inflight: int | None = 16
    #: Bound on batches parked behind the in-flight window / an open
    #: breaker before the shipping layer itself starts shedding
    #: (``None`` = unlimited; ``block`` should keep this generous).
    max_pending: int | None = 256
    #: ``shed`` trimming mode: ``oldest`` (drop-oldest) or ``sample``
    #: (probabilistically refuse arrivals once full).
    shed_mode: str = "oldest"
    #: Coarse-mode gain for ``degrade``: drain budget multiplier and
    #: batcher flush-interval multiplier.
    degrade_factor: int = 4
    #: Hysteresis: coarse mode / source pause clears once the buffer
    #: falls below ``resume_ratio × max_backlog``.
    resume_ratio: float = 0.5
    #: Consecutive delivery timeouts before a WAN circuit breaker opens.
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before the half-open probe.
    breaker_reset: float = 30.0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown overload policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")
        if self.shed_mode not in ("oldest", "sample"):
            raise ValueError("shed_mode must be 'oldest' or 'sample'")
        if self.degrade_factor < 2:
            raise ValueError("degrade_factor must be >= 2")
        if not 0.0 < self.resume_ratio <= 1.0:
            raise ValueError("resume_ratio must be in (0, 1]")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset <= 0:
            raise ValueError("breaker_reset must be positive")


class OverloadPolicy:
    """Site-side overload hooks. Subclasses override the three methods.

    ``site`` is the :class:`~repro.streaming.runtime.SiteRuntime` the
    policy governs; policies reach into its backlog deque and counters —
    they are the one component allowed to, by design.
    """

    name = "?"

    def __init__(self, config: FlowConfig) -> None:
        self.config = config

    # -- ingest --------------------------------------------------------
    def admit(self, site, records: list) -> int:
        """Admit ``records`` into ``site``'s backlog.

        Returns how many of ``records`` were *accepted from the source's
        point of view* — anything less tells the source to defer the
        remainder (lossless); shedding policies accept everything and
        trim internally (lossy, counted).
        """
        raise NotImplementedError  # pragma: no cover - abstract

    # -- drain ---------------------------------------------------------
    def drain_budget(self, site, base_budget: int) -> int:
        """Per-tick processing budget (0 stalls the drain this tick)."""
        return base_budget

    def flush_allowed(self, site) -> bool:
        """Whether the batcher's periodic flush may run this tick."""
        return True

    # -- helpers -------------------------------------------------------
    def _trim_oldest(self, site, bound: int) -> int:
        """Drop-oldest until the backlog is back at ``bound``."""
        backlog = site._backlog
        if hasattr(backlog, "trim_to"):  # columnar ChunkedBacklog
            dropped = backlog.trim_to(bound)
        else:
            dropped = 0
            while len(backlog) > bound:
                backlog.popleft()
                dropped += 1
        if dropped:
            site.count_shed(dropped)
        return dropped


class BlockPolicy(OverloadPolicy):
    """Lossless credit-based backpressure."""

    name = "block"

    def admit(self, site, records: list) -> int:
        granted = site.credits.acquire(len(records))
        if granted:
            site._backlog.extend(records[:granted])
        return granted

    def drain_budget(self, site, base_budget: int) -> int:
        # Shipping saturation propagates upstream: stop producing
        # partials until the WAN window drains.
        if getattr(site.shipping, "saturated", False):
            site.count_blocked_tick()
            return 0
        return base_budget


class ShedPolicy(OverloadPolicy):
    """Bounded latency by counted record loss."""

    name = "shed"

    def admit(self, site, records: list) -> int:
        cfg = self.config
        backlog = site._backlog
        if cfg.shed_mode == "sample" and len(backlog) >= cfg.max_backlog:
            # Probabilistic sampling: once full, each arrival is kept
            # with p=0.5, spreading the loss across the stream instead
            # of concentrating it on the oldest records.
            rng = site.flow_rng
            if hasattr(records, "where"):  # columnar RecordBatch
                # rng.random(n) consumes the bit stream exactly like n
                # scalar draws, so both planes keep the same records.
                kept = records.where(rng.random(len(records)) < 0.5)
            else:
                kept = [r for r in records if rng.random() < 0.5]
            shed = len(records) - len(kept)
            if shed:
                site.count_shed(shed)
            backlog.extend(kept)
        else:
            backlog.extend(records)
        self._trim_oldest(site, cfg.max_backlog)
        return len(records)


class DegradePolicy(OverloadPolicy):
    """Coarsen processing and batching under pressure."""

    name = "degrade"

    def __init__(self, config: FlowConfig) -> None:
        super().__init__(config)
        self.active = False
        self._tick_no = 0

    def admit(self, site, records: list) -> int:
        site._backlog.extend(records)
        # Last resort: even the coarse path cannot keep up — trim so
        # memory stays bounded (counted as shed, never silent).
        self._trim_oldest(site, 2 * self.config.max_backlog)
        return len(records)

    def drain_budget(self, site, base_budget: int) -> int:
        cfg = self.config
        depth = len(site._backlog)
        if not self.active and depth > cfg.max_backlog:
            self.active = True
            site.count_degrade(True)
        elif self.active and depth < cfg.resume_ratio * cfg.max_backlog:
            self.active = False
            site.count_degrade(False)
        if self.active:
            site.count_degraded_tick()
            return base_budget * cfg.degrade_factor
        return base_budget

    def flush_allowed(self, site) -> bool:
        self._tick_no += 1
        if not self.active:
            return True
        # Coarse batches: hold partials degrade_factor× longer so each
        # WAN batch amortises its per-batch overhead over more records.
        return self._tick_no % self.config.degrade_factor == 0


_POLICY_CLASSES = {
    "block": BlockPolicy,
    "shed": ShedPolicy,
    "degrade": DegradePolicy,
}


def make_policy(config: FlowConfig) -> OverloadPolicy:
    """Build the policy object a :class:`FlowConfig` names."""
    return _POLICY_CLASSES[config.policy](config)
