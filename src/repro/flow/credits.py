"""Credit-based admission control.

A :class:`CreditGate` is a bounded pool of credits shared between a
producer and a consumer: the producer must *acquire* a credit per item
before admitting it, the consumer *releases* credits as items complete.
When the pool is empty the producer is told exactly how much it may
admit (possibly zero) — backpressure is therefore explicit and lossless,
and propagates stage by stage: the aggregator bounds the shipping
layer's in-flight window, the shipping layer's saturation stalls the
site's drain loop, the site's full ingest buffer throttles its sources.

An ``capacity=None`` gate is unlimited (every acquire is granted) so
call sites need no branching for the legacy unbounded configuration.
"""

from __future__ import annotations


class CreditGate:
    """A bounded credit pool with an observability gauge."""

    __slots__ = ("capacity", "_in_use", "_gauge", "denied")

    def __init__(self, capacity: int | None, gauge=None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("credit capacity must be positive (or None)")
        self.capacity = capacity
        self._in_use = 0
        self._gauge = gauge
        #: Credits requested but not granted (cumulative).
        self.denied = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int | None:
        """Free credits, or ``None`` for an unlimited gate."""
        if self.capacity is None:
            return None
        return max(0, self.capacity - self._in_use)

    @property
    def exhausted(self) -> bool:
        return self.capacity is not None and self._in_use >= self.capacity

    def acquire(self, n: int = 1) -> int:
        """Take up to ``n`` credits; returns how many were granted."""
        if n < 0:
            raise ValueError("cannot acquire a negative credit count")
        if self.capacity is None:
            self._in_use += n
            return n
        granted = min(n, self.capacity - self._in_use)
        granted = max(0, granted)
        self._in_use += granted
        self.denied += n - granted
        self._update_gauge()
        return granted

    def release(self, n: int = 1) -> None:
        """Return ``n`` credits to the pool."""
        if n < 0:
            raise ValueError("cannot release a negative credit count")
        self._in_use = max(0, self._in_use - n)
        self._update_gauge()

    def _update_gauge(self) -> None:
        if self._gauge is not None and self.capacity is not None:
            self._gauge.set(self.capacity - self._in_use)
