"""Durable checkpoint/restore of streaming state.

:class:`CheckpointStore` is the simulation's stand-in for a durable
store (object storage, a replicated log): snapshots are serialized to
JSON on ``save`` — which *enforces* that every byte of checkpointed
state is actually serializable, the property crash-restart recovery
depends on — and deserialized on ``load``, so a restored component can
share no live object with its crashed predecessor.

:class:`Checkpointer` drives periodic snapshots on the virtual clock:
components register ``(name, snapshot_fn)`` pairs; every interval each
function is called and its payload saved. A snapshot function may
return ``None`` to skip a round (e.g. the component is currently down).
Checkpoint size and age are exported through ``repro.obs``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable


class CheckpointStore:
    """In-memory durable store with JSON-roundtrip semantics."""

    def __init__(self) -> None:
        self._blobs: dict[str, str] = {}
        self._saved_at: dict[str, float] = {}
        self._seq: dict[str, int] = {}
        self._on_save: list[Callable[[str, int, float], None]] = []
        self.saves = 0
        self.loads = 0

    def on_save(self, cb: Callable[[str, int, float], None]) -> None:
        """Subscribe ``cb(name, seq, now)`` to every successful save.

        The control plane uses this to ship fresh aggregator snapshots
        to warm standbys; anything else that wants write-through
        replication of the store can ride the same hook.
        """
        self._on_save.append(cb)

    def seq(self, name: str) -> int:
        """Monotonic save counter for ``name`` (0 if never saved)."""
        return self._seq.get(name, 0)

    def save(self, name: str, payload: dict[str, Any], now: float = 0.0) -> int:
        """Serialize and store ``payload``; returns its size in bytes.

        Non-JSON-serializable state raises immediately — a checkpoint
        that cannot be written must fail at save time, not at the
        restore that was supposed to rescue the run.
        """
        blob = json.dumps(payload, separators=(",", ":"))
        self._blobs[name] = blob
        self._saved_at[name] = now
        self._seq[name] = self._seq.get(name, 0) + 1
        self.saves += 1
        for cb in self._on_save:
            cb(name, self._seq[name], now)
        return len(blob)

    def load(self, name: str) -> dict[str, Any] | None:
        """Deserialize the latest snapshot, or ``None`` if absent."""
        blob = self._blobs.get(name)
        if blob is None:
            return None
        self.loads += 1
        return json.loads(blob)

    def size_bytes(self, name: str) -> int:
        return len(self._blobs.get(name, ""))

    def age(self, name: str, now: float) -> float:
        """Seconds since ``name`` was last saved (inf if never)."""
        saved = self._saved_at.get(name)
        return math.inf if saved is None else now - saved

    def names(self) -> list[str]:
        return sorted(self._blobs)

    def __contains__(self, name: str) -> bool:
        return name in self._blobs


class Checkpointer:
    """Periodic checkpoint driver on the simulation clock."""

    def __init__(self, engine, store: CheckpointStore, interval: float = 15.0):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.engine = engine
        self.store = store
        self.interval = interval
        self._targets: list[tuple[str, Callable[[], dict | None]]] = []
        self._task = None
        self.rounds = 0
        obs = engine.observer
        self._obs_on = obs.enabled
        self._m_total = obs.counter("flow_checkpoints_total")
        self._m_skipped = obs.counter("flow_checkpoints_skipped_total")
        self._st_ckpt = obs.stage("flow.checkpoint")

    def register(self, name: str, snapshot_fn: Callable[[], dict | None]):
        """Add a snapshot target (idempotent per name: last wins)."""
        self._targets = [(n, f) for n, f in self._targets if n != name]
        self._targets.append((name, snapshot_fn))
        return self

    def start(self) -> "Checkpointer":
        if self._task is None:
            self._task = self.engine.sim.add_periodic(
                self.interval, self.run_once
            )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def run_once(self) -> None:
        """Snapshot every registered target now (also the periodic body)."""
        now = self.engine.sim.now
        self.rounds += 1
        obs = self.engine.observer
        with self._st_ckpt:
            for name, fn in self._targets:
                age = self.store.age(name, now)
                payload = fn()
                if payload is None:
                    if self._obs_on:
                        self._m_skipped.inc()
                    continue
                size = self.store.save(name, payload, now)
                if self._obs_on:
                    self._m_total.inc()
                    obs.gauge("flow_checkpoint_bytes", target=name).set(size)
                    if math.isfinite(age):
                        # Age of the snapshot being *replaced*: the exposure
                        # window a crash at this instant would have lost.
                        obs.gauge(
                            "flow_checkpoint_age_seconds", target=name
                        ).set(age)
