"""The one supported import surface of the SAGE reproduction.

Everything an experiment driver needs lives here (and is re-exported
from ``repro`` itself):

* :class:`SageSession` / :class:`TransferResult` — interactive managed
  transfers over a simulated deployment;
* :func:`run_experiment` — run one scenario by name, returning a
  :class:`~repro.report.ScenarioReport`;
* :func:`run_sweep` / :func:`default_suite` — shard a list of
  :class:`~repro.runner.SweepTask` across a process pool with result
  caching, returning a :class:`~repro.runner.SweepReport`;
* the frozen config dataclasses (:class:`ChaosConfig`,
  :class:`OverloadConfig`, ...) and typed result surfaces
  (:class:`ScenarioReport`, :class:`StreamReport`, :class:`SweepReport`).

Deeper imports (``repro.cloud``, ``repro.streaming``, ...) remain
available but are implementation surface; only this module's names are
covered by the deprecation policy.
"""

from __future__ import annotations

from repro.config import (
    SOAK_PROFILES,
    BlobRelayConfig,
    ChaosConfig,
    ControlConfig,
    DirectConfig,
    GenConfig,
    GridFtpConfig,
    OverloadConfig,
    ParallelStaticConfig,
    RecordPlaneConfig,
    ServeConfig,
    ShortestPathConfig,
    SoakConfig,
    default_record_plane,
    set_default_record_plane,
)
from repro.control.scenario import run_serve
from repro.core.api import SageSession, TransferResult
from repro.gen.soak import run_soak
from repro.report import ScenarioReport, StreamReport
from repro.runner import (
    SweepReport,
    SweepRunner,
    SweepTask,
    derive_seed,
    register_scenario,
    registered_scenarios,
)
from repro.runner.tasks import execute_task


def run_experiment(
    scenario: str,
    config: dict | object | None = None,
    *,
    seed: int | None = None,
    observer=None,
) -> ScenarioReport:
    """Run one registered scenario and return its :class:`ScenarioReport`.

    ``scenario`` is a registry name (``"chaos"``, ``"overload"``, or
    anything added via :func:`register_scenario`); ``config`` is the
    scenario's config dataclass, its dict form, or ``None`` for
    defaults. ``seed`` overrides the config's seed when given.
    """
    from repro.runner.tasks import _ensure_builtin, _REGISTRY

    _ensure_builtin()
    if scenario not in _REGISTRY:
        raise ValueError(
            f"unknown scenario {scenario!r}; "
            f"registered: {registered_scenarios()}"
        )
    config_cls, run_fn = _REGISTRY[scenario]
    if config is None:
        cfg = config_cls()
    elif isinstance(config, dict):
        cfg = config_cls.from_dict(config)
    elif isinstance(config, config_cls):
        cfg = config
    else:
        raise TypeError(
            f"expected {config_cls.__name__}, dict, or None — "
            f"got {type(config).__name__}"
        )
    if seed is not None:
        cfg = cfg.replace(seed=seed)
    return run_fn(cfg, observer=observer)


def default_suite(
    duration: float = 240.0, generated: int = 0
) -> list[SweepTask]:
    """The standard E-suite sweep: chaos (both arms) + overload (all
    policies), one shard each — plus, with ``generated=N``, N seeded
    generator shards.

    Each generated shard is a short soak over a *distinct* generated
    scenario: the runner derives a different child seed per shard name,
    and the generator expands that seed into its own deployment,
    traffic, and fault program, cycling through the profiles. The
    content-addressed cache keys on (scenario, config, seed), so a
    cached sweep accumulates coverage of arbitrarily many generated
    scenarios across runs.
    """
    tasks = [
        SweepTask(
            name="chaos-inject",
            scenario="chaos",
            config={"duration": duration, "inject": True},
        ),
        SweepTask(
            name="chaos-baseline",
            scenario="chaos",
            config={"duration": duration, "inject": False},
        ),
    ]
    tasks.extend(
        SweepTask(
            name=f"overload-{policy}",
            scenario="overload",
            config={"policy": policy, "duration": duration},
        )
        for policy in ("block", "shed", "degrade")
    )
    tasks.extend(
        SweepTask(
            name=f"soak-gen-{i:03d}",
            scenario="soak",
            config={
                # Short horizon per shard: the axis buys scenario
                # *diversity*, the dedicated soak command buys duration.
                "hours": max(duration, 240.0) / 3600.0,
                "profile": SOAK_PROFILES[i % len(SOAK_PROFILES)],
            },
        )
        for i in range(generated)
    )
    return tasks


def run_sweep(
    tasks: list[SweepTask] | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
    root_seed: int = 2013,
    observer=None,
) -> SweepReport:
    """Run a sweep (default: :func:`default_suite`) and return its report.

    ``jobs`` > 1 shards across a spawn-based process pool; output is
    bit-identical to ``jobs=1`` by construction (see
    :mod:`repro.runner`). ``cache_dir`` enables the content-addressed
    result cache — warm re-runs execute zero simulations.
    """
    if tasks is None:
        tasks = default_suite()
    runner = SweepRunner(
        jobs=jobs, cache_dir=cache_dir, root_seed=root_seed, observer=observer
    )
    return runner.run(tasks)


__all__ = [
    "BlobRelayConfig",
    "ChaosConfig",
    "ControlConfig",
    "DirectConfig",
    "GenConfig",
    "GridFtpConfig",
    "OverloadConfig",
    "ParallelStaticConfig",
    "RecordPlaneConfig",
    "SOAK_PROFILES",
    "SageSession",
    "ScenarioReport",
    "ServeConfig",
    "ShortestPathConfig",
    "SoakConfig",
    "StreamReport",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "TransferResult",
    "default_record_plane",
    "default_suite",
    "derive_seed",
    "set_default_record_plane",
    "execute_task",
    "register_scenario",
    "registered_scenarios",
    "run_experiment",
    "run_serve",
    "run_soak",
    "run_sweep",
]
