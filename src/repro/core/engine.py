"""Wiring of the three agents over a simulated cloud.

:class:`SageEngine` is the composition root: it provisions the deployment,
starts the Monitoring Agent on every inter-site link the deployment spans,
builds the Transfer Service and the Decision Manager, and optionally runs a
short learning phase so the link map is warm before the first application
transfer — mirroring the deployment-startup learning phase of the real
system.

It also owns the *failure plumbing*: a heartbeat failure detector feeds
suspected-dead VMs into the Decision Manager, stalled flows teach the
link map that a link is delivering nothing, and a fault-event bus lets
components (e.g. the streaming shipping layer) invalidate cached plans
the moment the environment hard-fails.
"""

from __future__ import annotations

from typing import Callable

from repro.cloud.deployment import CloudEnvironment
from repro.core.decision import DecisionConfig, DecisionManager
from repro.monitor.agent import MonitorConfig, MonitoringAgent
from repro.monitor.failure import FailureDetector, FailureDetectorConfig
from repro.obs import NULL_OBSERVER
from repro.obs.ledger import CostLedger
from repro.simulation.units import MINUTE
from repro.transfer.service import TransferService

FaultListener = Callable[[str, str], None]


class SageEngine:
    """Monitoring + Transfer + Decision over one cloud environment."""

    def __init__(
        self,
        env: CloudEnvironment,
        deployment_spec: dict[str, int] | None = None,
        vm_size: str = "Small",
        monitor_config: MonitorConfig | None = None,
        decision_config: DecisionConfig | None = None,
        observer=None,
    ) -> None:
        self.env = env
        #: Observability handle shared by every layer of this engine.
        #: Defaults to the no-op observer; pass :class:`repro.obs.Observer`
        #: to record metrics and virtual-time spans.
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.observer.bind_clock(lambda: env.sim.now)
        env.sim.attach_observer(self.observer)
        #: Cost attribution: every meter charge from here on is folded
        #: into per-link / per-region buckets (reconciles with the meter
        #: by construction — the listener sees the exact USD charged).
        self.ledger = CostLedger(env.meter, observer=self.observer)
        if deployment_spec:
            for region, count in sorted(deployment_spec.items()):
                env.provision(region, vm_size, count)
        self.monitor = MonitoringAgent(
            env.network, env.deployment, monitor_config,
            observer=self.observer,
        )
        if env.deployment.size() >= 2 and len(env.deployment.regions()) >= 2:
            self.monitor.watch_all_links()
        self.transfers = TransferService(env, monitor=self.monitor)
        self.decisions = DecisionManager(
            env, self.monitor, self.transfers, decision_config,
            observer=self.observer,
        )
        #: Fault-event listeners: ``cb(kind, target)`` — fed by the fault
        #: injector, the failure detector, and the flow-stall detector.
        self._fault_listeners: list[FaultListener] = []
        #: Flight recorder (``None`` while disabled): every fault-bus
        #: message lands in the ring so a post-mortem dump shows what
        #: broke right before the run went wrong.
        self._flight = self.observer.recorder if self.observer.enabled else None
        #: The active fault injector, if a chaos scenario is armed.
        self.faults = None
        mcfg = self.monitor.config
        self.detector: FailureDetector | None = None
        if mcfg.failure_detection and env.deployment.size() >= 1:
            self.detector = FailureDetector(
                env.sim,
                env.deployment,
                FailureDetectorConfig(
                    heartbeat_interval=mcfg.heartbeat_interval,
                    timeout=mcfg.failure_timeout,
                ),
                observer=self.observer,
            )
            self.decisions.attach_detector(self.detector)
            self.detector.on_suspect(
                lambda vm: self.emit_fault("vm.suspected", vm.vm_id)
            )
            self.detector.on_recover(
                lambda vm: self.emit_fault("vm.recovered", vm.vm_id)
            )
        # Stalled flows are the observable signature of a dead link or
        # VM: teach the link map a zero sample so planners route around
        # it, and broadcast so cached plans are invalidated.
        env.network.on_stall = self._on_flow_stall

    # ------------------------------------------------------------------
    # Fault plumbing
    # ------------------------------------------------------------------
    def on_fault(self, listener: FaultListener) -> None:
        """Subscribe to fault events (``listener(kind, target)``)."""
        self._fault_listeners.append(listener)

    def emit_fault(self, kind: str, target: str) -> None:
        """Broadcast a fault event to every subscribed listener."""
        if self._flight is not None:
            self._flight.record("fault", fault=kind, target=target)
        for listener in self._fault_listeners:
            listener(kind, target)

    def attach_faults(self, injector) -> None:
        """Register the armed fault injector (called by ``injector.arm``)."""
        self.faults = injector

    def _on_flow_stall(self, flow) -> None:
        now = self.env.sim.now
        for src, dst in flow.wan_hops():
            link = self.env.topology.link(src, dst)
            if link.capacity(now) <= 0.0:
                # The link is delivering nothing: record it so the next
                # plan avoids the hop instead of trusting a stale mean.
                self.monitor.ingest(src, dst, now, 0.0)
        if self.observer.enabled:
            self.observer.counter("network_flow_stalls_total").inc()
        self.emit_fault("flow.stall", flow.label or f"flow#{flow.flow_id}")

    # ------------------------------------------------------------------
    def start(self, learning_phase: float = 5 * MINUTE) -> None:
        """Begin monitoring; run the initial learning phase synchronously.

        After this returns, the link performance map has at least
        ``learning_phase / interval`` samples per monitored link.
        """
        self.monitor.start(initial_round=True)
        if self.detector is not None:
            self.detector.start()
        if learning_phase > 0:
            self.env.run_until(self.env.now + learning_phase)

    def stop(self) -> None:
        self.monitor.stop()
        if self.detector is not None:
            self.detector.stop()

    # Shortcuts used throughout examples and benchmarks --------------------
    @property
    def sim(self):
        return self.env.sim

    @property
    def deployment(self):
        return self.env.deployment

    def run_until(self, horizon: float) -> None:
        self.env.run_until(horizon)
