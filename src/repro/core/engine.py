"""Wiring of the three agents over a simulated cloud.

:class:`SageEngine` is the composition root: it provisions the deployment,
starts the Monitoring Agent on every inter-site link the deployment spans,
builds the Transfer Service and the Decision Manager, and optionally runs a
short learning phase so the link map is warm before the first application
transfer — mirroring the deployment-startup learning phase of the real
system.
"""

from __future__ import annotations

from repro.cloud.deployment import CloudEnvironment
from repro.core.decision import DecisionConfig, DecisionManager
from repro.monitor.agent import MonitorConfig, MonitoringAgent
from repro.obs import NULL_OBSERVER
from repro.transfer.service import TransferService
from repro.simulation.units import MINUTE


class SageEngine:
    """Monitoring + Transfer + Decision over one cloud environment."""

    def __init__(
        self,
        env: CloudEnvironment,
        deployment_spec: dict[str, int] | None = None,
        vm_size: str = "Small",
        monitor_config: MonitorConfig | None = None,
        decision_config: DecisionConfig | None = None,
        observer=None,
    ) -> None:
        self.env = env
        #: Observability handle shared by every layer of this engine.
        #: Defaults to the no-op observer; pass :class:`repro.obs.Observer`
        #: to record metrics and virtual-time spans.
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.observer.bind_clock(lambda: env.sim.now)
        env.sim.attach_observer(self.observer)
        if deployment_spec:
            for region, count in sorted(deployment_spec.items()):
                env.provision(region, vm_size, count)
        self.monitor = MonitoringAgent(
            env.network, env.deployment, monitor_config,
            observer=self.observer,
        )
        if env.deployment.size() >= 2 and len(env.deployment.regions()) >= 2:
            self.monitor.watch_all_links()
        self.transfers = TransferService(env, monitor=self.monitor)
        self.decisions = DecisionManager(
            env, self.monitor, self.transfers, decision_config,
            observer=self.observer,
        )

    def start(self, learning_phase: float = 5 * MINUTE) -> None:
        """Begin monitoring; run the initial learning phase synchronously.

        After this returns, the link performance map has at least
        ``learning_phase / interval`` samples per monitored link.
        """
        self.monitor.start(initial_round=True)
        if learning_phase > 0:
            self.env.run_until(self.env.now + learning_phase)

    def stop(self) -> None:
        self.monitor.stop()

    # Shortcuts used throughout examples and benchmarks --------------------
    @property
    def sim(self):
        return self.env.sim

    @property
    def deployment(self):
        return self.env.deployment

    def run_until(self, horizon: float) -> None:
        self.env.run_until(horizon)
