"""Predicting the monetary cost of a transfer configuration.

The cost of moving ``size`` bytes with ``n`` nodes in predicted time ``T``
splits into three components:

* **VM compute** — each of the ``n`` participating VMs dedicates an
  ``intrusiveness`` fraction of itself for ``T`` seconds. Whether those
  VMs are leased on purpose or borrowed from the main computation, that
  fraction has the VM's hourly price.
* **VM bandwidth** — folded into the same VM-time term (a VM's NIC comes
  with the VM); kept as a separate reported component for visibility.
* **Egress** — the provider bills every byte leaving a datacenter, once
  per datacenter boundary crossed (relayed paths pay per WAN hop, which is
  why the path selector must weigh extra hops against their time gain).

Time and money pull in opposite directions through ``n``: more nodes cut
``T`` (sub-linearly, per the time model) while multiplying the VM-time
term — the trade-off experiments E4/E10 live exactly on this curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.pricing import PriceBook
from repro.cloud.vm import VM_SIZES, VMSize
from repro.simulation.units import GB, HOUR


@dataclass(frozen=True)
class CostBreakdown:
    """Predicted cost of one transfer configuration."""

    vm_cpu_usd: float
    vm_bandwidth_usd: float
    egress_usd: float
    n_nodes: int
    predicted_time: float

    @property
    def total_usd(self) -> float:
        return self.vm_cpu_usd + self.vm_bandwidth_usd + self.egress_usd

    def __str__(self) -> str:
        return (
            f"${self.total_usd:.4f} (cpu ${self.vm_cpu_usd:.4f} + "
            f"bw ${self.vm_bandwidth_usd:.4f} + egress ${self.egress_usd:.4f}, "
            f"n={self.n_nodes}, T={self.predicted_time:.1f}s)"
        )


@dataclass
class CostModel:
    """Money model over a :class:`~repro.cloud.pricing.PriceBook`."""

    prices: PriceBook
    vm_size: VMSize = VM_SIZES["Small"]
    #: Fraction of the VM-time price attributed to CPU vs NIC usage in the
    #: reported breakdown (total is what matters for decisions).
    cpu_share: float = 0.5

    def estimate(
        self,
        size: float,
        predicted_time: float,
        n_nodes: int,
        intrusiveness: float = 1.0,
        wan_hops: int = 1,
    ) -> CostBreakdown:
        """Predict the cost of one configuration."""
        if size <= 0:
            raise ValueError("size must be positive")
        if predicted_time <= 0:
            raise ValueError("predicted_time must be positive")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not 0 < intrusiveness <= 1:
            raise ValueError("intrusiveness must be in (0, 1]")
        if wan_hops < 1:
            raise ValueError("wan_hops must be >= 1")
        vm_time_usd = (
            n_nodes
            * predicted_time
            * intrusiveness
            * self.vm_size.usd_per_hour
            / HOUR
        )
        egress_usd = (
            wan_hops
            * (size / GB)
            * self.prices.marginal_egress_usd_per_gb()
        )
        return CostBreakdown(
            vm_cpu_usd=vm_time_usd * self.cpu_share,
            vm_bandwidth_usd=vm_time_usd * (1.0 - self.cpu_share),
            egress_usd=egress_usd,
            n_nodes=n_nodes,
            predicted_time=predicted_time,
        )

    def vm_usd_per_second(self, intrusiveness: float = 1.0) -> float:
        """Marginal price of keeping one participating VM busy."""
        return intrusiveness * self.vm_size.usd_per_hour / HOUR
