"""The Decision Manager: plan, execute, observe, re-plan.

One manager coordinates each transfer (the architecture replicates it on
every node for availability; a single instance handles a given transfer).
Its control loop:

1. **Plan** — read the link performance map, pick the node count through
   the trade-off engine (budget / deadline / knee), choose datacenter
   paths with the multi-path selector, and materialise healthy VMs from
   the deployment into a weighted :class:`~repro.transfer.plan.TransferPlan`.
2. **Execute** — hand the plan to the transfer service.
3. **Observe** — every ``replan_interval`` compare achieved aggregate
   throughput against the model's prediction and re-read node health.
4. **Re-plan** — when a participating node degrades or the plan
   underperforms persistently, cancel what remains and re-plan *only the
   remaining bytes* with fresh estimates, avoiding the degraded nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.config import ConfigBase
from typing import Callable

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.vm import VM
from repro.core.cost import CostModel
from repro.core.paths import MultiPathSelector, TransferSchema
from repro.core.time_model import TransferTimeModel
from repro.core.tradeoff import TradeoffAnalyzer, TransferOption
from repro.monitor.agent import MonitoringAgent
from repro.obs import NULL_OBSERVER
from repro.transfer.plan import RouteAssignment, TransferPlan
from repro.transfer.service import TransferService
from repro.transfer.session import TransferSession

#: Expected delivered fraction of a relay route's width per extra WAN hop
#: (store-and-forward overhead × the Jensen gap of min(two weathers)).
_RELAY_DELIVERY_DISCOUNT = 0.8


@dataclass
class DecisionConfig(ConfigBase):
    """Tunables of the decision loop."""

    #: Seconds between observe/re-plan checks of an active transfer.
    replan_interval: float = 30.0
    #: Initial parallel-node efficiency (recalibrated online).
    gain: float = 0.65
    #: Hard ceiling on nodes per transfer.
    max_nodes: int = 32
    #: Default VM resource share a transfer may consume.
    intrusiveness: float = 1.0
    #: Parallel TCP streams per route.
    streams: int = 4
    #: Use intermediate-datacenter paths when beneficial.
    allow_multi_dc: bool = True
    #: Longest datacenter chain considered (source→…→destination).
    max_hops: int = 3
    #: Re-plan when measured node health drops below this.
    health_threshold: float = 0.7
    #: Re-plan when achieved/predicted throughput stays below this. Kept
    #: comfortably below 1: the gain parameter starts optimistic and is
    #: only calibrated after a few transfers, and WAN saturation is not a
    #: plan failure — re-planning should fire on genuine degradation.
    performance_threshold: float = 0.45
    #: Ignore performance checks during the first seconds of a session.
    warmup: float = 10.0
    #: Cap on consecutive re-plans per transfer (stability guard).
    max_replans: int = 8


class ManagedTransfer:
    """Handle for a decision-managed wide-area transfer."""

    _ids = itertools.count(1)

    def __init__(
        self,
        src_region: str,
        dst_region: str,
        size: float,
        on_complete: Callable[["ManagedTransfer"], None] | None = None,
    ) -> None:
        self.transfer_id = next(self._ids)
        self.src_region = src_region
        self.dst_region = dst_region
        self.size = size
        self.on_complete = on_complete
        self.sessions: list[TransferSession] = []
        self.replans = 0
        #: Observability span covering plan → completion (set by the DM).
        self.span = None
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.bytes_confirmed = 0.0
        self.schema_history: list[str] = []
        #: Model-predicted completion time at launch (None if unmonitored).
        self.prediction: float | None = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def current_session(self) -> TransferSession | None:
        return self.sessions[-1] if self.sessions else None

    @property
    def elapsed(self) -> float | None:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def mean_throughput(self) -> float:
        el = self.elapsed
        return self.size / el if el else 0.0


@dataclass
class _ActiveRun:
    """One live (session, parameters) pair of a managed transfer —
    what a replan (periodic or detector-driven) needs to relaunch."""

    mt: ManagedTransfer
    session: TransferSession
    n_nodes: int
    intrusiveness: float | None
    adaptive: bool
    multi_dc: bool | None

    def finished(self) -> bool:
        return self.session.done or self.session.cancelled or self.mt.done


class DecisionManager:
    """The DM of the three-agent architecture."""

    def __init__(
        self,
        env: CloudEnvironment,
        monitor: MonitoringAgent,
        transfers: TransferService,
        config: DecisionConfig | None = None,
        observer=None,
    ) -> None:
        self.env = env
        self.monitor = monitor
        self.transfers = transfers
        self.config = config or DecisionConfig()
        self.observer = observer if observer is not None else NULL_OBSERVER
        obs = self.observer
        self._m_plans = obs.counter("decision_plans_total")
        self._m_replans = obs.counter("decision_replans_total")
        self._m_transfers = obs.counter("decision_transfers_total")
        #: Paired per-transfer samples: model prediction vs delivery.
        self._m_predicted = obs.histogram("decision_predicted_seconds")
        self._m_achieved = obs.histogram("decision_achieved_seconds")
        self._m_accuracy = obs.histogram("decision_achieved_over_predicted")
        self.time_model = TransferTimeModel(gain=self.config.gain)
        self.cost_model = CostModel(env.meter.prices)
        self.tradeoff = TradeoffAnalyzer(
            self.time_model, self.cost_model, max_nodes=self.config.max_nodes
        )
        self.selector = MultiPathSelector(
            gain=self.config.gain, max_hops=self.config.max_hops
        )
        self._busy_vms: set[str] = set()
        self._gain_observations: list[tuple[int, float]] = []
        #: Heartbeat failure detector (attached by the engine); suspected
        #: VMs are excluded from plans and trigger immediate re-planning.
        self.detector = None
        self._runs: list[_ActiveRun] = []

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def attach_detector(self, detector) -> None:
        """Wire a failure detector: suspected VMs force immediate replans."""
        self.detector = detector
        detector.on_suspect(self._on_vm_suspected)

    def _suspected_ids(self) -> set[str]:
        return set(self.detector.suspected) if self.detector is not None else set()

    def _on_vm_suspected(self, vm: VM) -> None:
        """A VM was declared dead: replan every transfer riding on it.

        Unlike the periodic health check, this fires the moment the
        detector's timeout expires, so in-flight sessions do not sit
        stalled until the next ``replan_interval`` boundary. Cancelling
        the session returns the unacknowledged bytes, which the relaunch
        re-sends over a plan that excludes every suspected VM.
        """
        for run in list(self._runs):
            if run.finished():
                continue
            on_plan = any(
                v.vm_id == vm.vm_id
                for route in run.session.plan.routes
                for v in route.path
            )
            if on_plan and run.mt.replans < self.config.max_replans:
                self._replan(run, self._suspected_ids(), reason="crash")

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def link_throughputs(self) -> dict[tuple[str, str], float]:
        """Current link estimates as a plain dict for the path solver."""
        out: dict[tuple[str, str], float] = {}
        for src, dst in self.monitor.link_map.pairs():
            est = self.monitor.link_map.estimate(src, dst)
            if est.known:
                out[(src, dst)] = est.mean
        return out

    def choose_option(
        self,
        size: float,
        throughput: float,
        budget_usd: float | None = None,
        deadline_s: float | None = None,
        intrusiveness: float | None = None,
        wan_hops: int = 1,
    ) -> TransferOption:
        """Pick the node count honouring the user's constraint.

        With both budget and deadline, the budget is the hard constraint
        and the deadline is best-effort within it. With neither, the knee
        of the trade-off curve is used.
        """
        intr = intrusiveness if intrusiveness is not None else self.config.intrusiveness
        if budget_usd is not None:
            opt = self.tradeoff.nodes_within_budget(
                size, throughput, budget_usd, intr, wan_hops
            )
            if opt is None:
                raise ValueError(
                    f"budget ${budget_usd:.4f} cannot cover this transfer "
                    f"(cheapest option costs "
                    f"${self.tradeoff.options(size, throughput, intr, wan_hops)[0].usd:.4f})"
                )
            return opt
        if deadline_s is not None:
            opt = self.tradeoff.cheapest_within_deadline(
                size, throughput, deadline_s, intr, wan_hops
            )
            if opt is not None:
                return opt
            # Unreachable deadline: do the best we can (max nodes).
            return self.tradeoff.options(size, throughput, intr, wan_hops)[-1]
        return self.tradeoff.knee(
            self.tradeoff.options(size, throughput, intr, wan_hops)
        )

    def _healthy_vms(self, region: str, exclude: set[str]) -> list[VM]:
        cfg = self.config
        suspected = self._suspected_ids()
        vms = [
            vm
            for vm in self.env.deployment.vms(region)
            if vm.vm_id not in exclude
            and vm.vm_id not in self._busy_vms
            and vm.vm_id not in suspected
            and self.monitor.node_health(vm) >= cfg.health_threshold
        ]
        return vms

    def build_plan(
        self,
        src_region: str,
        dst_region: str,
        n_nodes: int,
        intrusiveness: float | None = None,
        exclude_vms: set[str] | None = None,
        label: str = "sage",
        allow_multi_dc: bool | None = None,
    ) -> TransferPlan:
        """Materialise a schema into VM routes.

        Node budget semantics follow the path selector: one VM per region
        of each route instance. Healthy VMs are drawn round-robin from the
        deployment pools; the source region must have at least one VM.
        """
        self._m_plans.inc()
        cfg = self.config
        intr = intrusiveness if intrusiveness is not None else cfg.intrusiveness
        exclude = set(exclude_vms or ())
        multi_dc = cfg.allow_multi_dc if allow_multi_dc is None else allow_multi_dc
        thr_map = self.link_throughputs()
        if multi_dc and thr_map:
            schema = self.selector.select(
                thr_map,
                src_region,
                dst_region,
                node_budget=max(n_nodes, 1),
                capacities=self.monitor.capacity_estimates,
            )
        else:
            schema = TransferSchema([])
        routes: list[RouteAssignment] = []
        if schema.allocations:
            routes = self._materialise(schema, intr, exclude)
        if not routes:
            # Degenerate fallback: direct path, parallel over helpers.
            routes = self._direct_routes(
                src_region, dst_region, n_nodes, intr, exclude
            )
        if not routes:
            raise RuntimeError(
                f"no usable VMs to transfer {src_region}->{dst_region}"
            )
        return TransferPlan(routes, label=label)

    def _region_pool(self, region: str, exclude: set[str]) -> list[VM]:
        """Usable VMs of a region, degrading gracefully under pressure:
        healthy-and-free first, then any live non-excluded VM (degraded
        or reserved beats nothing), then — every VM of the region down —
        anything not excluded (the plan will stall until a restart; the
        stall detector and detector-driven replans recover it)."""
        pool = self._healthy_vms(region, exclude)
        if not pool:
            pool = [
                vm
                for vm in self.env.deployment.vms(region)
                if vm.vm_id not in exclude and vm.alive
            ]
        if not pool:
            pool = [
                vm
                for vm in self.env.deployment.vms(region)
                if vm.vm_id not in exclude
            ]
        return pool

    def _pool_cycler(self, region: str, exclude: set[str]):
        pool = self._region_pool(region, exclude)
        return itertools.cycle(pool) if pool else None

    def _materialise(
        self,
        schema: TransferSchema,
        intrusiveness: float,
        exclude: set[str],
    ) -> list[RouteAssignment]:
        cfg = self.config
        cyclers: dict[str, object] = {}
        routes: list[RouteAssignment] = []
        for alloc in schema:
            for region in alloc.path:
                if region not in cyclers:
                    cyclers[region] = self._pool_cycler(region, exclude)
            if any(cyclers[r] is None for r in alloc.path):
                continue  # a region of this path has no usable VMs
            # Every instance of an allocation is one parallel route whose
            # achievable rate is roughly the path's bottleneck width, so
            # byte shares are weighted by width per *instance*. Relay
            # routes deliver below their width — per-hop forwarding
            # overhead plus the chance that *either* hop hits bad weather
            # — and overweighting them turns them into stragglers, so each
            # extra WAN hop discounts the weight.
            wan_hops = sum(
                1
                for a, b in zip(alloc.path[:-1], alloc.path[1:])
                if a != b
            )
            discount = _RELAY_DELIVERY_DISCOUNT ** max(0, wan_hops - 1)
            weight = max(alloc.base_throughput * discount, 1.0)
            for _ in range(alloc.instances):
                path_vms = [next(cyclers[r]) for r in alloc.path]
                routes.append(
                    RouteAssignment(
                        path_vms,
                        weight=weight,
                        streams=cfg.streams,
                        intrusiveness=intrusiveness,
                    )
                )
        return routes

    def _direct_routes(
        self,
        src_region: str,
        dst_region: str,
        n_nodes: int,
        intrusiveness: float,
        exclude: set[str],
    ) -> list[RouteAssignment]:
        cfg = self.config
        senders = self._region_pool(src_region, exclude)
        receivers = self._region_pool(dst_region, exclude)
        if not senders or not receivers:
            return []
        n = max(1, min(n_nodes, len(senders)))
        rcv = itertools.cycle(receivers)
        return [
            RouteAssignment(
                [sender, next(rcv)],
                weight=1.0,
                streams=cfg.streams,
                intrusiveness=intrusiveness,
            )
            for sender in senders[:n]
        ]

    # ------------------------------------------------------------------
    # Managed execution
    # ------------------------------------------------------------------
    def transfer(
        self,
        src_region: str,
        dst_region: str,
        size: float,
        budget_usd: float | None = None,
        deadline_s: float | None = None,
        n_nodes: int | None = None,
        intrusiveness: float | None = None,
        on_complete: Callable[[ManagedTransfer], None] | None = None,
        adaptive: bool = True,
    ) -> ManagedTransfer:
        """Start a managed wide-area transfer. Returns immediately; the
        handle completes in simulated time."""
        if size <= 0:
            raise ValueError("size must be positive")
        mt = ManagedTransfer(src_region, dst_region, size, on_complete)
        mt.started_at = self.env.sim.now
        obs = self.observer
        self._m_transfers.inc()
        if obs.enabled:
            strategy = (
                "fixed-nodes" if n_nodes is not None
                else "budget" if budget_usd is not None
                else "deadline" if deadline_s is not None
                else "knee"
            )
            obs.counter("decision_strategy_total", strategy=strategy).inc()
            mt.span = obs.start_span(
                "transfer.managed",
                transfer=mt.transfer_id,
                src=src_region,
                dst=dst_region,
                bytes=size,
                strategy=strategy,
            )
        thr = self.monitor.estimated_throughput(src_region, dst_region)
        if thr != thr or thr <= 0:
            # Unmonitored link: plan conservatively with one node.
            chosen_nodes = n_nodes or 1
            predicted = None
        else:
            if n_nodes is None:
                option = self.choose_option(
                    size, thr, budget_usd, deadline_s, intrusiveness
                )
                chosen_nodes = option.n_nodes
                predicted = option.predicted_time
                if budget_usd is not None:
                    chosen_nodes = self._fit_budget(
                        mt, size, thr, chosen_nodes, budget_usd, intrusiveness
                    )
                    predicted = self.time_model.estimate(size, thr, chosen_nodes)
            else:
                chosen_nodes = n_nodes
                predicted = self.time_model.estimate(size, thr, chosen_nodes)
        mt.prediction = predicted
        # Deadline guarantees are only offered on the direct schema: the
        # completion-time model predicts n parallel direct routes, so the
        # plan must match it. Budget and unconstrained transfers use the
        # full multi-datacenter schema.
        multi_dc = False if deadline_s is not None else None
        self._launch(
            mt, size, chosen_nodes, intrusiveness, set(), adaptive, multi_dc
        )
        return mt

    def _fit_budget(
        self,
        mt: ManagedTransfer,
        size: float,
        thr: float,
        n_nodes: int,
        budget_usd: float,
        intrusiveness: float | None,
    ) -> int:
        """Shrink the node count until the *materialised* plan fits.

        The option curve assumes a single datacenter boundary, but the
        multi-path selector may route part of the payload through relay
        datacenters, and every extra boundary bills egress again. The fix
        is a feasibility loop over real plans, not a fudge factor: build
        the plan, price its weighted hop count, and drop nodes until the
        budget holds.
        """
        intr = intrusiveness if intrusiveness is not None else self.config.intrusiveness
        best_n = 1
        best_throughput = -1.0
        for n in range(n_nodes, 0, -1):
            plan = self.build_plan(
                mt.src_region, mt.dst_region, n,
                intrusiveness=intrusiveness, label="budget-probe",
            )
            total_w = sum(r.weight for r in plan.routes)
            hops = (
                sum(r.weight * r.wan_hop_count() for r in plan.routes) / total_w
            )
            predicted = self.time_model.estimate(size, thr, n)
            cost = self.cost_model.estimate(
                size, predicted, n, intrusiveness=intr, wan_hops=max(1.0, hops)
            )
            if cost.total_usd > budget_usd:
                continue
            # Among affordable plans, prefer the highest *materialised*
            # throughput (sum of route widths), not the largest n — a
            # relay-heavy plan can be both costlier and slower than a
            # smaller all-direct one.
            if total_w > best_throughput:
                best_throughput = total_w
                best_n = n
        return best_n

    def _launch(
        self,
        mt: ManagedTransfer,
        remaining: float,
        n_nodes: int,
        intrusiveness: float | None,
        exclude: set[str],
        adaptive: bool,
        multi_dc: bool | None = None,
    ) -> None:
        plan = self.build_plan(
            mt.src_region,
            mt.dst_region,
            n_nodes,
            intrusiveness=intrusiveness,
            exclude_vms=exclude,
            label=f"managed:{mt.transfer_id}",
            allow_multi_dc=multi_dc,
        )
        mt.schema_history.append(plan.describe())
        self.reserve_plan(plan)

        def _done(session: TransferSession) -> None:
            self.release_plan(plan)
            mt.bytes_confirmed += session.size
            if mt.bytes_confirmed >= mt.size * 0.999:
                mt.completed_at = self.env.sim.now
                self._observe_gain(mt, n_nodes)
                self._observe_outcome(mt)
                if mt.on_complete is not None:
                    mt.on_complete(mt)

        session = self.transfers.execute(plan, remaining, on_complete=_done)
        mt.sessions.append(session)
        run = _ActiveRun(mt, session, n_nodes, intrusiveness, adaptive, multi_dc)
        self._runs.append(run)
        if adaptive:
            self.env.sim.schedule(
                self.config.replan_interval, self._check, run
            )

    # ------------------------------------------------------------------
    # Plan VM reservation (shared with the streaming shipping layer)
    # ------------------------------------------------------------------
    def reserve_plan(self, plan: TransferPlan) -> TransferPlan:
        """Mark a plan's VMs busy so concurrent plans route around them."""
        for route in plan.routes:
            for vm in route.path:
                self._busy_vms.add(vm.vm_id)
        return plan

    def release_plan(self, plan: TransferPlan | None) -> None:
        """Release a plan's VM reservations (safe on None / double call)."""
        if plan is None:
            return
        for route in plan.routes:
            for vm in route.path:
                self._busy_vms.discard(vm.vm_id)

    # Backwards-compatible internal aliases.
    _release_plan = release_plan

    def _prune_runs(self) -> None:
        self._runs = [r for r in self._runs if not r.finished()]

    def _replan(self, run: _ActiveRun, exclude: set[str], reason: str) -> None:
        """Cancel the run's session and relaunch the remaining bytes on a
        fresh plan that avoids ``exclude`` — the shared recovery step of
        the periodic check and the detector's crash notifications."""
        mt = run.mt
        remaining = run.session.cancel()
        self.release_plan(run.session.plan)
        self._prune_runs()
        mt.replans += 1
        self._m_replans.inc()
        if self.observer.enabled:
            now = self.env.sim.now
            self.observer.record_span(
                "recovery.replan" if reason == "crash" else "decision.replan",
                now,
                now,
                transfer=mt.transfer_id,
                reason=reason,
                remaining_bytes=remaining,
            )
        mt.bytes_confirmed += max(0.0, run.session.size - remaining)
        if remaining <= 0:
            return
        self._launch(
            mt, remaining, run.n_nodes, run.intrusiveness, set(exclude),
            run.adaptive, run.multi_dc,
        )

    def _check(self, run: _ActiveRun) -> None:
        """Periodic observe/re-plan step for one active session."""
        mt, session = run.mt, run.session
        if run.finished():
            self._prune_runs()
            return
        cfg = self.config
        if session.elapsed < cfg.warmup or mt.replans >= cfg.max_replans:
            self.env.sim.schedule(cfg.replan_interval, self._check, run)
            return
        # Health check over participating VMs.
        suspected = self._suspected_ids()
        unhealthy = {
            vm.vm_id
            for route in session.plan.routes
            for vm in route.path
            if vm.vm_id in suspected
            or self.monitor.node_health(vm) < cfg.health_threshold
        }
        # Performance check against the model.
        thr_est = self.monitor.estimated_throughput(mt.src_region, mt.dst_region)
        underperforming = False
        if thr_est == thr_est and thr_est > 0:
            predicted_rate = self.time_model.effective_throughput(
                thr_est, run.n_nodes
            )
            achieved = session.mean_throughput()
            underperforming = achieved < cfg.performance_threshold * predicted_rate
        if unhealthy or underperforming:
            self._replan(
                run,
                unhealthy | suspected,
                reason="health" if unhealthy else "performance",
            )
        else:
            self.env.sim.schedule(cfg.replan_interval, self._check, run)

    def _observe_outcome(self, mt: ManagedTransfer) -> None:
        """Record predicted-vs-achieved pairs and close the span."""
        elapsed = mt.elapsed
        if elapsed and mt.prediction is not None:
            self._m_predicted.observe(mt.prediction)
            self._m_achieved.observe(elapsed)
            if mt.prediction > 0:
                self._m_accuracy.observe(elapsed / mt.prediction)
        if mt.span is not None:
            mt.span.finish(
                replans=mt.replans,
                predicted_seconds=mt.prediction,
                achieved_seconds=elapsed,
            )

    # ------------------------------------------------------------------
    # Calibration feedback
    # ------------------------------------------------------------------
    def _observe_gain(self, mt: ManagedTransfer, n_nodes: int) -> None:
        if n_nodes < 2 or not mt.elapsed:
            return
        achieved = mt.size / mt.elapsed
        self._gain_observations.append((n_nodes, achieved))
        base = self.monitor.estimated_throughput(mt.src_region, mt.dst_region)
        if base == base and base > 0 and len(self._gain_observations) >= 3:
            self.time_model.calibrate(self._gain_observations[-50:], base)
            self.selector.gain = self.time_model.gain
