"""One-to-many data dissemination across datacenters.

Beyond point-to-point transfers, geo-replication and result broadcasting
need the same payload at *several* sites (replication for availability,
distributing a reference dataset to every compute site, publishing global
results back to the edges). Sending independent unicast copies from the
source pays the source's WAN links and egress once per destination;
a **dissemination tree** lets already-served sites forward to further
ones, spreading load over more links and often finishing sooner.

The planner builds the tree greedily on the monitored link map — a
Prim-style maximum-width spanning construction: at each step attach the
unserved destination with the *widest* available link from any served
site. This is the natural geo-distributed analogue of the "replicate
within the deployment to raise aggregate throughput" idea, lifted to the
datacenter level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.engine import SageEngine


@dataclass(frozen=True)
class TreeEdge:
    """One forwarding step of the dissemination tree."""

    src: str
    dst: str
    width: float


@dataclass
class DisseminationPlan:
    """A tree rooted at the source region covering all destinations."""

    root: str
    edges: list[TreeEdge]

    def children(self, region: str) -> list[TreeEdge]:
        return [e for e in self.edges if e.src == region]

    def depth(self) -> int:
        """Longest forwarding chain (edges) in the tree."""
        depths = {self.root: 0}
        remaining = list(self.edges)
        # Edges were appended in attach order, so parents precede children.
        for edge in remaining:
            depths[edge.dst] = depths[edge.src] + 1
        return max(depths.values()) if depths else 0

    def describe(self) -> str:
        return ", ".join(f"{e.src}->{e.dst}" for e in self.edges)


def plan_dissemination(
    throughputs: Mapping[tuple[str, str], float],
    source: str,
    destinations: list[str],
) -> DisseminationPlan:
    """Maximum-width greedy tree from ``source`` to every destination.

    Falls back to a direct edge from the source when a destination has no
    monitored link from any served site (width 0 marks the blind edge).
    """
    if source in destinations:
        raise ValueError("source cannot be its own destination")
    if len(set(destinations)) != len(destinations):
        raise ValueError("duplicate destinations")
    served = {source}
    unserved = list(destinations)
    edges: list[TreeEdge] = []
    while unserved:
        best: TreeEdge | None = None
        for dst in unserved:
            for src in served:
                width = throughputs.get((src, dst))
                if width is None or width != width or width <= 0:
                    continue
                if best is None or width > best.width:
                    best = TreeEdge(src, dst, width)
        if best is None:
            # Unmonitored destination: serve it straight from the source.
            best = TreeEdge(source, unserved[0], 0.0)
        edges.append(best)
        served.add(best.dst)
        unserved.remove(best.dst)
    return DisseminationPlan(source, edges)


@dataclass
class DisseminationReport:
    """Outcome of one dissemination run."""

    plan: DisseminationPlan
    completion_times: dict[str, float]
    started_at: float

    @property
    def makespan(self) -> float:
        return max(self.completion_times.values()) - self.started_at

    def arrival(self, region: str) -> float:
        return self.completion_times[region] - self.started_at


class Disseminator:
    """Executes dissemination plans over the managed transfer substrate.

    Each tree edge is a decision-managed transfer that starts as soon as
    its source site holds the full payload (store-and-forward at
    datacenter granularity; within a site the payload is immediately
    available to all VMs over the fast intra fabric).
    """

    def __init__(
        self,
        engine: SageEngine,
        n_nodes_per_edge: int = 3,
        pipeline_threshold: float = 0.15,
    ) -> None:
        """``pipeline_threshold``: fraction of the payload a site must hold
        before it starts forwarding to its children. Chunk-level pipelining
        is approximated by this delayed start — forwarding overlaps with
        the tail of the inbound transfer, as the chunked Transfer Agent
        does in practice. ``1.0`` degenerates to strict store-and-forward.
        """
        if n_nodes_per_edge < 1:
            raise ValueError("n_nodes_per_edge must be >= 1")
        if not 0.0 < pipeline_threshold <= 1.0:
            raise ValueError("pipeline_threshold must be in (0, 1]")
        self.engine = engine
        self.n_nodes_per_edge = n_nodes_per_edge
        self.pipeline_threshold = pipeline_threshold

    def plan(self, source: str, destinations: list[str]) -> DisseminationPlan:
        return plan_dissemination(
            self.engine.decisions.link_throughputs(), source, destinations
        )

    def unicast_plan(
        self, source: str, destinations: list[str]
    ) -> DisseminationPlan:
        """The baseline star: every destination served from the source."""
        thr = self.engine.decisions.link_throughputs()
        edges = [
            TreeEdge(source, dst, thr.get((source, dst), 0.0))
            for dst in destinations
        ]
        return DisseminationPlan(source, edges)

    def run(
        self,
        size: float,
        plan: DisseminationPlan,
        timeout: float = 24 * 3600.0,
        on_complete: Callable[[DisseminationReport], None] | None = None,
    ) -> DisseminationReport:
        """Execute ``plan`` for a payload of ``size`` bytes (blocking)."""
        if size <= 0:
            raise ValueError("size must be positive")
        engine = self.engine
        started = engine.sim.now
        completion: dict[str, float] = {}
        pending = {e.dst for e in plan.edges}
        forwarding_started: set[str] = set()

        def start_edges_from(region: str) -> None:
            if region in forwarding_started:
                return
            forwarding_started.add(region)
            for edge in plan.children(region):
                if edge.dst in completion:
                    continue
                mt = engine.decisions.transfer(
                    edge.src,
                    edge.dst,
                    size,
                    n_nodes=self.n_nodes_per_edge,
                    on_complete=lambda _mt, d=edge.dst: arrived(d),
                )
                _watch_progress(edge.dst, mt)

        def _watch_progress(region: str, mt) -> None:
            # Pipelined forwarding: once this site holds enough of the
            # payload, its own children may start pulling.
            def check() -> None:
                if region in completion:
                    return
                received = sum(s.transferred for s in mt.sessions)
                if received >= self.pipeline_threshold * size:
                    start_edges_from(region)
                else:
                    engine.sim.schedule(2.0, check)

            engine.sim.schedule(2.0, check)

        def arrived(region: str) -> None:
            completion[region] = engine.sim.now
            start_edges_from(region)

        start_edges_from(plan.root)
        deadline = started + timeout
        while pending - set(completion) and engine.sim.now < deadline:
            engine.run_until(min(engine.sim.now + 10.0, deadline))
        missing = pending - set(completion)
        if missing:
            raise TimeoutError(f"dissemination incomplete: {sorted(missing)}")
        report = DisseminationReport(plan, completion, started)
        if on_complete is not None:
            on_complete(report)
        return report
