"""The money ↔ time trade-off engine.

Given the current link estimate, enumerating candidate node counts yields a
(time, cost) curve. This module answers the three questions the
application-facing API exposes:

* *"I have B dollars"* → the largest node count whose predicted cost stays
  under B (fastest transfer within budget);
* *"I need it by T"* → the cheapest node count meeting the deadline;
* *"just be reasonable"* → the knee of the curve: the point with the best
  time reduction per extra dollar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import CostBreakdown, CostModel
from repro.core.time_model import TransferTimeModel


@dataclass(frozen=True)
class TransferOption:
    """One candidate configuration on the trade-off curve."""

    n_nodes: int
    predicted_time: float
    cost: CostBreakdown

    @property
    def usd(self) -> float:
        return self.cost.total_usd


class TradeoffAnalyzer:
    """Enumerates and searches the (time, cost) curve."""

    def __init__(
        self,
        time_model: TransferTimeModel,
        cost_model: CostModel,
        max_nodes: int = 32,
    ) -> None:
        if max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        self.time_model = time_model
        self.cost_model = cost_model
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    def options(
        self,
        size: float,
        throughput: float,
        intrusiveness: float = 1.0,
        wan_hops: int = 1,
        max_nodes: int | None = None,
    ) -> list[TransferOption]:
        """The full candidate list for n = 1 .. max_nodes."""
        limit = max_nodes or self.max_nodes
        out: list[TransferOption] = []
        for n in range(1, limit + 1):
            t = self.time_model.estimate(size, throughput, n)
            c = self.cost_model.estimate(
                size, t, n, intrusiveness=intrusiveness, wan_hops=wan_hops
            )
            out.append(TransferOption(n, t, c))
        return out

    # ------------------------------------------------------------------
    def nodes_within_budget(
        self,
        size: float,
        throughput: float,
        budget_usd: float,
        intrusiveness: float = 1.0,
        wan_hops: int = 1,
    ) -> TransferOption | None:
        """Fastest option whose predicted cost fits the budget.

        Returns None when even a single node exceeds the budget (the
        caller must surface this to the user rather than overspend).
        """
        feasible = [
            o
            for o in self.options(size, throughput, intrusiveness, wan_hops)
            if o.usd <= budget_usd
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda o: (o.predicted_time, o.usd))

    def cheapest_within_deadline(
        self,
        size: float,
        throughput: float,
        deadline_s: float,
        intrusiveness: float = 1.0,
        wan_hops: int = 1,
    ) -> TransferOption | None:
        """Cheapest option meeting the deadline, or None if unreachable."""
        feasible = [
            o
            for o in self.options(size, throughput, intrusiveness, wan_hops)
            if o.predicted_time <= deadline_s
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda o: (o.usd, o.predicted_time))

    # ------------------------------------------------------------------
    def pareto_front(self, options: list[TransferOption]) -> list[TransferOption]:
        """Options not dominated in both time and cost, sorted by time."""
        ordered = sorted(options, key=lambda o: (o.predicted_time, o.usd))
        front: list[TransferOption] = []
        best_cost = float("inf")
        for o in ordered:
            if o.usd < best_cost:
                front.append(o)
                best_cost = o.usd
        return front

    def knee(self, options: list[TransferOption]) -> TransferOption:
        """The sweet spot: maximum time reduction per extra dollar.

        Computed on the Pareto front as the point maximising the
        normalised distance to the (max time, max cost) anti-ideal —
        a standard knee heuristic that is robust to curve scale.
        """
        front = self.pareto_front(options)
        if len(front) == 1:
            return front[0]
        t_lo = min(o.predicted_time for o in front)
        t_hi = max(o.predicted_time for o in front)
        c_lo = min(o.usd for o in front)
        c_hi = max(o.usd for o in front)
        t_span = (t_hi - t_lo) or 1.0
        c_span = (c_hi - c_lo) or 1.0

        def badness(o: TransferOption) -> float:
            return (o.predicted_time - t_lo) / t_span + (o.usd - c_lo) / c_span

        return min(front, key=badness)
