"""SAGE wrapped in the common strategy contract.

Benchmarks compare strategies through one interface
(``run(engine, src, dst, size) -> BaselineResult``); this adapter exposes
the decision-managed transfer the same way so sweeps treat the system
under test and its comparators uniformly.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, run_transfer_to_completion
from repro.core.engine import SageEngine


class SageStrategy:
    """The environment-aware, decision-managed transfer (system under test)."""

    label = "GEO-SAGE"

    def __init__(
        self,
        n_nodes: int | None = None,
        budget_usd: float | None = None,
        deadline_s: float | None = None,
        intrusiveness: float | None = None,
        adaptive: bool = True,
    ) -> None:
        self.n_nodes = n_nodes
        self.budget_usd = budget_usd
        self.deadline_s = deadline_s
        self.intrusiveness = intrusiveness
        self.adaptive = adaptive

    def run(
        self,
        engine: SageEngine,
        src_region: str,
        dst_region: str,
        size: float,
    ) -> BaselineResult:
        before = engine.env.meter.snapshot()
        holder = {}

        def _start(done) -> None:
            holder["mt"] = engine.decisions.transfer(
                src_region,
                dst_region,
                size,
                budget_usd=self.budget_usd,
                deadline_s=self.deadline_s,
                n_nodes=self.n_nodes,
                intrusiveness=self.intrusiveness,
                adaptive=self.adaptive,
                on_complete=lambda _mt: done(),
            )

        seconds = run_transfer_to_completion(engine, _start)
        spent = engine.env.meter.snapshot() - before
        mt = holder["mt"]
        vm_seconds = sum(
            s.plan.vm_count() * s.elapsed for s in mt.sessions
        )
        return BaselineResult(
            label=self.label,
            seconds=seconds,
            egress_usd=spent.egress_usd,
            vm_seconds_busy=vm_seconds,
        )
