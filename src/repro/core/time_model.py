"""Predicting transfer completion time.

The model deliberately trades accuracy for generality: a single estimated
link throughput ``θ`` (from the monitoring model) plus one empirical
parameter ``gain ∈ (0, 1)`` describing how much each extra parallel node
contributes::

    T(size, n) = size / θ · 1 / (1 + (n - 1) · gain)

``gain < 1`` captures the three reasons n nodes never give n× speed-up:
the WAN capacity is bounded, fanning data out to helpers costs intra-site
bandwidth, and VM performance varies. The parameter is *calibrated online*
from (n, achieved-throughput) observations rather than set by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TransferTimeModel:
    """Parallel-transfer completion-time estimator."""

    #: Marginal efficiency of each additional node (empirical, < 1).
    gain: float = 0.65
    #: Bounds used when calibrating from observations.
    gain_bounds: tuple[float, float] = (0.05, 0.98)

    def __post_init__(self) -> None:
        lo, hi = self.gain_bounds
        if not (0 < lo <= hi < 1):
            raise ValueError("gain bounds must satisfy 0 < lo <= hi < 1")
        if not (0 < self.gain < 1):
            raise ValueError("gain must be in (0, 1)")

    # ------------------------------------------------------------------
    def speedup(self, n_nodes: int) -> float:
        """Effective throughput multiplier of ``n_nodes`` parallel senders."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return 1.0 + (n_nodes - 1) * self.gain

    def estimate(self, size: float, throughput: float, n_nodes: int = 1) -> float:
        """Predicted completion time in seconds."""
        if size <= 0:
            raise ValueError("size must be positive")
        if throughput <= 0:
            raise ValueError("throughput must be positive")
        return size / (throughput * self.speedup(n_nodes))

    def effective_throughput(self, throughput: float, n_nodes: int) -> float:
        return throughput * self.speedup(n_nodes)

    def nodes_for_deadline(
        self, size: float, throughput: float, deadline: float, max_nodes: int = 64
    ) -> int | None:
        """Fewest nodes meeting ``deadline``, or None if unreachable."""
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        for n in range(1, max_nodes + 1):
            if self.estimate(size, throughput, n) <= deadline:
                return n
        return None

    # ------------------------------------------------------------------
    # Online calibration
    # ------------------------------------------------------------------
    def calibrate(
        self, observations: list[tuple[int, float]], base_throughput: float
    ) -> float:
        """Refit ``gain`` from (n_nodes, achieved_throughput) pairs.

        Least-squares on ``achieved/base = 1 + (n-1)·gain`` restricted to
        n ≥ 2 (n = 1 carries no information about the slope). Returns the
        new gain; keeps the old one when observations are insufficient.
        """
        if base_throughput <= 0:
            raise ValueError("base_throughput must be positive")
        pts = [(n, thr) for n, thr in observations if n >= 2 and thr > 0]
        if not pts:
            return self.gain
        x = np.array([n - 1 for n, _ in pts], dtype=float)
        y = np.array([thr / base_throughput - 1.0 for _, thr in pts])
        # Slope through the origin: gain = Σxy / Σx².
        gain = float((x * y).sum() / (x * x).sum())
        lo, hi = self.gain_bounds
        self.gain = min(hi, max(lo, gain))
        return self.gain
