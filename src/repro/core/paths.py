"""Multi-datacenter path selection.

Public clouds hide their network topology, so flow-graph optimisation over
node-level links is not available — and continuously probing every VM pair
at every parallelism level would cost more than it saves. The selection
algorithm therefore works on the small datacenter-level graph the
monitoring agent *can* afford to keep fresh (fewer than ten sites):

1. take the **widest path** (maximum bottleneck throughput) from source to
   destination — cheap to compute on < 10 nodes;
2. **grow** that path by adding parallel route instances while each added
   instance still contributes more throughput per VM than the first
   instance of the **next-best path** would;
3. when growth stops paying, **open the next path** and repeat, until the
   node budget is exhausted.

The result is a :class:`TransferSchema`: a set of datacenter-level paths
with instance counts, which the decision manager materialises into VM
routes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

LinkThroughputs = Mapping[tuple[str, str], float]


def widest_path(
    throughputs: LinkThroughputs,
    src: str,
    dst: str,
    max_hops: int | None = None,
) -> list[str] | None:
    """Maximum-bottleneck path from ``src`` to ``dst``.

    Dijkstra variant: the width of a path is the minimum link throughput
    along it; we grow the settled set in decreasing width order.
    Deterministic tie-breaking on (hop count, path names). Returns the
    region sequence, or None when ``dst`` is unreachable.
    """
    if src == dst:
        raise ValueError("src and dst must differ")
    adj: dict[str, list[tuple[str, float]]] = {}
    for (a, b), thr in throughputs.items():
        if thr > 0 and thr == thr:  # skip NaN/zero links
            adj.setdefault(a, []).append((b, thr))
    # Max-heap on width; tie-break on fewer hops then lexicographic path.
    heap: list[tuple[float, int, tuple[str, ...]]] = [(-float("inf"), 0, (src,))]
    settled: set[str] = set()
    while heap:
        neg_width, hops, path = heapq.heappop(heap)
        width = -neg_width
        node = path[-1]
        if node in settled:
            continue
        settled.add(node)
        if node == dst:
            return list(path)
        if max_hops is not None and hops >= max_hops:
            continue
        for nxt, thr in sorted(adj.get(node, ())):
            if nxt in settled:
                continue
            heapq.heappush(
                heap, (-min(width, thr), hops + 1, path + (nxt,))
            )
    return None


def path_bottleneck(throughputs: LinkThroughputs, path: list[str]) -> float:
    """Width (minimum hop throughput) of a region path."""
    if len(path) < 2:
        raise ValueError("path needs at least two regions")
    width = float("inf")
    for a, b in zip(path[:-1], path[1:]):
        thr = throughputs.get((a, b), float("nan"))
        if thr != thr:
            return float("nan")
        width = min(width, thr)
    return width


@dataclass
class PathAllocation:
    """One datacenter-level path with its parallel instance count."""

    path: list[str]
    instances: int = 1
    #: Estimated single-instance throughput (the path's bottleneck width).
    base_throughput: float = 0.0

    def vm_cost_per_instance(self) -> int:
        """VMs one route instance consumes: the sender plus one relay per
        intermediate site. The destination receiver is not counted — it
        exists whether or not the transfer runs, matching the cost model
        where ``n`` is the number of nodes streaming data in parallel."""
        return max(1, len(self.path) - 1)

    def vms_used(self) -> int:
        return self.instances * self.vm_cost_per_instance()

    def estimated_throughput(self, gain: float) -> float:
        """Diminishing-returns aggregate of ``instances`` parallel routes."""
        return self.base_throughput * (1.0 + (self.instances - 1) * gain)

    def describe(self) -> str:
        return f"{'->'.join(self.path)}×{self.instances}"


@dataclass
class TransferSchema:
    """The multi-path transfer topology chosen for one transfer."""

    allocations: list[PathAllocation]

    def vms_used(self) -> int:
        return sum(a.vms_used() for a in self.allocations)

    def estimated_throughput(self, gain: float) -> float:
        return sum(a.estimated_throughput(gain) for a in self.allocations)

    def describe(self) -> str:
        return " + ".join(a.describe() for a in self.allocations)

    def __iter__(self):
        return iter(self.allocations)


class MultiPathSelector:
    """Budget-constrained multi-datacenter path selection (Algorithm 1).

    Growth is *capacity-aware*: a path keeps receiving parallel instances
    at full marginal value until its bottleneck link's learned aggregate
    capacity is saturated, after which the marginal collapses and the
    next-best path takes over. Before a link has ever been loaded, its
    capacity is assumed to be ``default_parallelism`` route-widths — an
    *optimistic* prior: staying on the direct path until a link is proven
    saturated is cheaper than speculatively paying relay VMs and double
    egress for capacity that may not be needed.
    """

    def __init__(
        self,
        gain: float = 0.65,
        max_hops: int = 3,
        default_parallelism: float = 6.0,
    ) -> None:
        if not 0 < gain < 1:
            raise ValueError("gain must be in (0, 1)")
        if default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        self.gain = gain
        self.max_hops = max_hops
        self.default_parallelism = default_parallelism

    def _marginal(
        self,
        alloc: PathAllocation,
        capacities: Mapping[tuple[str, str], float] | None,
    ) -> float:
        """Throughput the next instance of ``alloc`` would add."""
        width = alloc.base_throughput
        if width <= 0:
            return 0.0
        cap = width * self.default_parallelism
        if capacities:
            for hop in zip(alloc.path[:-1], alloc.path[1:]):
                known = capacities.get(hop)
                if known is not None:
                    cap = min(cap, known)
        remaining = cap - alloc.instances * width
        return min(width, max(0.0, remaining))

    def _best_path(
        self,
        graph: dict[tuple[str, str], float],
        src: str,
        dst: str,
    ) -> list[str] | None:
        """The most VM-efficient path still available in ``graph``.

        The raw widest path can be a relay chain whose extra hop doubles
        its VM cost (and its egress); a path is only "best" when its width
        *per VM consumed* beats the direct link's. Candidates: the widest
        path and the direct link.
        """
        widest = widest_path(graph, src, dst, max_hops=self.max_hops)
        direct = [src, dst] if (src, dst) in graph else None
        candidates = [p for p in (widest, direct) if p is not None]
        if not candidates:
            return None

        def per_vm(path: list[str]) -> float:
            width = path_bottleneck(graph, path)
            return width / max(1, len(path) - 1)

        return max(candidates, key=per_vm)

    def select(
        self,
        throughputs: LinkThroughputs,
        src: str,
        dst: str,
        node_budget: int,
        capacities: Mapping[tuple[str, str], float] | None = None,
    ) -> TransferSchema:
        """Choose paths and instance counts within ``node_budget`` VMs.

        Always returns at least one direct instance even when the budget
        is smaller than the cheapest path cost — a transfer must happen.
        """
        if node_budget < 1:
            raise ValueError("node_budget must be >= 1")
        graph = dict(throughputs)
        allocations: list[PathAllocation] = []
        nodes_used = 0

        path = self._best_path(graph, src, dst)
        if path is None:
            # Nothing monitored yet: fall back to the direct link.
            path = [src, dst]
        if len(path) - 1 > node_budget:
            # The budget cannot man a relay chain; a single node can
            # always drive the direct link.
            path = [src, dst]
        while path is not None:
            width = path_bottleneck(throughputs, path)
            if width != width:  # unmonitored fallback link
                width = 0.0
            alloc = PathAllocation(list(path), instances=1, base_throughput=width)
            cost = alloc.vm_cost_per_instance()
            if allocations and nodes_used + cost > node_budget:
                break  # cannot afford to open this path
            allocations.append(alloc)
            nodes_used += cost

            # Next-best alternative: remove this path's links and re-solve.
            for hop in zip(path[:-1], path[1:]):
                graph.pop(hop, None)
            next_path = self._best_path(graph, src, dst)
            next_width = (
                path_bottleneck(throughputs, next_path)
                if next_path is not None
                else 0.0
            )
            next_cost = len(next_path) if next_path is not None else 1

            # Grow the current path while an extra instance beats opening
            # the alternative, normalised per VM consumed. The marginal
            # stays at the full route width until the path's bottleneck
            # capacity saturates, then collapses — the empirical
            # observation that motivates opening additional paths at all.
            while nodes_used + cost <= node_budget:
                marginal_per_vm = self._marginal(alloc, capacities) / cost
                alternative_per_vm = (
                    next_width / next_cost if next_path is not None else 0.0
                )
                if next_path is not None and marginal_per_vm < alternative_per_vm:
                    break
                alloc.instances += 1
                nodes_used += cost

            if nodes_used >= node_budget:
                break
            path = next_path
        return TransferSchema(allocations)
