"""The public, application-facing API (the SaaS surface).

Applications interact with SAGE through a :class:`SageSession`: provision a
multi-site deployment in one line, then move data with cost/time
constraints or attach geo-distributed stream analyses. Everything returned
is plain data (dataclasses, floats) so downstream tooling does not need to
know about simulator internals.

>>> from repro import SageSession
>>> from repro.simulation.units import GB
>>> session = SageSession(deployment={"NEU": 5, "NUS": 5}, seed=7)
>>> result = session.transfer("NEU", "NUS", 2 * GB, budget_usd=0.40)
>>> result.seconds > 0 and result.usd <= 0.40 * 1.05
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.deployment import CloudEnvironment
from repro.config import RecordPlaneConfig
from repro.core.decision import DecisionConfig, ManagedTransfer
from repro.core.engine import SageEngine
from repro.monitor.agent import MonitorConfig
from repro.simulation.units import DAY, MINUTE


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one managed transfer."""

    src_region: str
    dst_region: str
    size: float
    seconds: float
    usd: float
    nodes_used: int
    replans: int
    predicted_seconds: float | None
    schema: str

    @property
    def throughput(self) -> float:
        return self.size / self.seconds if self.seconds > 0 else 0.0


class SageSession:
    """One application's connection to the geo-data-management service."""

    def __init__(
        self,
        deployment: dict[str, int],
        vm_size: str = "Small",
        seed: int = 0,
        learning_phase: float = 5 * MINUTE,
        monitor_config: MonitorConfig | None = None,
        decision_config: DecisionConfig | None = None,
        variability_sigma: float = 0.20,
        glitches: bool = True,
        record_plane: RecordPlaneConfig | None = None,
    ) -> None:
        if record_plane is not None and not isinstance(
            record_plane, RecordPlaneConfig
        ):
            raise TypeError(
                "record_plane must be a RecordPlaneConfig or None, "
                f"got {type(record_plane).__name__}"
            )
        #: Record-plane default for streams attached through this session
        #: (``None`` = the process default — columnar batches).
        self.record_plane = record_plane
        self.env = CloudEnvironment(
            seed=seed,
            variability_sigma=variability_sigma,
            glitches=glitches,
        )
        self.engine = SageEngine(
            self.env,
            deployment_spec=deployment,
            vm_size=vm_size,
            monitor_config=monitor_config,
            decision_config=decision_config,
        )
        self.engine.start(learning_phase=learning_phase)

    # ------------------------------------------------------------------
    def transfer(
        self,
        src_region: str,
        dst_region: str,
        size: float,
        budget_usd: float | None = None,
        deadline_s: float | None = None,
        n_nodes: int | None = None,
        intrusiveness: float | None = None,
        timeout: float = DAY,
    ) -> TransferResult:
        """Move ``size`` bytes and block (in simulated time) until done."""
        meter_before = self.env.meter.snapshot()
        mt = self.engine.decisions.transfer(
            src_region,
            dst_region,
            size,
            budget_usd=budget_usd,
            deadline_s=deadline_s,
            n_nodes=n_nodes,
            intrusiveness=intrusiveness,
        )
        deadline = self.env.now + timeout
        while not mt.done and self.env.now < deadline:
            # Advance in coarse steps; completion fires via callbacks.
            self.env.run_until(min(self.env.now + MINUTE, deadline))
        if not mt.done:
            raise TimeoutError(
                f"transfer {src_region}->{dst_region} incomplete after "
                f"{timeout:.0f}s simulated"
            )
        spent = self.env.meter.snapshot() - meter_before
        nodes = max(
            (s.plan.vm_count() for s in mt.sessions),
            default=0,
        )
        return TransferResult(
            src_region=src_region,
            dst_region=dst_region,
            size=size,
            seconds=mt.elapsed or 0.0,
            usd=spent.egress_usd
            + self._session_vm_cost(mt),
            nodes_used=nodes,
            replans=mt.replans,
            predicted_seconds=mt.prediction,
            schema=" | ".join(mt.schema_history),
        )

    def _session_vm_cost(self, mt: ManagedTransfer) -> float:
        """VM-time cost attributable to this transfer (linear pricing)."""
        cost = 0.0
        for session in mt.sessions:
            vms = {vm.vm_id: vm for r in session.plan.routes for vm in r.path}
            intr = max(r.intrusiveness for r in session.plan.routes)
            for vm in vms.values():
                cost += vm.size.usd_per_hour / 3600.0 * session.elapsed * intr
        return cost

    # ------------------------------------------------------------------
    def attach_stream(
        self,
        job,
        shipping_factory=None,
        *,
        record_plane: RecordPlaneConfig | None = None,
        per_vm_records_per_s: float = 5000.0,
    ):
        """Attach a :class:`~repro.streaming.dataflow.StreamJob`.

        Returns a :class:`~repro.streaming.runtime.GeoStreamRuntime`;
        drive it with ``runtime.run_for(seconds)`` (which starts it,
        advances simulated time, and lets in-flight batches land).
        The record plane resolves
        most-specific-first: the ``record_plane`` argument, then the
        job's ``record_plane`` field, then the session default, then
        the process default (columnar).

        ``shipping_factory`` defaults to the paper's managed overlay
        transfers (:class:`~repro.streaming.shipping.SageShipping` with
        two relay nodes).
        """
        from repro.streaming.runtime import GeoStreamRuntime
        from repro.streaming.shipping import SageShipping

        if shipping_factory is None:
            shipping_factory = SageShipping.factory(n_nodes=2)
        if record_plane is None and job.record_plane is None:
            record_plane = self.record_plane
        return GeoStreamRuntime(
            self.engine,
            job,
            shipping_factory,
            per_vm_records_per_s=per_vm_records_per_s,
            record_plane=record_plane,
        )

    # ------------------------------------------------------------------
    def link_map_rows(self) -> list[list[str]]:
        """The live inter-datacenter throughput matrix (E1a figure)."""
        return self.engine.monitor.link_map.matrix_rows()

    def estimated_throughput(self, src_region: str, dst_region: str) -> float:
        return self.engine.monitor.estimated_throughput(src_region, dst_region)

    def costs(self):
        """Accumulated charges so far."""
        return self.env.meter.snapshot()

    @property
    def now(self) -> float:
        return self.env.now

    def close(self) -> None:
        self.engine.stop()
        self.env.finalize()
