"""SAGE core: the cost/time-aware decision layer.

Everything in this package is *model-driven control*: it consumes the
monitoring agent's link estimates, predicts transfer time and monetary cost
for candidate configurations, picks the configuration that honours the
user's budget/deadline trade-off, and keeps re-planning while a transfer is
in flight. The surrounding packages (cloud, monitor, transfer, streaming)
are substrates; this one is the contribution.
"""

from repro.core.cost import CostBreakdown, CostModel
from repro.core.decision import DecisionConfig, DecisionManager, ManagedTransfer
from repro.core.dissemination import (
    DisseminationPlan,
    DisseminationReport,
    Disseminator,
    plan_dissemination,
)
from repro.core.engine import SageEngine
from repro.core.api import SageSession
from repro.core.paths import (
    MultiPathSelector,
    PathAllocation,
    TransferSchema,
    widest_path,
)
from repro.core.time_model import TransferTimeModel
from repro.core.tradeoff import TradeoffAnalyzer, TransferOption

__all__ = [
    "CostModel",
    "CostBreakdown",
    "Disseminator",
    "DisseminationPlan",
    "DisseminationReport",
    "plan_dissemination",
    "DecisionManager",
    "DecisionConfig",
    "ManagedTransfer",
    "SageEngine",
    "SageSession",
    "TransferTimeModel",
    "TradeoffAnalyzer",
    "TransferOption",
    "MultiPathSelector",
    "PathAllocation",
    "TransferSchema",
    "widest_path",
]
