"""The Transfer Agent's service facade.

``TransferService`` executes :class:`~repro.transfer.plan.TransferPlan`
objects on a cloud environment, wiring each session to the cost meter and
— when a monitoring agent is attached — feeding achieved route throughputs
back into the link performance model, so application transfers double as
free measurements (the agent suspends its own probes meanwhile).
"""

from __future__ import annotations

from typing import Callable

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.monitor.agent import MonitoringAgent
from repro.transfer.plan import RouteAssignment, TransferPlan
from repro.transfer.session import TransferSession
from repro.simulation.units import MB


class TransferService:
    """Executes transfer plans; the TA of the three-agent architecture."""

    def __init__(
        self,
        env: CloudEnvironment,
        monitor: MonitoringAgent | None = None,
        chunk_size: float = 8 * MB,
        ack_overhead: bool = True,
    ) -> None:
        self.env = env
        self.monitor = monitor
        self.chunk_size = chunk_size
        self.ack_overhead = ack_overhead
        self.sessions: list[TransferSession] = []

    def execute(
        self,
        plan: TransferPlan,
        size: float,
        on_complete: Callable[[TransferSession], None] | None = None,
        charge: bool = True,
    ) -> TransferSession:
        """Start a transfer of ``size`` bytes along ``plan``."""
        session = TransferSession(
            self.env.network,
            plan,
            size,
            chunk_size=self.chunk_size,
            meter=self.env.meter if charge else None,
            on_complete=on_complete,
            on_flow_complete=self._feed_monitor,
            ack_overhead=self.ack_overhead,
        )
        self.sessions.append(session)
        return session.start()

    def direct(
        self,
        src,
        dst,
        size: float,
        streams: int = 1,
        intrusiveness: float = 1.0,
        on_complete: Callable[[TransferSession], None] | None = None,
    ) -> TransferSession:
        """Convenience: single-route source→destination transfer."""
        return self.execute(
            TransferPlan.direct(src, dst, streams, intrusiveness),
            size,
            on_complete=on_complete,
        )

    # ------------------------------------------------------------------
    def _feed_monitor(
        self,
        session: TransferSession,
        flow: Flow,
        route: RouteAssignment,
    ) -> None:
        if self.monitor is None:
            return
        elapsed = flow.elapsed(self.env.sim.now)
        if elapsed <= 0:
            return
        achieved = flow.size / elapsed
        # Attribute the achieved rate to the route's *WAN bottleneck* —
        # for a helper route NEU->NEU->NUS that is the NEU->NUS hop.
        # Capacity is taught only when the flow ran visibly below its own
        # protocol ceiling: that is the signature of link saturation, as
        # opposed to an underloaded link whose utilisation says nothing
        # about its capacity.
        ceiling = self.env.network.flow_cap(flow)
        saturated = achieved < 0.7 * ceiling
        now = self.env.sim.now
        for hop in flow.wan_hops():
            src_code, dst_code = hop
            self.monitor.ingest(src_code, dst_code, now, achieved)
            # Aggregate on the link: this session's sibling flows count by
            # achieved rate when already done (equal-share siblings finish
            # in the same event, so their live rate reads zero), plus any
            # other traffic still active on the link.
            agg = self.env.network.link_utilization(src_code, dst_code)
            for sibling in session.flows:
                if hop not in sibling.wan_hops():
                    continue
                if sibling.done:
                    el = sibling.elapsed(now)
                    if el > 0:
                        agg += sibling.size / el
            self.monitor.note_utilization(
                src_code, dst_code, agg, saturated=saturated
            )

    # ------------------------------------------------------------------
    def completed_sessions(self) -> list[TransferSession]:
        return [s for s in self.sessions if s.done]

    def active_sessions(self) -> list[TransferSession]:
        return [s for s in self.sessions if not s.done and not s.cancelled]
