"""Transfer plans: the contract between decision engine and transfer agent.

A plan is a weighted set of routes. Each route is a VM chain from the
source datacenter to the destination datacenter (possibly through helper
VMs of the source site and relay VMs of intermediate sites) plus the
transport parameters to use on it. The decision engine owns *choosing*
routes and weights; the transfer service owns *executing* them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.vm import VM


@dataclass
class RouteAssignment:
    """One route and its share of the payload."""

    #: VM chain: source, optional helpers/relays, destination.
    path: list[VM]
    #: Relative share of the payload carried by this route.
    weight: float = 1.0
    #: Parallel TCP streams on each hop of this route.
    streams: int = 1
    #: Fraction of each VM's resources the transfer may use.
    intrusiveness: float = 1.0

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("route needs at least source and destination")
        if self.weight <= 0:
            raise ValueError("route weight must be positive")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if not 0 < self.intrusiveness <= 1:
            raise ValueError("intrusiveness must be in (0, 1]")

    @property
    def src(self) -> VM:
        return self.path[0]

    @property
    def dst(self) -> VM:
        return self.path[-1]

    def wan_hop_count(self) -> int:
        return sum(
            1
            for a, b in zip(self.path[:-1], self.path[1:])
            if a.region_code != b.region_code
        )

    def describe(self) -> str:
        return "->".join(vm.region_code for vm in self.path)


@dataclass
class TransferPlan:
    """A weighted multi-route schema for one logical transfer."""

    routes: list[RouteAssignment]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.routes:
            raise ValueError("plan needs at least one route")
        dst_regions = {r.dst.region_code for r in self.routes}
        if len(dst_regions) != 1:
            raise ValueError(
                f"all routes must end in the same region, got {dst_regions}"
            )
        src_regions = {r.src.region_code for r in self.routes}
        if len(src_regions) != 1:
            raise ValueError(
                f"all routes must start in the same region, got {src_regions}"
            )

    @property
    def total_weight(self) -> float:
        return sum(r.weight for r in self.routes)

    def shares(self, total_bytes: float) -> list[float]:
        """Byte share per route, proportional to weights."""
        w = self.total_weight
        return [total_bytes * r.weight / w for r in self.routes]

    def vm_count(self) -> int:
        """Distinct VMs participating in the plan."""
        return len({vm.vm_id for r in self.routes for vm in r.path})

    def describe(self) -> str:
        parts = ", ".join(
            f"{r.describe()}×{r.weight:.2f}" for r in self.routes
        )
        return f"TransferPlan[{self.label}]({parts})"

    @classmethod
    def direct(
        cls,
        src: VM,
        dst: VM,
        streams: int = 1,
        intrusiveness: float = 1.0,
        label: str = "direct",
    ) -> "TransferPlan":
        """The trivial single-route plan."""
        return cls(
            [RouteAssignment([src, dst], 1.0, streams, intrusiveness)],
            label=label,
        )

    @classmethod
    def parallel(
        cls,
        src: VM,
        helpers: list[VM],
        dst: VM,
        streams: int = 1,
        intrusiveness: float = 1.0,
        label: str = "parallel",
    ) -> "TransferPlan":
        """Source plus same-site helper VMs, all sending to ``dst``.

        Helpers must live in the source region: data fans out over the fast
        intra-site fabric and crosses the WAN from many NICs at once.
        """
        for h in helpers:
            if h.region_code != src.region_code:
                raise ValueError(
                    f"helper {h.vm_id} is in {h.region_code}, "
                    f"expected source region {src.region_code}"
                )
        routes = [RouteAssignment([src, dst], 1.0, streams, intrusiveness)]
        routes += [
            RouteAssignment([src, h, dst], 1.0, streams, intrusiveness)
            for h in helpers
        ]
        return cls(routes, label=label)
