"""Data fragmentation, hashing, deduplication and recomposition.

Transfers ship data as fixed-size chunks extended with metadata: sequence
number, byte range, and a content digest. The digest serves deduplication
(identical chunks sent once) and integrity; the sequence number lets the
destination recompose the payload although chunks may arrive in any order
along different routes.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Chunk:
    """Metadata of one transfer chunk."""

    seq: int
    offset: float
    size: float
    digest: str = ""

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("seq must be non-negative")
        if self.size <= 0:
            raise ValueError("chunk size must be positive")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")

    @property
    def end(self) -> float:
        return self.offset + self.size


def chunk_plan(total_size: float, chunk_size: float) -> list[Chunk]:
    """Split ``total_size`` bytes into sequenced chunks of ``chunk_size``.

    The final chunk carries the remainder. Chunk digests are left empty —
    they describe *planned* fragments, not yet materialised content.
    """
    if total_size <= 0:
        raise ValueError("total_size must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunks: list[Chunk] = []
    offset = 0.0
    seq = 0
    while offset < total_size:
        size = min(chunk_size, total_size - offset)
        chunks.append(Chunk(seq, offset, size))
        offset += size
        seq += 1
    return chunks


def chunk_count(total_size: float, chunk_size: float) -> int:
    """Number of chunks :func:`chunk_plan` would produce, in O(1)."""
    if total_size <= 0:
        raise ValueError("total_size must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return int(math.ceil(total_size / chunk_size))


def content_digest(payload: bytes) -> str:
    """Stable content digest used for deduplication (sha1, hex)."""
    return hashlib.sha1(payload).hexdigest()


class ChunkRegistry:
    """Digest-indexed store supporting deduplication.

    ``offer`` returns True when the chunk content is new (must be sent) and
    False when an identical chunk was already registered (send only the
    reference). Duplicate statistics feed the transfer metadata the agent
    reports.
    """

    def __init__(self) -> None:
        self._digests: set[str] = set()
        self.offered = 0
        self.duplicates = 0

    def offer(self, digest: str) -> bool:
        if not digest:
            raise ValueError("cannot deduplicate an empty digest")
        self.offered += 1
        if digest in self._digests:
            self.duplicates += 1
            return False
        self._digests.add(digest)
        return True

    @property
    def unique(self) -> int:
        return len(self._digests)

    def dedup_ratio(self) -> float:
        """Fraction of offered chunks that were duplicates."""
        return self.duplicates / self.offered if self.offered else 0.0


class Reassembler:
    """Destination-side recomposition of out-of-order chunks.

    Tracks which sequence numbers have arrived, rejects inconsistent
    duplicates, and reports completion when every byte of the expected
    payload is covered. Acknowledgement bookkeeping mirrors the
    application-level ack design: one ack per chunk, so sender-side loss
    recovery can resend precisely.
    """

    def __init__(self, chunks: list[Chunk]) -> None:
        if not chunks:
            raise ValueError("cannot reassemble an empty chunk list")
        self.expected: dict[int, Chunk] = {c.seq: c for c in chunks}
        if len(self.expected) != len(chunks):
            raise ValueError("duplicate sequence numbers in chunk plan")
        self.total_size = sum(c.size for c in chunks)
        self.received: dict[int, Chunk] = {}
        self.duplicate_arrivals = 0
        self.acks_sent = 0

    def deliver(self, chunk: Chunk) -> bool:
        """Accept one arriving chunk; returns True if it was new."""
        planned = self.expected.get(chunk.seq)
        if planned is None:
            raise ValueError(f"unexpected chunk seq {chunk.seq}")
        if (chunk.offset, chunk.size) != (planned.offset, planned.size):
            raise ValueError(
                f"chunk {chunk.seq} does not match plan "
                f"(got {chunk.offset}+{chunk.size}, "
                f"want {planned.offset}+{planned.size})"
            )
        self.acks_sent += 1
        if chunk.seq in self.received:
            self.duplicate_arrivals += 1
            return False
        self.received[chunk.seq] = chunk
        return True

    @property
    def bytes_received(self) -> float:
        return sum(c.size for c in self.received.values())

    @property
    def complete(self) -> bool:
        return len(self.received) == len(self.expected)

    def missing(self) -> list[int]:
        """Sequence numbers not yet received (for selective resend)."""
        return sorted(set(self.expected) - set(self.received))

    def progress(self) -> float:
        return self.bytes_received / self.total_size
