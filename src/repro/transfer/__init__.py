"""Wide-area transfer primitives.

The Transfer Agent moves data as chunks with metadata (hashing,
deduplication, out-of-order reassembly, acknowledgements) over one or more
concurrent routes: direct source→destination, parallel through helper VMs
of the source datacenter, or relayed through intermediate datacenters.
Routes and their byte shares are described by a :class:`TransferPlan` —
produced either by hand or by the decision engine — and executed as a
:class:`TransferSession` with live progress and cost accounting.
"""

from repro.transfer.chunks import Chunk, ChunkRegistry, Reassembler, chunk_plan
from repro.transfer.plan import RouteAssignment, TransferPlan
from repro.transfer.service import TransferService
from repro.transfer.session import TransferSession

__all__ = [
    "Chunk",
    "ChunkRegistry",
    "Reassembler",
    "chunk_plan",
    "RouteAssignment",
    "TransferPlan",
    "TransferService",
    "TransferSession",
]
