"""A transfer session: one logical payload moving along a plan's routes.

The session owns the fluid flows executing a :class:`TransferPlan`,
accounts acknowledgements and per-chunk metadata overhead, bills egress for
every datacenter boundary crossed, and exposes live progress — achieved
throughput and completion estimate — which both the application API and the
decision engine's re-planning loop consume.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.cloud.network import FluidNetwork, Flow
from repro.cloud.pricing import CostMeter
from repro.transfer.chunks import chunk_count
from repro.transfer.plan import RouteAssignment, TransferPlan

#: Metadata bytes carried per chunk (sequence, digest, routing, ack).
CHUNK_METADATA_BYTES = 256.0


class TransferSession:
    """Execution state of one logical transfer."""

    _ids = itertools.count(1)

    def __init__(
        self,
        network: FluidNetwork,
        plan: TransferPlan,
        size: float,
        chunk_size: float,
        meter: CostMeter | None = None,
        on_complete: Callable[["TransferSession"], None] | None = None,
        on_flow_complete: Callable[["TransferSession", Flow, RouteAssignment], None]
        | None = None,
        ack_overhead: bool = True,
        transport: str = "tcp",
    ) -> None:
        if size <= 0:
            raise ValueError("transfer size must be positive")
        self.session_id = next(self._ids)
        self.network = network
        self.sim = network.sim
        self.plan = plan
        self.size = float(size)
        self.chunk_size = float(chunk_size)
        self.meter = meter
        self.on_complete = on_complete
        self.on_flow_complete = on_flow_complete
        self.ack_overhead = ack_overhead
        self.transport = transport
        self.flows: list[Flow] = []
        self._route_of: dict[int, RouteAssignment] = {}
        self._chunks_of: dict[int, int] = {}
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.chunks_total = chunk_count(size, chunk_size)
        self.acks_received = 0
        self.bytes_on_wire = 0.0
        self._flows_pending = 0
        self.cancelled = False

    # ------------------------------------------------------------------
    def start(self) -> "TransferSession":
        if self.started_at is not None:
            raise RuntimeError("session already started")
        self.started_at = self.sim.now
        shares = self.plan.shares(self.size)
        for route, share in zip(self.plan.routes, shares):
            if share <= 0:
                continue
            chunks = chunk_count(share, self.chunk_size)
            wire_bytes = share + chunks * CHUNK_METADATA_BYTES
            flow = Flow(
                route.path,
                wire_bytes,
                streams=route.streams,
                intrusiveness=route.intrusiveness,
                on_complete=self._flow_done,
                label=f"session:{self.session_id}:{self.plan.label}",
                transport=self.transport,
            )
            self._route_of[flow.flow_id] = route
            self._chunks_of[flow.flow_id] = chunks
            self.flows.append(flow)
            self._flows_pending += 1
            self.bytes_on_wire += wire_bytes
            self.network.start_flow(flow)
        if self._flows_pending == 0:  # pragma: no cover - defensive
            raise RuntimeError("plan produced no flows")
        return self

    def cancel(self) -> float:
        """Abort in-flight flows; returns bytes *not yet* delivered.

        Delivered bytes stay delivered (the receiver keeps complete chunks)
        — re-planning resumes from the remainder, it does not restart.
        """
        self.cancelled = True
        undelivered = 0.0
        for flow in self.flows:
            if not flow.done:
                undelivered += flow.remaining
                self.network.cancel_flow(flow)
                if self.meter is not None:
                    # Bytes already moved crossed real datacenter
                    # boundaries; the provider bills them regardless.
                    for src, dst in flow.wan_hops():
                        self.meter.charge_egress(
                            flow.transferred, context=f"{src}->{dst}"
                        )
        self._flows_pending = 0
        return undelivered

    # ------------------------------------------------------------------
    def _flow_done(self, flow: Flow) -> None:
        route = self._route_of[flow.flow_id]
        self.acks_received += self._chunks_of[flow.flow_id]
        if self.meter is not None:
            # Every datacenter boundary crossed bills the upstream side.
            for src, dst in flow.wan_hops():
                self.meter.charge_egress(flow.size, context=f"{src}->{dst}")
        if self.on_flow_complete is not None:
            self.on_flow_complete(self, flow, route)
        self._flows_pending -= 1
        if self._flows_pending == 0 and not self.cancelled:
            self._finish()

    def _finish(self) -> None:
        if not self.ack_overhead:
            self._complete()
            return
        # Final acknowledgement round-trip on the slowest route.
        rtt = max(
            (
                self.network.topology.rtt(a.region_code, b.region_code)
                for route in self.plan.routes
                for a, b in zip(route.path[:-1], route.path[1:])
            ),
            default=0.0,
        )
        self.sim.schedule(rtt, self._complete)

    def _complete(self) -> None:
        if self.completed_at is not None:  # pragma: no cover - defensive
            return
        self.completed_at = self.sim.now
        if self.on_complete is not None:
            self.on_complete(self)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def transferred(self) -> float:
        return sum(f.transferred for f in self.flows)

    @property
    def remaining(self) -> float:
        return max(0.0, self.bytes_on_wire - self.transferred)

    @property
    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.completed_at if self.completed_at is not None else self.sim.now
        return end - self.started_at

    def current_throughput(self) -> float:
        """Aggregate instantaneous rate over all live routes."""
        return sum(f.rate for f in self.flows if not f.done)

    def mean_throughput(self) -> float:
        el = self.elapsed
        return self.transferred / el if el > 0 else 0.0

    def eta(self) -> float:
        """Seconds to completion at current rates (inf when stalled)."""
        rate = self.current_throughput()
        return self.remaining / rate if rate > 0 else float("inf")

    def route_progress(self) -> list[tuple[str, float, float]]:
        """(route description, transferred, rate) per flow — live view."""
        return [
            (self._route_of[f.flow_id].describe(), f.transferred, f.rate)
            for f in self.flows
        ]
