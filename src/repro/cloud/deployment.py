"""Deployments and the top-level cloud environment facade.

A :class:`Deployment` is the set of VMs an application leases, grouped by
region — the paper's "global system" of up to 120 nodes over 6 sites. The
:class:`CloudEnvironment` bundles everything one simulation run needs:
simulator, topology, fluid network, blob stores and cost meter, plus
provisioning/releasing of VMs with lease billing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cloud.network import FluidNetwork, Topology
from repro.cloud.pricing import CostMeter, PriceBook
from repro.cloud.storage import BlobStore
from repro.cloud.vm import VM, VM_SIZES, VMSize
from repro.simulation.engine import Simulator
from repro.simulation.units import MINUTE


class Deployment:
    """The VMs an application holds, grouped by region."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.vms_by_region: dict[str, list[VM]] = {}

    def add(self, vm: VM) -> None:
        self.vms_by_region.setdefault(vm.region_code, []).append(vm)

    def remove(self, vm: VM) -> None:
        self.vms_by_region.get(vm.region_code, []).remove(vm)

    def vms(self, region_code: str | None = None) -> list[VM]:
        if region_code is not None:
            return list(self.vms_by_region.get(region_code, []))
        return [vm for vms in self.vms_by_region.values() for vm in vms]

    def regions(self) -> list[str]:
        return [r for r, vms in self.vms_by_region.items() if vms]

    def size(self) -> int:
        return sum(len(v) for v in self.vms_by_region.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{r}:{len(v)}" for r, v in sorted(self.vms_by_region.items())
        )
        return f"Deployment({self.name}: {parts})"


@dataclass
class _Lease:
    vm: VM
    started_at: float


class CloudEnvironment:
    """Everything a simulated multi-datacenter experiment needs.

    >>> env = CloudEnvironment(seed=7)
    >>> src = env.provision("NEU", "Small")[0]
    >>> dst = env.provision("NUS", "Small")[0]
    """

    def __init__(
        self,
        seed: int = 0,
        variability_sigma: float = 0.20,
        diurnal_amplitude: float = 0.12,
        glitches: bool = True,
        capacity_scale: float = 1.0,
        prices: PriceBook | None = None,
        billed_vm_time: bool = False,
        refresh_interval: float = 10.0,
        variability_epoch: float = MINUTE,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.topology = Topology.build(
            self.sim,
            variability_sigma=variability_sigma,
            diurnal_amplitude=diurnal_amplitude,
            glitches=glitches,
            capacity_scale=capacity_scale,
            epoch=variability_epoch,
        )
        self.network = FluidNetwork(
            self.sim, self.topology, refresh_interval=refresh_interval
        )
        self.meter = CostMeter(prices, billed=billed_vm_time)
        self.blobs: dict[str, BlobStore] = {
            code: BlobStore(self.sim, self.network, code, self.meter)
            for code in self.topology.region_codes()
        }
        self.deployment = Deployment("default")
        self._vm_ids = itertools.count(1)
        self._leases: dict[str, _Lease] = {}

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def provision(
        self,
        region_code: str,
        size: str | VMSize = "Small",
        count: int = 1,
        deployment: Deployment | None = None,
    ) -> list[VM]:
        """Lease ``count`` VMs of the given size in one region."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if region_code not in self.topology.catalog:
            raise KeyError(f"unknown region {region_code!r}")
        vmsize = VM_SIZES[size] if isinstance(size, str) else size
        target = deployment or self.deployment
        vms = []
        for _ in range(count):
            vm = VM(
                f"vm-{next(self._vm_ids):04d}-{region_code.lower()}",
                region_code,
                vmsize,
            )
            target.add(vm)
            self._leases[vm.vm_id] = _Lease(vm, self.sim.now)
            vms.append(vm)
        return vms

    def release(self, vm: VM, deployment: Deployment | None = None) -> float:
        """End a lease; bills the elapsed time. Returns USD charged."""
        lease = self._leases.pop(vm.vm_id, None)
        if lease is None:
            raise KeyError(f"{vm.vm_id} is not leased")
        (deployment or self.deployment).remove(vm)
        return self.meter.charge_vm_time(
            vm.size.usd_per_hour,
            self.sim.now - lease.started_at,
            context=vm.region_code,
        )

    def finalize(self) -> None:
        """Bill all still-open leases up to the current time and close them."""
        for lease in list(self._leases.values()):
            self.meter.charge_vm_time(
                lease.vm.size.usd_per_hour,
                self.sim.now - lease.started_at,
                context=lease.vm.region_code,
            )
        self._leases.clear()

    def leased_vms(self) -> list[VM]:
        return [lease.vm for lease in self._leases.values()]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def run_until(self, horizon: float) -> None:
        self.sim.run_until(horizon)

    def blob(self, region_code: str) -> BlobStore:
        return self.blobs[region_code]
