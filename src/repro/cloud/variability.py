"""Stochastic processes modelling delivered cloud performance.

Public-cloud links and VMs do not deliver constant performance: published
measurement studies of Azure/EC2 (including the ones the original authors
ran) report 10–35 % coefficient of variation on inter-datacenter
throughput, slow diurnal drift, and occasional deep glitches with no
predictable trend. We reproduce that statistical shape with a composition
of three processes, each advanced lazily at a fixed epoch so capacity
queries are O(1) amortised and fully deterministic per seed:

* :class:`Ar1LognormalProcess` — mean-reverting multiplicative noise: the
  log-factor follows an AR(1); produces the short-term correlated
  fluctuation monitoring must smooth over.
* :class:`DiurnalProcess` — a sinusoidal daily load cycle (links are
  slower at the busy hour).
* :class:`GlitchProcess` — rare, short, deep drops (hardware hiccups,
  noisy neighbours) that estimators should *not* chase.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.simulation.units import DAY, HOUR, MINUTE


class CapacityProcess(Protocol):
    """A multiplicative factor process: ``factor(t)`` ∈ (0, ∞)."""

    def factor(self, t: float) -> float:  # pragma: no cover - protocol
        ...


class ConstantProcess:
    """Degenerate process used to switch variability off in tests."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError("factor must be positive")
        self.value = value

    def factor(self, t: float) -> float:
        return self.value


class Ar1LognormalProcess:
    """Mean-reverting lognormal noise, advanced lazily per epoch.

    ``log factor`` follows ``x_{k+1} = phi * x_k + eps`` with
    ``eps ~ N(0, sigma_eps)``. The stationary std of ``x`` is
    ``sigma_eps / sqrt(1 - phi^2)``; we parameterise by the *stationary*
    coefficient of variation ``sigma`` so callers specify the observable
    quantity ("this link varies ±20 %").
    """

    def __init__(
        self,
        rng: np.random.Generator,
        sigma: float = 0.20,
        phi: float = 0.9,
        epoch: float = MINUTE,
    ) -> None:
        if not 0 <= phi < 1:
            raise ValueError("phi must be in [0, 1)")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.rng = rng
        self.phi = phi
        self.epoch = epoch
        self.sigma_eps = sigma * math.sqrt(1.0 - phi * phi)
        # Start from a stationary draw so t=0 is already "warmed up".
        self._x = rng.normal(0.0, sigma) if sigma > 0 else 0.0
        self._k = 0  # epoch index of _x

    def factor(self, t: float) -> float:
        k = int(t // self.epoch)
        if k < self._k:
            raise ValueError("process cannot run backwards (t decreased)")
        while self._k < k:
            self._x = self.phi * self._x + self.rng.normal(0.0, self.sigma_eps)
            self._k += 1
        return math.exp(self._x)


class DiurnalProcess:
    """Sinusoidal daily cycle: slowest at the peak hour.

    ``factor(t) = 1 - amplitude * max(0, cos-shaped bump around peak)``,
    normalised so the mean stays close to 1.
    """

    def __init__(
        self,
        amplitude: float = 0.15,
        peak_hour: float = 14.0,
        period: float = DAY,
    ) -> None:
        if not 0 <= amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        self.amplitude = amplitude
        self.peak_hour = peak_hour
        self.period = period

    def factor(self, t: float) -> float:
        phase = 2.0 * math.pi * ((t / self.period) - self.peak_hour / 24.0)
        # cos(phase)=1 exactly at the peak hour → deepest slowdown there.
        return 1.0 - self.amplitude * 0.5 * (1.0 + math.cos(phase))


class GlitchProcess:
    """Rare deep performance drops.

    Glitch arrivals are Poisson with the given mean inter-arrival time;
    each glitch multiplies capacity by ``depth`` for an exponentially
    distributed duration. Advanced lazily like the AR(1) process.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_interarrival: float = 8 * HOUR,
        mean_duration: float = 4 * MINUTE,
        depth: float = 0.25,
    ) -> None:
        if not 0 < depth <= 1:
            raise ValueError("depth must be in (0, 1]")
        self.rng = rng
        self.mean_interarrival = mean_interarrival
        self.mean_duration = mean_duration
        self.depth = depth
        self._next_start = rng.exponential(mean_interarrival)
        self._end = -1.0

    def factor(self, t: float) -> float:
        # Roll the glitch schedule forward past t.
        while t >= self._next_start:
            self._end = self._next_start + self.rng.exponential(self.mean_duration)
            self._next_start = self._end + self.rng.exponential(
                self.mean_interarrival
            )
        return self.depth if t < self._end else 1.0

    def in_glitch(self, t: float) -> bool:
        self.factor(t)
        return t < self._end


class CompositeProcess:
    """Product of component processes, with optional clipping.

    Clipping keeps the composed factor inside physically sensible bounds
    (a link never delivers more than ~1.6× its provisioned baseline nor
    less than 5 % of it outside an outage).
    """

    def __init__(
        self,
        components: list[CapacityProcess],
        lo: float = 0.05,
        hi: float = 1.6,
    ) -> None:
        if lo <= 0 or hi < lo:
            raise ValueError("need 0 < lo <= hi")
        self.components = list(components)
        self.lo = lo
        self.hi = hi

    def factor(self, t: float) -> float:
        f = 1.0
        for c in self.components:
            f *= c.factor(t)
        return min(self.hi, max(self.lo, f))


def default_wan_process(
    rng: np.random.Generator,
    sigma: float = 0.20,
    diurnal_amplitude: float = 0.12,
    glitches: bool = True,
    epoch: float = MINUTE,
) -> CompositeProcess:
    """The standard WAN-link variability stack used across experiments."""
    components: list[CapacityProcess] = [
        Ar1LognormalProcess(rng, sigma=sigma, epoch=epoch),
        DiurnalProcess(amplitude=diurnal_amplitude),
    ]
    if glitches:
        components.append(GlitchProcess(rng))
    return CompositeProcess(components)
