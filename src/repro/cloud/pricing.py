"""Cloud pricing and cost metering.

Prices follow the 2013 Azure price sheet that the original cost model was
calibrated against: inbound data is free, outbound (egress) data is billed
per GB with volume tiers, VMs are billed per hour of lease, and blob
storage charges per transaction plus capacity. The :class:`CostMeter`
accrues charges as the simulation runs so every experiment can report real
money next to transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.units import GB, HOUR


@dataclass(frozen=True)
class EgressTier:
    """One volume tier of the egress price schedule."""

    #: Upper bound of the tier in bytes (cumulative per billing period).
    up_to_bytes: float
    usd_per_gb: float


@dataclass(frozen=True)
class PriceBook:
    """Unit prices for every billable resource."""

    #: Tiered egress schedule, ordered by ``up_to_bytes``.
    egress_tiers: tuple[EgressTier, ...] = (
        EgressTier(10_000 * GB, 0.12),
        EgressTier(50_000 * GB, 0.09),
        EgressTier(float("inf"), 0.07),
    )
    #: Inbound transfer price (free on all major clouds).
    ingress_usd_per_gb: float = 0.0
    #: Storage capacity price.
    storage_usd_per_gb_month: float = 0.095
    #: Price per storage transaction (PUT/GET/LIST).
    storage_usd_per_transaction: float = 0.01 / 100_000
    #: Minimum VM billing increment in seconds (hourly billing in 2013).
    vm_billing_increment_s: float = HOUR

    def egress_cost(self, nbytes: float, already_used: float = 0.0) -> float:
        """Cost in USD of ``nbytes`` of egress given prior tier usage."""
        remaining = float(nbytes)
        cursor = float(already_used)
        cost = 0.0
        for tier in self.egress_tiers:
            if remaining <= 0:
                break
            room = tier.up_to_bytes - cursor
            if room <= 0:
                continue
            take = min(room, remaining)
            cost += (take / GB) * tier.usd_per_gb
            cursor += take
            remaining -= take
        return cost

    def marginal_egress_usd_per_gb(self, already_used: float = 0.0) -> float:
        """Current per-GB egress price at the given cumulative usage."""
        for tier in self.egress_tiers:
            if already_used < tier.up_to_bytes:
                return tier.usd_per_gb
        return self.egress_tiers[-1].usd_per_gb


@dataclass
class CostReport:
    """Immutable snapshot of accumulated charges."""

    vm_usd: float
    egress_usd: float
    storage_usd: float
    egress_bytes: float
    vm_seconds: float
    transactions: int

    @property
    def total_usd(self) -> float:
        return self.vm_usd + self.egress_usd + self.storage_usd

    def __sub__(self, other: "CostReport") -> "CostReport":
        """Charges accrued between two snapshots."""
        return CostReport(
            vm_usd=self.vm_usd - other.vm_usd,
            egress_usd=self.egress_usd - other.egress_usd,
            storage_usd=self.storage_usd - other.storage_usd,
            egress_bytes=self.egress_bytes - other.egress_bytes,
            vm_seconds=self.vm_seconds - other.vm_seconds,
            transactions=self.transactions - other.transactions,
        )


class CostMeter:
    """Accrues charges against a :class:`PriceBook` during a simulation.

    VM lease time can be accrued in two modes: *billed* (rounded up to the
    provider's billing increment, as invoices actually do) or *linear*
    (exact seconds — what the paper-style cost model uses to reason about
    marginal node cost).
    """

    def __init__(self, prices: PriceBook | None = None, billed: bool = False) -> None:
        self.prices = prices or PriceBook()
        self.billed = billed
        self.vm_usd = 0.0
        self.egress_usd = 0.0
        self.storage_usd = 0.0
        self.egress_bytes = 0.0
        self.vm_seconds = 0.0
        self.transactions = 0
        #: Charge listeners: ``cb(kind, amount, usd, context)`` fires on
        #: every accrual with the exact USD charged, so a subscriber's
        #: attributed totals reconcile with this meter by construction.
        self._listeners: list = []

    def on_charge(self, callback) -> None:
        """Subscribe to every charge this meter accrues.

        ``callback(kind, amount, usd, context)`` where ``kind`` is one of
        ``"egress" | "vm" | "storage" | "transactions"``, ``amount`` the
        natural unit (bytes, seconds, byte-seconds, count), ``usd`` the
        exact amount accrued, and ``context`` whatever the charge site
        passed (a link like ``"NEU->NUS"``, a region, or ``None``).
        """
        self._listeners.append(callback)

    def _notify(self, kind: str, amount: float, usd: float, context) -> None:
        for cb in self._listeners:
            cb(kind, amount, usd, context)

    # ------------------------------------------------------------------
    def charge_vm_time(
        self, usd_per_hour: float, seconds: float, context=None
    ) -> float:
        """Accrue ``seconds`` of lease for one VM; returns USD charged."""
        if seconds < 0:
            raise ValueError("negative VM time")
        if self.billed:
            inc = self.prices.vm_billing_increment_s
            periods = max(1, -(-int(seconds) // int(inc))) if seconds > 0 else 0
            seconds_billed = periods * inc
        else:
            seconds_billed = seconds
        usd = usd_per_hour * seconds_billed / HOUR
        self.vm_usd += usd
        self.vm_seconds += seconds
        if self._listeners:
            self._notify("vm", seconds, usd, context)
        return usd

    def charge_egress(self, nbytes: float, context=None) -> float:
        """Accrue outbound transfer volume; returns USD charged."""
        if nbytes < 0:
            raise ValueError("negative egress")
        usd = self.prices.egress_cost(nbytes, already_used=self.egress_bytes)
        self.egress_usd += usd
        self.egress_bytes += nbytes
        if self._listeners:
            self._notify("egress", nbytes, usd, context)
        return usd

    def charge_storage_capacity(
        self, nbytes: float, seconds: float, context=None
    ) -> float:
        """Accrue blob capacity-time (pro-rated from the monthly price)."""
        month_s = 30 * 24 * HOUR
        usd = (nbytes / GB) * self.prices.storage_usd_per_gb_month * seconds / month_s
        self.storage_usd += usd
        if self._listeners:
            self._notify("storage", nbytes * seconds, usd, context)
        return usd

    def charge_transactions(self, count: int, context=None) -> float:
        """Accrue storage transactions (PUT/GET)."""
        usd = count * self.prices.storage_usd_per_transaction
        self.storage_usd += usd
        self.transactions += count
        if self._listeners:
            self._notify("transactions", count, usd, context)
        return usd

    # ------------------------------------------------------------------
    def snapshot(self) -> CostReport:
        return CostReport(
            vm_usd=self.vm_usd,
            egress_usd=self.egress_usd,
            storage_usd=self.storage_usd,
            egress_bytes=self.egress_bytes,
            vm_seconds=self.vm_seconds,
            transactions=self.transactions,
        )

    @property
    def total_usd(self) -> float:
        return self.vm_usd + self.egress_usd + self.storage_usd
