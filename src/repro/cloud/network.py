"""Wide-area topology and the fluid max-min fair flow model.

Simulating every TCP packet across a week of virtual time is intractable
and unnecessary: the decisions SAGE makes depend on *rates*. We therefore
use the fluid-flow approximation standard in network simulation (SimGrid
family): each transfer is a flow with an instantaneous rate; rates are the
max-min fair allocation over shared resources; the event engine advances
flows between rate changes analytically.

Resources shared by flows:

* each VM's NIC uplink and downlink (bytes/s, degraded by VM health),
* each ordered inter-datacenter WAN link, whose deliverable capacity
  varies over time through a :mod:`repro.cloud.variability` process,
* a per-region intra-datacenter fabric (large, rarely binding).

Each flow additionally carries a private cap modelling the transport
protocol and politeness constraints:

* TCP throughput ceiling ``streams × window / RTT`` per hop — multi-hop
  relays re-terminate TCP per hop, so a long fat path relayed through an
  intermediate datacenter can beat the direct path's RTT ceiling, which is
  precisely the phenomenon the multi-datacenter path strategy exploits;
* the *intrusiveness* fraction: a transfer allowed to use only 10 % of a
  VM's resources is capped at 10 % of that VM's NIC on every hop.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Callable

import numpy as np

from repro.cloud.regions import RegionCatalog, default_catalog, pair_bias
from repro.cloud.variability import (
    CapacityProcess,
    ConstantProcess,
    default_wan_process,
)
from repro.cloud.vm import VM
from repro.simulation.engine import Simulator
from repro.simulation.events import Event
from repro.simulation.units import KB, MB, MINUTE

_EPS = 1e-9
#: Smallest completion delay _schedule_next will arm. An eta below the
#: float resolution of ``sim.now`` would re-enter ``_recompute`` at the
#: same instant (settle sees dt == 0, nothing progresses) and spin the
#: event loop forever; one nanosecond of simulated time is enough for
#: settle to push any such near-finished flow past its remaining bytes.
_MIN_ETA = 1e-9

#: Baseline per-tenant deliverable WAN capacity by distance class, bytes/s.
SAME_CONTINENT_CAPACITY = 55 * MB
CROSS_CONTINENT_CAPACITY = 30 * MB
#: Intra-datacenter fabric available to one tenant deployment.
INTRA_CAPACITY = 2000 * MB


class WanLink:
    """One ordered inter-datacenter link with time-varying capacity.

    Besides the stochastic weather process, a link carries two *fault*
    controls used by the injector: ``up`` (False = blackhole — the link
    delivers nothing until restored) and ``fault_scale`` (a capacity
    multiplier for flapping/brownout faults).
    """

    __slots__ = ("src", "dst", "base_capacity", "process", "rtt", "up",
                 "fault_scale")

    def __init__(
        self,
        src: str,
        dst: str,
        base_capacity: float,
        rtt: float,
        process: CapacityProcess | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.base_capacity = base_capacity
        self.rtt = rtt
        self.process = process or ConstantProcess()
        self.up: bool = True
        self.fault_scale: float = 1.0

    def capacity(self, t: float) -> float:
        """Deliverable capacity (bytes/s) at virtual time ``t``."""
        if not self.up:
            return 0.0
        return self.base_capacity * self.process.factor(t) * self.fault_scale

    def set_down(self) -> None:
        """Blackhole the link: zero deliverable capacity until restored."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def scale_capacity(self, factor: float) -> None:
        """Apply a fault multiplier (1.0 = nominal) on top of the weather."""
        if factor < 0:
            raise ValueError(f"fault scale must be >= 0, got {factor}")
        self.fault_scale = factor

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)

    def __repr__(self) -> str:
        return f"WanLink({self.src}->{self.dst}, {self.base_capacity / MB:.0f} MB/s)"


class Topology:
    """Region catalog plus the full mesh of WAN links."""

    def __init__(
        self,
        catalog: RegionCatalog,
        links: dict[tuple[str, str], WanLink],
        intra_capacity: float = INTRA_CAPACITY,
    ) -> None:
        self.catalog = catalog
        self.links = links
        self.intra_capacity = intra_capacity

    @classmethod
    def build(
        cls,
        sim: Simulator | None = None,
        catalog: RegionCatalog | None = None,
        variability_sigma: float = 0.20,
        diurnal_amplitude: float = 0.12,
        glitches: bool = True,
        capacity_scale: float = 1.0,
        epoch: float = MINUTE,
    ) -> "Topology":
        """Construct the default six-region mesh.

        Pass ``variability_sigma=0`` (with ``glitches=False`` and
        ``diurnal_amplitude=0``) for a perfectly stable cloud — useful in
        unit tests and as the control arm of variability ablations.
        """
        catalog = catalog or default_catalog()
        links: dict[tuple[str, str], WanLink] = {}
        for a, b in catalog.pairs(ordered=True):
            base = (
                SAME_CONTINENT_CAPACITY
                if a.continent == b.continent
                else CROSS_CONTINENT_CAPACITY
            )
            base *= pair_bias(a.code, b.code) * capacity_scale
            if sim is not None and (
                variability_sigma > 0 or diurnal_amplitude > 0 or glitches
            ):
                rng = sim.rngs.get(f"wan/{a.code}->{b.code}")
                process = default_wan_process(
                    rng,
                    sigma=variability_sigma,
                    diurnal_amplitude=diurnal_amplitude,
                    glitches=glitches,
                    epoch=epoch,
                )
            else:
                process = ConstantProcess()
            links[(a.code, b.code)] = WanLink(
                a.code, b.code, base, catalog.rtt(a, b), process
            )
        return cls(catalog, links)

    def link(self, src: str, dst: str) -> WanLink:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no WAN link {src}->{dst}") from None

    def rtt(self, src: str, dst: str) -> float:
        return self.catalog.rtt(src, dst)

    def region_codes(self) -> list[str]:
        return self.catalog.codes()


class Flow:
    """One fluid transfer along a VM path.

    ``path`` is the ordered VM chain ``[source, relay..., destination]``;
    consecutive VMs in different regions traverse the corresponding WAN
    link. A flow completes when ``transferred >= size``.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        path: list[VM],
        size: float,
        streams: int = 1,
        intrusiveness: float = 1.0,
        on_complete: Callable[["Flow"], None] | None = None,
        label: str = "",
        rate_cap: float | None = None,
        transport: str = "tcp",
    ) -> None:
        if len(path) < 2:
            raise ValueError("a flow needs at least source and destination")
        if size <= 0:
            raise ValueError("flow size must be positive")
        if streams < 1:
            raise ValueError("streams must be >= 1")
        if not 0.0 < intrusiveness <= 1.0:
            raise ValueError("intrusiveness must be in (0, 1]")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError("rate_cap must be positive")
        if transport not in ("tcp", "udp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.flow_id = next(self._ids)
        self.path = list(path)
        self.size = float(size)
        self.streams = int(streams)
        self.intrusiveness = float(intrusiveness)
        self.on_complete = on_complete
        self.label = label
        self.rate_cap = rate_cap
        #: "tcp" flows are window/RTT-limited per hop; "udp" flows blast
        #: at whatever the NIC and link shares allow (delivery guarantees
        #: are then the sender's problem — see the UDP shipping backend).
        self.transport = transport
        self.transferred = 0.0
        self.rate = 0.0
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.cancelled = False
        #: Virtual time since which the flow's allocated rate has been
        #: (numerically) zero; None while the flow is moving. Stalls are
        #: the observable signature of a crashed VM or blackholed link.
        self.stalled_since: float | None = None
        self._stall_notified = False

    @property
    def src(self) -> VM:
        return self.path[0]

    @property
    def dst(self) -> VM:
        return self.path[-1]

    @property
    def remaining(self) -> float:
        return max(0.0, self.size - self.transferred)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def hops(self) -> list[tuple[VM, VM]]:
        return list(zip(self.path[:-1], self.path[1:]))

    def wan_hops(self) -> list[tuple[str, str]]:
        """Ordered region pairs of the inter-datacenter hops."""
        return [
            (a.region_code, b.region_code)
            for a, b in self.hops()
            if a.region_code != b.region_code
        ]

    def elapsed(self, now: float) -> float:
        if self.started_at is None:
            return 0.0
        end = self.completed_at if self.completed_at is not None else now
        return end - self.started_at

    def mean_throughput(self, now: float) -> float:
        el = self.elapsed(now)
        return self.transferred / el if el > 0 else 0.0

    def __repr__(self) -> str:
        route = "->".join(vm.region_code for vm in self.path)
        return f"Flow#{self.flow_id}({route}, {self.size / MB:.1f}MB)"


#: Resource-entry kinds (how ``_allocate`` reads each entry's capacity).
_RES_UP, _RES_DOWN, _RES_INTRA, _RES_WAN = range(4)


class _ResEntry:
    """One shared resource as seen by the fast allocator.

    ``epoch``/``cap``/``count``/``users``/``remaining`` are transient
    per-allocation scratch, reset by the epoch stamp; ``kind``/``obj``
    identify the resource (a VM, a WAN link, or the intra fabric).
    """

    __slots__ = (
        "kind", "obj", "cap", "weather", "weather_t", "remaining", "count",
        "live_users", "live_count", "live_pos",
    )

    def __init__(self, kind: int, obj: object) -> None:
        self.kind = kind
        self.obj = obj
        self.cap = 0.0
        #: Raw weather factor read this allocation (WAN entries only), and
        #: the virtual time it was read at. ``factor(t)`` is idempotent at
        #: fixed ``t`` for every capacity process, so cascaded recomputes
        #: at one event time reuse the value instead of re-walking the
        #: process stack. Fault state (``up``/``fault_scale``) can change
        #: without time advancing, so the capacity itself is still
        #: recombined from the memoised factor on every allocation.
        self.weather = 1.0
        self.weather_t = -1.0
        self.remaining = 0.0
        self.count = 0
        #: Active flows crossing this resource, maintained incrementally
        #: on flow start/cancel/completion in start order (== flow_id
        #: order), so iteration is deterministic across processes.
        self.live_users: list["Flow"] = []
        self.live_count = 0
        #: Index into FluidNetwork._live_entries while live_count > 0.
        self.live_pos = -1


class FluidNetwork:
    """Event-driven fluid simulation of concurrent transfers.

    The network reacts to four kinds of events — flow start, flow cancel,
    flow completion, and the periodic capacity refresh — all of which
    funnel into :meth:`_recompute`: settle progress analytically since the
    previous event, re-read link capacities, re-run max-min fair sharing,
    and schedule the next projected completion.

    ``_recompute`` is the simulator's hottest path (every batch shipped by
    the streaming runtime starts and completes a flow), so the allocation
    is *incremental*: the resource-incidence structure is rebuilt only
    when the active flow set changes, capacities of the resources the
    active flows actually touch are re-read and compared against the
    previous allocation's inputs (dirty-link tracking by value), and when
    nothing relevant changed the previous rates are reused outright. When
    a full reallocation is needed it runs as vectorised numpy
    water-filling over the bottleneck sets instead of per-resource set
    algebra. ``allocator="reference"`` selects the original pure-Python
    allocator, kept for A/B equivalence tests and as the microbenchmark
    baseline (``benchmarks/test_network_recompute.py``).

    All flow iteration happens in ``flow_id`` (creation) order: iteration
    over the raw ``set`` would follow ``id()``-based hashes, which vary
    across processes and would break the bit-identical guarantee the
    parallel sweep runner makes for ``--jobs N`` vs serial runs.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tcp_window: float = 128 * KB,
        refresh_interval: float = 10.0,
        relay_efficiency: float = 0.95,
        stall_timeout: float = 30.0,
        allocator: str = "fast",
    ) -> None:
        if allocator not in ("fast", "reference"):
            raise ValueError(f"unknown allocator {allocator!r}")
        self.sim = sim
        self.topology = topology
        self.tcp_window = tcp_window
        self.refresh_interval = refresh_interval
        #: Per-WAN-hop forwarding efficiency of store-and-forward relays
        #: (serialisation + copy overhead at the relay VM).
        self.relay_efficiency = relay_efficiency
        #: A flow whose allocated rate stays zero this long is *stalled*
        #: (crashed VM / blackholed link); ``on_stall`` fires once per flow.
        self.stall_timeout = stall_timeout
        self.allocator = allocator
        self.on_stall: Callable[[Flow], None] | None = None
        self.flows: set[Flow] = set()
        self.bytes_completed = 0.0
        self.flows_completed = 0
        self._last_settle = sim.now
        self._completion_event: Event | None = None
        self._refresh_event: Event | None = None
        # Incremental-allocation state. ``_flows_version`` bumps on every
        # start/cancel/completion; the flow-id-ordered view, the interned
        # resource entries, and the live resource-incidence structure are
        # all maintained in place at those three mutation points rather
        # than rebuilt per allocation.
        self._flows_version = 0
        self._sorted_flows: list[Flow] = []
        self._struct_version = -1
        self._res_intern: dict[object, _ResEntry] = {}
        self._live_entries: list[_ResEntry] = []
        self._last_entry_caps: list[float] | None = None
        self._last_flow_caps: list[float] | None = None
        #: Flow-set size at which allocation switches from the scalar
        #: water-filling to the vectorised numpy one.
        self.vector_threshold = 32
        #: Instrumentation: recomputes seen / full water-fillings run /
        #: reallocations skipped because no relevant input changed.
        self.recomputes = 0
        self.allocations = 0
        self.alloc_skips = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_flow(self, flow: Flow) -> Flow:
        if flow.started_at is not None:
            raise ValueError(f"{flow!r} already started")
        flow.started_at = self.sim.now
        self.flows.add(flow)
        self._attach(flow)
        self._flows_version += 1
        self._recompute()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        if flow not in self.flows:
            return
        flow.cancelled = True
        self._settle()
        self.flows.discard(flow)
        self._detach(flow)
        self._flows_version += 1
        flow.rate = 0.0
        self._recompute()

    def _attach(self, flow: Flow) -> None:
        """Fold a starting flow into the live incidence structure."""
        sorted_flows = self._sorted_flows
        if sorted_flows and sorted_flows[-1].flow_id > flow.flow_id:
            # A flow constructed earlier but started later: keep the
            # flow-id order that the deterministic iteration relies on.
            bisect.insort(sorted_flows, flow, key=lambda f: f.flow_id)
        else:
            sorted_flows.append(flow)
        live = self._live_entries
        for e in self._flow_entries(flow):
            if e.live_count == 0:
                e.live_pos = len(live)
                live.append(e)
            e.live_users.append(flow)
            e.live_count += 1

    def _detach(self, flow: Flow) -> None:
        """Remove a cancelled/completed flow from the live incidence."""
        self._sorted_flows.remove(flow)
        live = self._live_entries
        for e in flow._net_entries:
            e.live_users.remove(flow)
            e.live_count -= 1
            if e.live_count == 0:
                last = live[-1]
                last.live_pos = e.live_pos
                live[e.live_pos] = last
                live.pop()
                e.live_pos = -1

    def throughput(self, flow: Flow) -> float:
        """Instantaneous allocated rate of a flow, bytes/s."""
        return flow.rate if flow in self.flows else 0.0

    def notify_change(self) -> None:
        """Re-run the allocation after an external capacity change.

        Call after crashing/restoring a VM or taking a link down/up so
        flow rates react immediately instead of at the next refresh.
        """
        self._recompute()

    def stalled_flows(self, min_duration: float | None = None) -> list[Flow]:
        """Active flows whose rate has been zero for at least
        ``min_duration`` seconds (default: the network's stall timeout)."""
        timeout = self.stall_timeout if min_duration is None else min_duration
        now = self.sim.now
        return [
            f
            for f in self._active_sorted()
            if f.stalled_since is not None and now - f.stalled_since >= timeout
        ]

    def link_utilization(self, src: str, dst: str) -> float:
        """Sum of current rates of flows crossing a WAN link."""
        return sum(
            f.rate for f in self._active_sorted() if (src, dst) in f.wan_hops()
        )

    def flow_cap(self, flow: Flow) -> float:
        """Private ceiling of one flow (TCP windows, intrusiveness, NICs).

        The per-hop TCP ceiling is scaled by the link's current weather
        factor (clipped at 1): congestion inflates RTT and induces loss,
        so a single flow on a bad day delivers less than ``window/RTT``
        even when the aggregate link is far from saturated. This is what
        makes the cloud's variability *observable* to unsaturated probes.

        The path-derived parts (per-hop window/RTT ceilings, the VM list,
        the relay factor) never change for a given flow, so they are
        computed once and cached on the flow; only the weather factors
        and VM NIC capacities are re-read per call. The arithmetic is
        kept operation-for-operation identical to the original per-hop
        walk so cached and uncached evaluation agree bit-exactly.
        """
        static = getattr(flow, "_cap_static", None)
        if static is None or static[0] != (self.tcp_window, self.relay_efficiency):
            static = self._build_cap_static(flow)
            flow._cap_static = static
        _, base, wan_ceilings, intrusiveness, vms, relay = static
        cap = base
        now = self.sim.now
        for link, ceiling in wan_ceilings:
            weather = link.process.factor(now)
            if weather > 1.0:
                weather = 1.0
            hop_cap = ceiling * weather
            if hop_cap < cap:
                cap = hop_cap
        for vm in vms:
            vm_cap = intrusiveness * vm.uplink_capacity
            if vm_cap < cap:
                cap = vm_cap
        return cap * relay if relay is not None else cap

    def _flow_cap_walk(self, flow: Flow) -> float:
        """Per-hop walk computing :meth:`flow_cap` with no caching.

        This is the pre-optimisation implementation, kept verbatim for
        the reference allocator so that A/B benchmarks compare against
        the true baseline cost. Arithmetic is identical to flow_cap.
        """
        cap = flow.rate_cap if flow.rate_cap is not None else float("inf")
        now = self.sim.now
        n_wan = 0
        for a, b in flow.hops():
            if a.region_code != b.region_code:
                n_wan += 1
                if flow.transport == "udp":
                    continue  # no congestion window: NICs and shares bind
                link = self.topology.link(a.region_code, b.region_code)
                weather = min(1.0, link.process.factor(now))
                cap = min(cap, flow.streams * self.tcp_window / link.rtt * weather)
        for vm in flow.path:
            cap = min(cap, flow.intrusiveness * vm.uplink_capacity)
        if n_wan > 1:
            cap *= self.relay_efficiency ** (n_wan - 1)
        return cap

    def _build_cap_static(self, flow: Flow) -> tuple:
        """Precompute the path-invariant inputs of :meth:`flow_cap`."""
        n_wan = 0
        wan_ceilings: list[tuple[WanLink, float]] = []
        for a, b in flow.hops():
            if a.region_code != b.region_code:
                n_wan += 1
                if flow.transport == "udp":
                    continue  # no congestion window: NICs and shares bind
                link = self.topology.link(a.region_code, b.region_code)
                wan_ceilings.append(
                    (link, flow.streams * self.tcp_window / link.rtt)
                )
        relay = (
            self.relay_efficiency ** (n_wan - 1) if n_wan > 1 else None
        )
        base = flow.rate_cap if flow.rate_cap is not None else float("inf")
        return (
            (self.tcp_window, self.relay_efficiency),
            base,
            wan_ceilings,
            flow.intrusiveness,
            flow.path,
            relay,
        )

    def isolated_rate(
        self,
        path: list[VM],
        streams: int = 1,
        intrusiveness: float = 1.0,
        rate_cap: float | None = None,
    ) -> float:
        """Rate a flow on ``path`` would get with no competing traffic.

        This is the quantity an iperf-style probe measures on an otherwise
        idle deployment, and the ground truth the estimator-accuracy
        experiments compare against.
        """
        probe = Flow(
            path, 1.0, streams=streams, intrusiveness=intrusiveness,
            rate_cap=rate_cap,
        )
        cap = self.flow_cap(probe)
        now = self.sim.now
        for a, b in probe.hops():
            if a.region_code != b.region_code:
                cap = min(
                    cap, self.topology.link(a.region_code, b.region_code).capacity(now)
                )
            else:
                cap = min(cap, self.topology.intra_capacity)
        return cap

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _active_sorted(self) -> list[Flow]:
        """The active flows in creation order (maintained incrementally)."""
        return self._sorted_flows

    def _settle(self) -> None:
        """Advance every active flow by rate × elapsed since last event."""
        now = self.sim.now
        dt = now - self._last_settle
        if dt > 0:
            for f in self._sorted_flows:
                rate = f.rate
                if rate > 0:
                    done = f.transferred + rate * dt
                    f.transferred = done if done < f.size else f.size
        self._last_settle = now

    def _complete_finished(self) -> None:
        finished = None
        for f in self._sorted_flows:
            if f.size - f.transferred <= _EPS * f.size + _EPS:
                if finished is None:
                    finished = [f]
                else:
                    finished.append(f)
        if finished is None:
            return
        for f in finished:
            f.transferred = f.size
            f.completed_at = self.sim.now
            f.rate = 0.0
            self.flows.discard(f)
            self._detach(f)
            self.bytes_completed += f.size
            self.flows_completed += 1
        self._flows_version += 1
        # Callbacks run after bookkeeping so they can start follow-up flows.
        for f in finished:
            if f.on_complete is not None:
                f.on_complete(f)

    # -- fast allocator ------------------------------------------------
    def _flow_entries(self, f: Flow) -> list["_ResEntry"]:
        """The interned resource entries a flow's path touches.

        Computed once per flow (paths are immutable) and cached on the
        flow, so a reallocation never re-hashes resource keys. Entries
        are shared between flows through ``_res_intern`` — identity is
        the resource, not the flow. Order matches the reference
        allocator's first-touch order (uplinks, downlinks, hops) and is
        deduplicated, mirroring its ``live_users`` set semantics.
        """
        entries = getattr(f, "_net_entries", None)
        if entries is None:
            intern = self._res_intern
            entries = []
            seen = set()
            vm_entry: dict[str, _ResEntry] = {}

            def add(key: object, kind: int, obj: object) -> "_ResEntry":
                e = intern.get(key)
                if e is None:
                    e = intern[key] = _ResEntry(kind, obj)
                if key not in seen:
                    seen.add(key)
                    entries.append(e)
                return e

            for vm in f.path[:-1]:
                vm_entry.setdefault(
                    vm.vm_id, add(("up", vm.vm_id), _RES_UP, vm)
                )
            for vm in f.path[1:]:
                vm_entry.setdefault(
                    vm.vm_id, add(("down", vm.vm_id), _RES_DOWN, vm)
                )
            # The per-flow cap plan mirrors flow_cap() entry by entry:
            # (wan entry, window/RTT ceiling) pairs for TCP hops, one VM
            # entry per path VM (up and down NIC reads are the same
            # expression, so either entry's cap stands in for
            # uplink_capacity), and the relay factor.
            n_wan = 0
            wan_pairs: list[tuple[_ResEntry, float]] = []
            for a, b in f.hops():
                if a.region_code == b.region_code:
                    add(("intra", a.region_code), _RES_INTRA, None)
                else:
                    key = (a.region_code, b.region_code)
                    link = self.topology.link(*key)
                    e = add(("wan", key), _RES_WAN, link)
                    n_wan += 1
                    if f.transport != "udp":
                        wan_pairs.append(
                            (e, f.streams * self.tcp_window / link.rtt)
                        )
            base = f.rate_cap if f.rate_cap is not None else float("inf")
            relay = (
                self.relay_efficiency ** (n_wan - 1) if n_wan > 1 else None
            )
            f._cap_plan = (
                base,
                wan_pairs,
                [vm_entry[vm.vm_id] for vm in f.path],
                f.intrusiveness,
                relay,
            )
            f._net_entries = entries
        return entries

    def _allocate(self) -> None:
        """Max-min fair allocation with per-flow caps (water-filling)."""
        if self.allocator == "reference":
            self._allocate_reference()
            return
        flows = self._active_sorted()
        if not flows:
            self._last_entry_caps = None
            self._last_flow_caps = None
            return
        now = self.sim.now

        # Re-read capacities of exactly the resources the active flows
        # touch. The incidence structure (which flows cross which
        # resources) is maintained incrementally on start/cancel/
        # completion, so this pass is O(resources) + O(flows), not
        # O(flows × path length). Per-flow private caps are derived from
        # the same entry-level reads (see the cap plan in _flow_entries),
        # so each resource is read exactly once per allocation no matter
        # how many flows cross it.
        entries = self._live_entries
        intra_cap = self.topology.intra_capacity
        for e in entries:
            kind = e.kind
            if kind == _RES_UP:
                e.cap = e.obj.uplink_capacity
            elif kind == _RES_DOWN:
                e.cap = e.obj.downlink_capacity
            elif kind == _RES_INTRA:
                e.cap = intra_cap
            else:
                link = e.obj
                if e.weather_t != now:
                    e.weather = link.process.factor(now)
                    e.weather_t = now
                e.cap = (
                    link.base_capacity * e.weather * link.fault_scale
                    if link.up
                    else 0.0
                )

        n = len(flows)
        if n == 1:
            # A lone flow gets the min of its private cap and every
            # resource it crosses — no water-filling, and nothing to
            # compare against, so skip the early-out bookkeeping too.
            f = flows[0]
            f._wf_i = 0
            base, wan_pairs, vm_entries, intr, relay = f._cap_plan
            cap = base
            for e, ceiling in wan_pairs:
                w = e.weather
                if w > 1.0:
                    w = 1.0
                hop_cap = ceiling * w
                if hop_cap < cap:
                    cap = hop_cap
            for e in vm_entries:
                vm_cap = intr * e.cap
                if vm_cap < cap:
                    cap = vm_cap
            if relay is not None:
                cap *= relay
            mn = cap
            for e in entries:
                c = e.cap
                if c < mn:
                    mn = c
            f.rate = mn
            self._struct_version = self._flows_version
            self._last_entry_caps = None
            self._last_flow_caps = None
            self.allocations += 1
            return

        flow_caps: list[float] = []
        for ix, f in enumerate(flows):
            f._wf_i = ix
            base, wan_pairs, vm_entries, intr, relay = f._cap_plan
            cap = base
            for e, ceiling in wan_pairs:
                w = e.weather
                if w > 1.0:
                    w = 1.0
                hop_cap = ceiling * w
                if hop_cap < cap:
                    cap = hop_cap
            for e in vm_entries:
                vm_cap = intr * e.cap
                if vm_cap < cap:
                    cap = vm_cap
            flow_caps.append(cap * relay if relay is not None else cap)
        entry_caps = [e.cap for e in entries]
        structure_changed = self._struct_version != self._flows_version
        if structure_changed:
            self._struct_version = self._flows_version
        elif (
            entry_caps == self._last_entry_caps
            and flow_caps == self._last_flow_caps
        ):
            # Early-out: same flows, same capacities, same private caps —
            # the previous rates are still the max-min fair allocation.
            self.alloc_skips += 1
            return
        self._last_entry_caps = entry_caps
        self._last_flow_caps = flow_caps
        self.allocations += 1

        if n >= self.vector_threshold:
            self._water_fill_vector(flows, entries, flow_caps, entry_caps)
        else:
            self._water_fill_scalar(flows, entries, flow_caps)

    def _water_fill_scalar(
        self,
        flows: list[Flow],
        entries: list["_ResEntry"],
        flow_caps: list[float],
    ) -> None:
        """Water-filling with incrementally maintained bottleneck counts.

        Identical arithmetic to the reference allocator (same increments,
        same freeze conditions, same tie-break) but O(flows + resources)
        per round instead of per-resource set intersections.
        """
        n = len(flows)
        alloc = [0.0] * n
        active = [True] * n
        n_active = n
        for e in entries:
            e.remaining = e.cap
            e.count = e.live_count
        while n_active:
            # Largest uniform increment every active flow can take.
            inc = None
            for i in range(n):
                if active[i]:
                    gap = flow_caps[i] - alloc[i]
                    if inc is None or gap < inc:
                        inc = gap
            for e in entries:
                c = e.count
                if c:
                    share = e.remaining / c
                    if share < inc:
                        inc = share
            if inc < 0:
                inc = 0.0
            # Freeze flows at their private cap ...
            frozen = []
            for i in range(n):
                if active[i]:
                    alloc[i] += inc
                    if flow_caps[i] - alloc[i] <= _EPS:
                        frozen.append(i)
            # ... and flows on saturated resources.
            for e in entries:
                c = e.count
                if c:
                    e.remaining -= inc * c
                    if e.remaining <= _EPS:
                        for g in e.live_users:
                            i = g._wf_i
                            if active[i]:
                                frozen.append(i)
            if not frozen:
                # Numerical stall: freeze the flow closest to its cap
                # (first by creation order among ties).
                frozen = [
                    min(
                        (flow_caps[i] - alloc[i], i)
                        for i in range(n)
                        if active[i]
                    )[1]
                ]
            for i in frozen:
                if active[i]:
                    active[i] = False
                    n_active -= 1
                    for e in flows[i]._net_entries:
                        e.count -= 1
        for i, f in enumerate(flows):
            f.rate = alloc[i]

    def _water_fill_vector(
        self,
        flows: list[Flow],
        entries: list["_ResEntry"],
        flow_caps: list[float],
        entry_caps: list[float],
    ) -> None:
        """Vectorised numpy water-filling over the bottleneck sets.

        Same arithmetic as the scalar path; wins once the active flow
        set is large (big transfer sessions, many concurrent batches).
        """
        n = len(flows)
        incidence = np.zeros((len(entries), n))
        for row, e in enumerate(entries):
            incidence[row, [g._wf_i for g in e.live_users]] = 1.0
        caps = np.asarray(flow_caps)
        alloc = np.zeros(n)
        active = np.ones(n, dtype=bool)
        remaining = np.asarray(entry_caps, dtype=float).copy()
        while active.any():
            gaps = caps - alloc
            inc = gaps[active].min()
            counts = incidence @ active
            used = counts > 0
            if used.any():
                inc = min(inc, (remaining[used] / counts[used]).min())
            if inc < 0:
                inc = 0.0
            alloc[active] += inc
            remaining -= inc * counts
            frozen = active & (caps - alloc <= _EPS)
            saturated = remaining <= _EPS
            if saturated.any():
                frozen |= active & (incidence[saturated].any(axis=0))
            if not frozen.any():
                stall_gaps = np.where(active, caps - alloc, np.inf)
                frozen = np.zeros(n, dtype=bool)
                frozen[int(np.argmin(stall_gaps))] = True
            active &= ~frozen
        for f, rate in zip(flows, alloc):
            f.rate = float(rate)

    # -- reference allocator -------------------------------------------
    def _allocate_reference(self) -> None:
        """The original pure-Python water-filling, kept as the equivalence
        oracle and microbenchmark baseline for the fast allocator."""
        now = self.sim.now
        flows = self._active_sorted()
        for f in flows:
            f.rate = 0.0
        if not flows:
            return

        # Build resource table: id -> (remaining capacity, user flows).
        remaining: dict[object, float] = {}
        users: dict[object, list[Flow]] = {}

        def add_user(res: object, cap: float, flow: Flow) -> None:
            if res not in remaining:
                remaining[res] = cap
                users[res] = []
            users[res].append(flow)

        for f in flows:
            for vm in f.path[:-1]:
                add_user(("up", vm.vm_id), vm.uplink_capacity, f)
            for vm in f.path[1:]:
                add_user(("down", vm.vm_id), vm.downlink_capacity, f)
            for a, b in f.hops():
                if a.region_code == b.region_code:
                    add_user(
                        ("intra", a.region_code),
                        self.topology.intra_capacity,
                        f,
                    )
                else:
                    key = (a.region_code, b.region_code)
                    add_user(
                        ("wan", key),
                        self.topology.link(*key).capacity(now),
                        f,
                    )

        caps = {f: self._flow_cap_walk(f) for f in flows}
        alloc = {f: 0.0 for f in flows}
        active: set[Flow] = set(flows)
        live_users = {res: set(fl) for res, fl in users.items()}

        while active:
            # Largest uniform increment every active flow can take.
            inc = min(caps[f] - alloc[f] for f in active)
            for res, flows_on in live_users.items():
                n = len(flows_on & active)
                if n:
                    inc = min(inc, remaining[res] / n)
            if inc < 0:
                inc = 0.0
            for f in active:
                alloc[f] += inc
            for res, flows_on in live_users.items():
                n = len(flows_on & active)
                if n:
                    remaining[res] -= inc * n
            # Freeze flows at their private cap.
            newly_frozen = {f for f in active if caps[f] - alloc[f] <= _EPS}
            # Freeze flows on saturated resources.
            for res, flows_on in live_users.items():
                if remaining[res] <= _EPS:
                    newly_frozen |= flows_on & active
            if not newly_frozen:
                # Numerical stall: freeze the flow closest to its cap
                # (first by creation order among ties, matching the fast
                # allocator's argmin).
                newly_frozen = {
                    min(
                        sorted(active, key=lambda f: f.flow_id),
                        key=lambda f: caps[f] - alloc[f],
                    )
                }
            active -= newly_frozen

        for f in flows:
            f.rate = alloc[f]

    def _recompute(self) -> None:
        self.recomputes += 1
        self._settle()
        self._complete_finished()
        self._allocate()
        self._track_stalls()
        self._schedule_next()

    def _track_stalls(self) -> None:
        """Update per-flow stall clocks and fire ``on_stall`` once each."""
        now = self.sim.now
        timed_out: list[Flow] | None = None
        for f in self._sorted_flows:
            if f.rate > _EPS:
                f.stalled_since = None
                f._stall_notified = False
            elif f.stalled_since is None:
                f.stalled_since = now
            elif (
                not f._stall_notified
                and now - f.stalled_since >= self.stall_timeout
            ):
                f._stall_notified = True
                if timed_out is None:
                    timed_out = [f]
                else:
                    timed_out.append(f)
        if timed_out and self.on_stall is not None:
            # Deliver out-of-band: handlers may cancel flows, which would
            # re-enter the allocation we are in the middle of.
            for f in timed_out:
                self.sim.schedule(0.0, self.on_stall, f)

    def _schedule_next(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if self._refresh_event is not None:
            self._refresh_event.cancel()
            self._refresh_event = None
        if not self.flows:
            return
        # Earliest projected completion at current rates.
        eta = None
        for f in self._sorted_flows:
            rate = f.rate
            if rate > 0:
                t = (f.size - f.transferred) / rate
                if eta is None or t < eta:
                    eta = t
        horizon = self.refresh_interval
        if eta is not None and eta <= horizon:
            self._completion_event = self.sim.schedule(
                max(eta, _MIN_ETA), self._recompute, priority=-1
            )
        else:
            # Either all rates are zero (wait for capacity refresh) or the
            # next completion is beyond the refresh horizon.
            self._refresh_event = self.sim.schedule(
                horizon, self._recompute, priority=-1
            )
