"""Wide-area topology and the fluid max-min fair flow model.

Simulating every TCP packet across a week of virtual time is intractable
and unnecessary: the decisions SAGE makes depend on *rates*. We therefore
use the fluid-flow approximation standard in network simulation (SimGrid
family): each transfer is a flow with an instantaneous rate; rates are the
max-min fair allocation over shared resources; the event engine advances
flows between rate changes analytically.

Resources shared by flows:

* each VM's NIC uplink and downlink (bytes/s, degraded by VM health),
* each ordered inter-datacenter WAN link, whose deliverable capacity
  varies over time through a :mod:`repro.cloud.variability` process,
* a per-region intra-datacenter fabric (large, rarely binding).

Each flow additionally carries a private cap modelling the transport
protocol and politeness constraints:

* TCP throughput ceiling ``streams × window / RTT`` per hop — multi-hop
  relays re-terminate TCP per hop, so a long fat path relayed through an
  intermediate datacenter can beat the direct path's RTT ceiling, which is
  precisely the phenomenon the multi-datacenter path strategy exploits;
* the *intrusiveness* fraction: a transfer allowed to use only 10 % of a
  VM's resources is capped at 10 % of that VM's NIC on every hop.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.cloud.regions import RegionCatalog, default_catalog, pair_bias
from repro.cloud.variability import (
    CapacityProcess,
    ConstantProcess,
    default_wan_process,
)
from repro.cloud.vm import VM
from repro.simulation.engine import Simulator
from repro.simulation.events import Event
from repro.simulation.units import KB, MB, MINUTE

_EPS = 1e-9

#: Baseline per-tenant deliverable WAN capacity by distance class, bytes/s.
SAME_CONTINENT_CAPACITY = 55 * MB
CROSS_CONTINENT_CAPACITY = 30 * MB
#: Intra-datacenter fabric available to one tenant deployment.
INTRA_CAPACITY = 2000 * MB


class WanLink:
    """One ordered inter-datacenter link with time-varying capacity.

    Besides the stochastic weather process, a link carries two *fault*
    controls used by the injector: ``up`` (False = blackhole — the link
    delivers nothing until restored) and ``fault_scale`` (a capacity
    multiplier for flapping/brownout faults).
    """

    __slots__ = ("src", "dst", "base_capacity", "process", "rtt", "up",
                 "fault_scale")

    def __init__(
        self,
        src: str,
        dst: str,
        base_capacity: float,
        rtt: float,
        process: CapacityProcess | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.base_capacity = base_capacity
        self.rtt = rtt
        self.process = process or ConstantProcess()
        self.up: bool = True
        self.fault_scale: float = 1.0

    def capacity(self, t: float) -> float:
        """Deliverable capacity (bytes/s) at virtual time ``t``."""
        if not self.up:
            return 0.0
        return self.base_capacity * self.process.factor(t) * self.fault_scale

    def set_down(self) -> None:
        """Blackhole the link: zero deliverable capacity until restored."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def scale_capacity(self, factor: float) -> None:
        """Apply a fault multiplier (1.0 = nominal) on top of the weather."""
        if factor < 0:
            raise ValueError(f"fault scale must be >= 0, got {factor}")
        self.fault_scale = factor

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)

    def __repr__(self) -> str:
        return f"WanLink({self.src}->{self.dst}, {self.base_capacity / MB:.0f} MB/s)"


class Topology:
    """Region catalog plus the full mesh of WAN links."""

    def __init__(
        self,
        catalog: RegionCatalog,
        links: dict[tuple[str, str], WanLink],
        intra_capacity: float = INTRA_CAPACITY,
    ) -> None:
        self.catalog = catalog
        self.links = links
        self.intra_capacity = intra_capacity

    @classmethod
    def build(
        cls,
        sim: Simulator | None = None,
        catalog: RegionCatalog | None = None,
        variability_sigma: float = 0.20,
        diurnal_amplitude: float = 0.12,
        glitches: bool = True,
        capacity_scale: float = 1.0,
        epoch: float = MINUTE,
    ) -> "Topology":
        """Construct the default six-region mesh.

        Pass ``variability_sigma=0`` (with ``glitches=False`` and
        ``diurnal_amplitude=0``) for a perfectly stable cloud — useful in
        unit tests and as the control arm of variability ablations.
        """
        catalog = catalog or default_catalog()
        links: dict[tuple[str, str], WanLink] = {}
        for a, b in catalog.pairs(ordered=True):
            base = (
                SAME_CONTINENT_CAPACITY
                if a.continent == b.continent
                else CROSS_CONTINENT_CAPACITY
            )
            base *= pair_bias(a.code, b.code) * capacity_scale
            if sim is not None and (
                variability_sigma > 0 or diurnal_amplitude > 0 or glitches
            ):
                rng = sim.rngs.get(f"wan/{a.code}->{b.code}")
                process = default_wan_process(
                    rng,
                    sigma=variability_sigma,
                    diurnal_amplitude=diurnal_amplitude,
                    glitches=glitches,
                    epoch=epoch,
                )
            else:
                process = ConstantProcess()
            links[(a.code, b.code)] = WanLink(
                a.code, b.code, base, catalog.rtt(a, b), process
            )
        return cls(catalog, links)

    def link(self, src: str, dst: str) -> WanLink:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no WAN link {src}->{dst}") from None

    def rtt(self, src: str, dst: str) -> float:
        return self.catalog.rtt(src, dst)

    def region_codes(self) -> list[str]:
        return self.catalog.codes()


class Flow:
    """One fluid transfer along a VM path.

    ``path`` is the ordered VM chain ``[source, relay..., destination]``;
    consecutive VMs in different regions traverse the corresponding WAN
    link. A flow completes when ``transferred >= size``.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        path: list[VM],
        size: float,
        streams: int = 1,
        intrusiveness: float = 1.0,
        on_complete: Callable[["Flow"], None] | None = None,
        label: str = "",
        rate_cap: float | None = None,
        transport: str = "tcp",
    ) -> None:
        if len(path) < 2:
            raise ValueError("a flow needs at least source and destination")
        if size <= 0:
            raise ValueError("flow size must be positive")
        if streams < 1:
            raise ValueError("streams must be >= 1")
        if not 0.0 < intrusiveness <= 1.0:
            raise ValueError("intrusiveness must be in (0, 1]")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError("rate_cap must be positive")
        if transport not in ("tcp", "udp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.flow_id = next(self._ids)
        self.path = list(path)
        self.size = float(size)
        self.streams = int(streams)
        self.intrusiveness = float(intrusiveness)
        self.on_complete = on_complete
        self.label = label
        self.rate_cap = rate_cap
        #: "tcp" flows are window/RTT-limited per hop; "udp" flows blast
        #: at whatever the NIC and link shares allow (delivery guarantees
        #: are then the sender's problem — see the UDP shipping backend).
        self.transport = transport
        self.transferred = 0.0
        self.rate = 0.0
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.cancelled = False
        #: Virtual time since which the flow's allocated rate has been
        #: (numerically) zero; None while the flow is moving. Stalls are
        #: the observable signature of a crashed VM or blackholed link.
        self.stalled_since: float | None = None
        self._stall_notified = False

    @property
    def src(self) -> VM:
        return self.path[0]

    @property
    def dst(self) -> VM:
        return self.path[-1]

    @property
    def remaining(self) -> float:
        return max(0.0, self.size - self.transferred)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def hops(self) -> list[tuple[VM, VM]]:
        return list(zip(self.path[:-1], self.path[1:]))

    def wan_hops(self) -> list[tuple[str, str]]:
        """Ordered region pairs of the inter-datacenter hops."""
        return [
            (a.region_code, b.region_code)
            for a, b in self.hops()
            if a.region_code != b.region_code
        ]

    def elapsed(self, now: float) -> float:
        if self.started_at is None:
            return 0.0
        end = self.completed_at if self.completed_at is not None else now
        return end - self.started_at

    def mean_throughput(self, now: float) -> float:
        el = self.elapsed(now)
        return self.transferred / el if el > 0 else 0.0

    def __repr__(self) -> str:
        route = "->".join(vm.region_code for vm in self.path)
        return f"Flow#{self.flow_id}({route}, {self.size / MB:.1f}MB)"


class FluidNetwork:
    """Event-driven fluid simulation of concurrent transfers.

    The network reacts to four kinds of events — flow start, flow cancel,
    flow completion, and the periodic capacity refresh — all of which
    funnel into :meth:`_recompute`: settle progress analytically since the
    previous event, re-read link capacities, re-run max-min fair sharing,
    and schedule the next projected completion.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tcp_window: float = 128 * KB,
        refresh_interval: float = 10.0,
        relay_efficiency: float = 0.95,
        stall_timeout: float = 30.0,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.tcp_window = tcp_window
        self.refresh_interval = refresh_interval
        #: Per-WAN-hop forwarding efficiency of store-and-forward relays
        #: (serialisation + copy overhead at the relay VM).
        self.relay_efficiency = relay_efficiency
        #: A flow whose allocated rate stays zero this long is *stalled*
        #: (crashed VM / blackholed link); ``on_stall`` fires once per flow.
        self.stall_timeout = stall_timeout
        self.on_stall: Callable[[Flow], None] | None = None
        self.flows: set[Flow] = set()
        self.bytes_completed = 0.0
        self.flows_completed = 0
        self._last_settle = sim.now
        self._completion_event: Event | None = None
        self._refresh_event: Event | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_flow(self, flow: Flow) -> Flow:
        if flow.started_at is not None:
            raise ValueError(f"{flow!r} already started")
        flow.started_at = self.sim.now
        self.flows.add(flow)
        self._recompute()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        if flow not in self.flows:
            return
        flow.cancelled = True
        self._settle()
        self.flows.discard(flow)
        flow.rate = 0.0
        self._recompute()

    def throughput(self, flow: Flow) -> float:
        """Instantaneous allocated rate of a flow, bytes/s."""
        return flow.rate if flow in self.flows else 0.0

    def notify_change(self) -> None:
        """Re-run the allocation after an external capacity change.

        Call after crashing/restoring a VM or taking a link down/up so
        flow rates react immediately instead of at the next refresh.
        """
        self._recompute()

    def stalled_flows(self, min_duration: float | None = None) -> list[Flow]:
        """Active flows whose rate has been zero for at least
        ``min_duration`` seconds (default: the network's stall timeout)."""
        timeout = self.stall_timeout if min_duration is None else min_duration
        now = self.sim.now
        return [
            f
            for f in self.flows
            if f.stalled_since is not None and now - f.stalled_since >= timeout
        ]

    def link_utilization(self, src: str, dst: str) -> float:
        """Sum of current rates of flows crossing a WAN link."""
        return sum(
            f.rate for f in self.flows if (src, dst) in f.wan_hops()
        )

    def flow_cap(self, flow: Flow) -> float:
        """Private ceiling of one flow (TCP windows, intrusiveness, NICs).

        The per-hop TCP ceiling is scaled by the link's current weather
        factor (clipped at 1): congestion inflates RTT and induces loss,
        so a single flow on a bad day delivers less than ``window/RTT``
        even when the aggregate link is far from saturated. This is what
        makes the cloud's variability *observable* to unsaturated probes.
        """
        cap = flow.rate_cap if flow.rate_cap is not None else float("inf")
        now = self.sim.now
        n_wan = 0
        for a, b in flow.hops():
            if a.region_code != b.region_code:
                n_wan += 1
                if flow.transport == "udp":
                    continue  # no congestion window: NICs and shares bind
                link = self.topology.link(a.region_code, b.region_code)
                weather = min(1.0, link.process.factor(now))
                cap = min(cap, flow.streams * self.tcp_window / link.rtt * weather)
        for vm in flow.path:
            cap = min(cap, flow.intrusiveness * vm.uplink_capacity)
        if n_wan > 1:
            cap *= self.relay_efficiency ** (n_wan - 1)
        return cap

    def isolated_rate(
        self,
        path: list[VM],
        streams: int = 1,
        intrusiveness: float = 1.0,
        rate_cap: float | None = None,
    ) -> float:
        """Rate a flow on ``path`` would get with no competing traffic.

        This is the quantity an iperf-style probe measures on an otherwise
        idle deployment, and the ground truth the estimator-accuracy
        experiments compare against.
        """
        probe = Flow(
            path, 1.0, streams=streams, intrusiveness=intrusiveness,
            rate_cap=rate_cap,
        )
        cap = self.flow_cap(probe)
        now = self.sim.now
        for a, b in probe.hops():
            if a.region_code != b.region_code:
                cap = min(
                    cap, self.topology.link(a.region_code, b.region_code).capacity(now)
                )
            else:
                cap = min(cap, self.topology.intra_capacity)
        return cap

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Advance every active flow by rate × elapsed since last event."""
        now = self.sim.now
        dt = now - self._last_settle
        if dt > 0:
            for f in self.flows:
                if f.rate > 0:
                    f.transferred = min(f.size, f.transferred + f.rate * dt)
        self._last_settle = now

    def _complete_finished(self) -> None:
        finished = [f for f in self.flows if f.remaining <= _EPS * f.size + _EPS]
        for f in finished:
            f.transferred = f.size
            f.completed_at = self.sim.now
            f.rate = 0.0
            self.flows.discard(f)
            self.bytes_completed += f.size
            self.flows_completed += 1
        # Callbacks run after bookkeeping so they can start follow-up flows.
        for f in finished:
            if f.on_complete is not None:
                f.on_complete(f)

    def _allocate(self) -> None:
        """Max-min fair allocation with per-flow caps (water-filling)."""
        now = self.sim.now
        flows = list(self.flows)
        for f in flows:
            f.rate = 0.0
        if not flows:
            return

        # Build resource table: id -> (remaining capacity, user flows).
        remaining: dict[object, float] = {}
        users: dict[object, list[Flow]] = {}

        def add_user(res: object, cap: float, flow: Flow) -> None:
            if res not in remaining:
                remaining[res] = cap
                users[res] = []
            users[res].append(flow)

        for f in flows:
            for vm in f.path[:-1]:
                add_user(("up", vm.vm_id), vm.uplink_capacity, f)
            for vm in f.path[1:]:
                add_user(("down", vm.vm_id), vm.downlink_capacity, f)
            for a, b in f.hops():
                if a.region_code == b.region_code:
                    add_user(
                        ("intra", a.region_code),
                        self.topology.intra_capacity,
                        f,
                    )
                else:
                    key = (a.region_code, b.region_code)
                    add_user(
                        ("wan", key),
                        self.topology.link(*key).capacity(now),
                        f,
                    )

        caps = {f: self.flow_cap(f) for f in flows}
        alloc = {f: 0.0 for f in flows}
        active: set[Flow] = set(flows)
        live_users = {res: set(fl) for res, fl in users.items()}

        while active:
            # Largest uniform increment every active flow can take.
            inc = min(caps[f] - alloc[f] for f in active)
            for res, flows_on in live_users.items():
                n = len(flows_on & active)
                if n:
                    inc = min(inc, remaining[res] / n)
            if inc < 0:
                inc = 0.0
            for f in active:
                alloc[f] += inc
            for res, flows_on in live_users.items():
                n = len(flows_on & active)
                if n:
                    remaining[res] -= inc * n
            # Freeze flows at their private cap.
            newly_frozen = {f for f in active if caps[f] - alloc[f] <= _EPS}
            # Freeze flows on saturated resources.
            for res, flows_on in live_users.items():
                if remaining[res] <= _EPS:
                    newly_frozen |= flows_on & active
            if not newly_frozen:
                # Numerical stall: freeze the flow closest to its cap.
                newly_frozen = {min(active, key=lambda f: caps[f] - alloc[f])}
            active -= newly_frozen

        for f in flows:
            f.rate = alloc[f]

    def _recompute(self) -> None:
        self._settle()
        self._complete_finished()
        self._allocate()
        self._track_stalls()
        self._schedule_next()

    def _track_stalls(self) -> None:
        """Update per-flow stall clocks and fire ``on_stall`` once each."""
        now = self.sim.now
        timed_out: list[Flow] = []
        for f in self.flows:
            if f.rate > _EPS:
                f.stalled_since = None
                f._stall_notified = False
            elif f.stalled_since is None:
                f.stalled_since = now
            elif (
                not f._stall_notified
                and now - f.stalled_since >= self.stall_timeout
            ):
                f._stall_notified = True
                timed_out.append(f)
        if timed_out and self.on_stall is not None:
            # Deliver out-of-band: handlers may cancel flows, which would
            # re-enter the allocation we are in the middle of.
            for f in timed_out:
                self.sim.schedule(0.0, self.on_stall, f)

    def _schedule_next(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if self._refresh_event is not None:
            self._refresh_event.cancel()
            self._refresh_event = None
        if not self.flows:
            return
        # Earliest projected completion at current rates.
        eta = min(
            (f.remaining / f.rate for f in self.flows if f.rate > 0),
            default=None,
        )
        horizon = self.refresh_interval
        if eta is not None and eta <= horizon:
            self._completion_event = self.sim.schedule(
                max(eta, 0.0), self._recompute, priority=-1
            )
        else:
            # Either all rates are zero (wait for capacity refresh) or the
            # next completion is beyond the refresh horizon.
            self._refresh_event = self.sim.schedule(
                horizon, self._recompute, priority=-1
            )
