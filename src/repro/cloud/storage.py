"""Cloud object (blob) storage model.

One :class:`BlobStore` exists per region. PUT/GET operations are modelled
as flows between the client VM and the store's service frontend, carrying
the three behaviours that make storage-relayed wide-area transfers slow
and expensive in practice:

* an HTTP request/response latency per operation (two RTTs + service
  processing time),
* a per-operation throughput ceiling (a single blob endpoint serves one
  client well below NIC line rate),
* transaction and capacity charges on the cost meter.

This substrate exists to power the *AzureBlobs staging* baseline: the only
wide-area data path the cloud offered out of the box, and the comparator
the paper-family results beat by up to 5×.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.network import FluidNetwork, Flow
from repro.cloud.pricing import CostMeter
from repro.cloud.vm import VM, VMSize
from repro.simulation.engine import Simulator
from repro.simulation.units import GB, MB, MBPS


@dataclass
class BlobObject:
    """A stored object."""

    name: str
    size: float
    created_at: float
    region_code: str


class BlobStore:
    """Object storage service frontend in one region."""

    #: NIC of the service frontend seen by one tenant (aggregate).
    _FRONTEND_SIZE = VMSize("BlobFrontend", 16, 64 * GB, 4000 * MBPS, 0.0)
    #: Ceiling a single PUT/GET achieves (2013-era single-blob limit).
    per_op_rate_cap: float

    def __init__(
        self,
        sim: Simulator,
        network: FluidNetwork,
        region_code: str,
        meter: CostMeter | None = None,
        per_op_rate_cap: float = 15 * MB,
        service_latency: float = 0.040,
    ) -> None:
        self.sim = sim
        self.network = network
        self.region_code = region_code
        self.meter = meter
        self.per_op_rate_cap = per_op_rate_cap
        self.service_latency = service_latency
        self.objects: dict[str, BlobObject] = {}
        self.frontend = VM(f"blob-{region_code}", region_code, self._FRONTEND_SIZE)
        self.puts = 0
        self.gets = 0

    # ------------------------------------------------------------------
    def _op_latency(self, client: VM) -> float:
        rtt = self.network.topology.rtt(client.region_code, self.region_code)
        return 2.0 * rtt + self.service_latency

    def put(
        self,
        client: VM,
        name: str,
        size: float,
        on_done: Callable[[BlobObject], None] | None = None,
    ) -> Flow:
        """Upload ``size`` bytes from ``client`` as object ``name``."""
        if size <= 0:
            raise ValueError("object size must be positive")
        self.puts += 1
        if self.meter is not None:
            self.meter.charge_transactions(1, context=f"blob:{self.region_code}")
            if client.region_code != self.region_code:
                # Cross-region PUT leaves the client's datacenter.
                self.meter.charge_egress(
                    size,
                    context=f"{client.region_code}->{self.region_code}",
                )

        def _complete(flow: Flow) -> None:
            def _visible() -> None:
                obj = BlobObject(name, size, self.sim.now, self.region_code)
                self.objects[name] = obj
                if on_done is not None:
                    on_done(obj)

            self.sim.schedule(self._op_latency(client), _visible)

        flow = Flow(
            [client, self.frontend],
            size,
            streams=1,
            on_complete=_complete,
            label=f"blob-put:{name}",
            rate_cap=self.per_op_rate_cap,
        )
        return self.network.start_flow(flow)

    def get(
        self,
        client: VM,
        name: str,
        on_done: Callable[[BlobObject], None] | None = None,
    ) -> Flow:
        """Download object ``name`` to ``client``."""
        try:
            obj = self.objects[name]
        except KeyError:
            raise KeyError(f"no object {name!r} in {self.region_code}") from None
        self.gets += 1
        if self.meter is not None:
            self.meter.charge_transactions(1, context=f"blob:{self.region_code}")
            if client.region_code != self.region_code:
                # Cross-region GET leaves the storage datacenter.
                self.meter.charge_egress(
                    obj.size,
                    context=f"{self.region_code}->{client.region_code}",
                )

        def _complete(flow: Flow) -> None:
            def _delivered() -> None:
                if on_done is not None:
                    on_done(obj)

            self.sim.schedule(self._op_latency(client), _delivered)

        flow = Flow(
            [self.frontend, client],
            obj.size,
            streams=1,
            on_complete=_complete,
            label=f"blob-get:{name}",
            rate_cap=self.per_op_rate_cap,
        )
        return self.network.start_flow(flow)

    def exists(self, name: str) -> bool:
        return name in self.objects

    def delete(self, name: str) -> None:
        obj = self.objects.pop(name, None)
        if obj is not None and self.meter is not None:
            self.meter.charge_transactions(1)

    def charge_capacity(self, seconds: float) -> None:
        """Accrue capacity-time for everything currently stored."""
        if self.meter is None:
            return
        total = sum(o.size for o in self.objects.values())
        if total > 0:
            self.meter.charge_storage_capacity(
                total, seconds, context=f"blob:{self.region_code}"
            )
