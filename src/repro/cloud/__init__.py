"""Simulated multi-datacenter cloud substrate.

This package stands in for the Azure testbed of the original evaluation:
six EU/US regions, a VM catalog with per-size NIC caps and hourly prices,
wide-area links whose delivered capacity drifts under multi-tenancy
(AR(1)-lognormal noise × diurnal cycle × rare glitches), a fluid max-min
fair flow model that shares links and NICs among concurrent transfers, a
blob-storage service used by the staging baseline, and a cost meter that
accrues VM lease time and egress charges exactly as the provider would
bill them.
"""

from repro.cloud.deployment import CloudEnvironment, Deployment
from repro.cloud.network import FluidNetwork, Flow, Topology, WanLink
from repro.cloud.pricing import CostMeter, CostReport, PriceBook
from repro.cloud.regions import (
    DEFAULT_REGIONS,
    Region,
    RegionCatalog,
    default_catalog,
)
from repro.cloud.storage import BlobObject, BlobStore
from repro.cloud.variability import (
    Ar1LognormalProcess,
    CapacityProcess,
    CompositeProcess,
    ConstantProcess,
    DiurnalProcess,
    GlitchProcess,
)
from repro.cloud.vm import VM, VMSize, VM_SIZES

__all__ = [
    "CloudEnvironment",
    "Deployment",
    "FluidNetwork",
    "Flow",
    "Topology",
    "WanLink",
    "CostMeter",
    "CostReport",
    "PriceBook",
    "Region",
    "RegionCatalog",
    "DEFAULT_REGIONS",
    "default_catalog",
    "BlobStore",
    "BlobObject",
    "VM",
    "VMSize",
    "VM_SIZES",
    "Ar1LognormalProcess",
    "CapacityProcess",
    "CompositeProcess",
    "ConstantProcess",
    "DiurnalProcess",
    "GlitchProcess",
]
