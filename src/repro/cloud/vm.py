"""Virtual-machine catalog and per-VM state.

Sizes mirror the 2013 Azure instance families used in the original
evaluation: Small (1 core, 100 Mbps), Medium (2 cores, 200 Mbps),
Large (4 cores, 400 Mbps) and ExtraLarge (8 cores, 800 Mbps). NIC caps are
the binding resource for single-node wide-area transfers, which is exactly
why the decision engine recruits helper VMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.units import GB, MBPS


@dataclass(frozen=True)
class VMSize:
    """An instance type: compute, memory, network and price."""

    name: str
    cores: int
    memory_bytes: float
    #: NIC capacity in bytes/second (applies to uplink and downlink).
    nic_bytes_per_s: float
    #: On-demand price in USD per hour.
    usd_per_hour: float

    @property
    def nic_mbps(self) -> float:
        return self.nic_bytes_per_s / MBPS


VM_SIZES: dict[str, VMSize] = {
    "Small": VMSize("Small", 1, 1.75 * GB, 100 * MBPS, 0.06),
    "Medium": VMSize("Medium", 2, 3.5 * GB, 200 * MBPS, 0.12),
    "Large": VMSize("Large", 4, 7 * GB, 400 * MBPS, 0.24),
    "ExtraLarge": VMSize("ExtraLarge", 8, 14 * GB, 800 * MBPS, 0.48),
}


class VM:
    """A leased virtual machine inside one datacenter.

    VMs carry a *health factor* in ``(0, 1]`` that scales their effective
    NIC and CPU capacity. Experiments inject degradations (multi-tenant
    noisy neighbours, failing hosts) by lowering it; the environment-aware
    scheduler reacts, the naive baselines do not.

    Distinct from degradation, a VM can *fail outright* (host crash,
    instance reboot): a failed VM sends no heartbeats, answers no health
    probes, and moves zero bytes until :meth:`restore` brings it back.
    """

    __slots__ = (
        "vm_id", "region_code", "size", "health", "cpu_load", "tags", "failed"
    )

    def __init__(self, vm_id: str, region_code: str, size: VMSize) -> None:
        self.vm_id = vm_id
        self.region_code = region_code
        self.size = size
        self.health: float = 1.0
        #: Fraction of CPU currently consumed by application work [0, 1].
        self.cpu_load: float = 0.0
        self.tags: set[str] = set()
        #: Hard-failure flag: a crashed VM has zero capacity everywhere.
        self.failed: bool = False

    @property
    def alive(self) -> bool:
        return not self.failed

    @property
    def uplink_capacity(self) -> float:
        """Effective NIC uplink in bytes/s, after health degradation."""
        if self.failed:
            return 0.0
        return self.size.nic_bytes_per_s * self.health

    @property
    def downlink_capacity(self) -> float:
        """Effective NIC downlink in bytes/s, after health degradation."""
        if self.failed:
            return 0.0
        return self.size.nic_bytes_per_s * self.health

    def degrade(self, health: float) -> None:
        """Set the health factor (1.0 = nominal, 0.2 = badly degraded)."""
        if not 0.0 < health <= 1.0:
            raise ValueError(f"health must be in (0, 1], got {health}")
        self.health = health

    def fail(self) -> None:
        """Hard-crash the VM: no heartbeats, no capacity, no probes."""
        self.failed = True

    def restore(self) -> None:
        """Bring the VM back at nominal health (covers crash and degrade)."""
        self.failed = False
        self.health = 1.0

    def __repr__(self) -> str:
        return f"VM({self.vm_id}@{self.region_code}, {self.size.name})"

    def __hash__(self) -> int:
        return hash(self.vm_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VM) and other.vm_id == self.vm_id
