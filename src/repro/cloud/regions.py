"""Datacenter regions and the geography-derived latency model.

The default catalog mirrors the six Azure regions of the original
deployment: North/West Europe and North/South/East/West US. Round-trip
times are derived from great-circle distance at the speed of light in fibre
plus a fixed routing/stack overhead — this lands within a few milliseconds
of published Azure inter-region RTTs and, more importantly, preserves the
*ordering* (EU↔EU < US↔US < EU↔US) that the path-selection algorithms
exploit.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A cloud datacenter location."""

    name: str
    #: Short display code, e.g. "NEU".
    code: str
    latitude: float
    longitude: float
    continent: str

    def __str__(self) -> str:
        return self.code


#: The six regions of the original Azure deployment.
DEFAULT_REGIONS: tuple[Region, ...] = (
    Region("North Europe", "NEU", 53.35, -6.26, "EU"),
    Region("West Europe", "WEU", 52.37, 4.90, "EU"),
    Region("North Central US", "NUS", 41.88, -87.63, "US"),
    Region("South Central US", "SUS", 29.42, -98.49, "US"),
    Region("East US", "EUS", 37.43, -78.17, "US"),
    Region("West US", "WUS", 37.78, -122.42, "US"),
)

_EARTH_RADIUS_KM = 6371.0
#: Effective signal speed in optical fibre, km/s (≈ 2/3 c).
_FIBRE_KM_PER_S = 200_000.0
#: Fixed per-path overhead: routing hops, virtualisation, TCP stack (s).
_RTT_OVERHEAD_S = 0.010
#: Real WAN paths are longer than great circles (cable routes, peering).
_PATH_STRETCH = 1.4


def great_circle_km(a: Region, b: Region) -> float:
    """Great-circle distance between two regions in kilometres."""
    la1, lo1 = math.radians(a.latitude), math.radians(a.longitude)
    la2, lo2 = math.radians(b.latitude), math.radians(b.longitude)
    h = (
        math.sin((la2 - la1) / 2) ** 2
        + math.cos(la1) * math.cos(la2) * math.sin((lo2 - lo1) / 2) ** 2
    )
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


class RegionCatalog:
    """An indexed set of regions with pairwise baseline RTTs."""

    def __init__(self, regions: tuple[Region, ...] = DEFAULT_REGIONS) -> None:
        if len({r.code for r in regions}) != len(regions):
            raise ValueError("duplicate region codes")
        self.regions = tuple(regions)
        self._by_code = {r.code: r for r in regions}

    def __iter__(self):
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def __contains__(self, code: str) -> bool:
        return code in self._by_code

    def get(self, code: str) -> Region:
        try:
            return self._by_code[code]
        except KeyError:
            raise KeyError(
                f"unknown region {code!r}; known: {sorted(self._by_code)}"
            ) from None

    def codes(self) -> list[str]:
        return [r.code for r in self.regions]

    def rtt(self, a: str | Region, b: str | Region) -> float:
        """Baseline round-trip time between two regions, in seconds.

        Intra-region RTT is a fixed small constant (one switch fabric).
        """
        ra = a if isinstance(a, Region) else self.get(a)
        rb = b if isinstance(b, Region) else self.get(b)
        if ra == rb:
            return 0.001
        dist = great_circle_km(ra, rb) * _PATH_STRETCH
        return 2.0 * dist / _FIBRE_KM_PER_S + _RTT_OVERHEAD_S

    def pairs(self, ordered: bool = True):
        """Yield all distinct region pairs (ordered by default)."""
        for a in self.regions:
            for b in self.regions:
                if a == b:
                    continue
                if not ordered and a.code > b.code:
                    continue
                yield a, b


def pair_bias(src: str, dst: str, spread: float = 0.2) -> float:
    """Deterministic per-pair capacity bias in ``[1-spread, 1+spread]``.

    Real inter-DC links are not symmetric nor uniform within a distance
    class; this stable hash-derived factor makes the baseline throughput
    map heterogeneous (and asymmetric) without additional configuration.
    """
    h = zlib.crc32(f"{src}->{dst}".encode()) / 0xFFFFFFFF
    return 1.0 + spread * (2.0 * h - 1.0)


def default_catalog() -> RegionCatalog:
    """The standard six-region EU/US catalog."""
    return RegionCatalog(DEFAULT_REGIONS)
