"""Workloads: synthetic sweeps and application-shaped scenarios."""

from repro.workloads.abrain import ABrainConfig, ABrainWorkload
from repro.workloads.clickstream import clickstream_job
from repro.workloads.mixes import WORKLOAD_SHAPES, WorkloadShape
from repro.workloads.sensors import sensor_fusion_job
from repro.workloads.synthetic import (
    fresh_engine,
    size_sweep,
    standard_deployment,
)

__all__ = [
    "ABrainConfig",
    "ABrainWorkload",
    "clickstream_job",
    "sensor_fusion_job",
    "WORKLOAD_SHAPES",
    "WorkloadShape",
    "fresh_engine",
    "size_sweep",
    "standard_deployment",
]
