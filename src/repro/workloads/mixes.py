"""Workload shapes the scenario generator mixes per site.

The hand-built workloads (clickstream, sensor fusion, A-Brain) each
model one application. Generated soak scenarios run *heterogeneous
mixes* — several shapes concurrently at one site, each with its own
record size, key universe, and skew — because that is what a shared
geo-analytics deployment actually ingests. A :class:`WorkloadShape` is
the static part of a shape; the generator samples the dynamic part
(rates, diurnal phase, flash crowds, drift) per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadShape:
    """Static properties of one generated workload kind."""

    name: str
    #: Nominal record payload (bytes); drift wobbles around this.
    record_bytes: float
    #: Multiplier on the site's sampled base rate (clicks dominate
    #: volume; A-Brain sends few large records).
    rate_scale: float
    #: Key namespace prefix (keys become ``{prefix}{i:03d}``).
    key_prefix: str
    #: Zipf-like skew exponent for key popularity (0 = uniform).
    key_skew: float

    def keys(self, n: int) -> list[str]:
        return [f"{self.key_prefix}{i:03d}" for i in range(n)]

    def key_weights(self, n: int) -> list[float] | None:
        """Unnormalised zipf weights ``1/(rank+1)^skew`` (None if flat)."""
        if self.key_skew <= 0.0:
            return None
        return [1.0 / (i + 1) ** self.key_skew for i in range(n)]


#: The mix universe: clickstream (small, bursty, skewed keys), sensor
#: telemetry (tiny, smooth, uniform), and A-Brain image partials (large,
#: sparse, mildly skewed) — the three applications the repo models.
WORKLOAD_SHAPES = (
    WorkloadShape(
        name="clicks",
        record_bytes=400.0,
        rate_scale=1.0,
        key_prefix="/page/",
        key_skew=1.1,
    ),
    WorkloadShape(
        name="sensors",
        record_bytes=120.0,
        rate_scale=0.6,
        key_prefix="sensor/",
        key_skew=0.0,
    ),
    WorkloadShape(
        name="abrain",
        record_bytes=900.0,
        rate_scale=0.25,
        key_prefix="volume/",
        key_skew=0.5,
    ),
)


__all__ = ["WORKLOAD_SHAPES", "WorkloadShape"]
