"""Geo-distributed environmental sensor fusion.

The motivating streaming scenario: sensor fields report through nearby
datacenters; the analysis wants near-real-time global statistics (mean,
extremes, variance per window) across all fields. Site-local aggregation
reduces thousands of raw readings per window to a handful of mergeable
partials before the WAN.
"""

from __future__ import annotations

from repro.simulation.units import KB
from repro.streaming.batching import HybridBatchPolicy
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.events import Record
from repro.streaming.operators import MapOperator, builtin_aggregate
from repro.streaming.sources import SensorGridSource
from repro.streaming.windows import TumblingWindows


def _rekey_to_region(region: str) -> MapOperator:
    """Fold every sensor of a site onto one regional key.

    This is the data-reduction lever: thousands of per-sensor readings per
    window collapse into a single mergeable partial per site."""

    def rekey(r: Record) -> Record:
        return Record(r.event_time, region, r.value, r.origin, r.size_bytes)

    # Columnar fast path: rekeying a batch is a zero-copy key-table swap.
    return MapOperator(rekey, batch_fn=lambda b: b.with_key(region))


def sensor_fusion_job(
    site_regions: list[str] | None = None,
    aggregation_region: str = "NUS",
    sensors_per_site: int = 2000,
    report_interval: float = 10.0,
    window: float = 30.0,
    aggregate: str = "mean",
    ship_raw_records: bool = False,
) -> StreamJob:
    """Build the standard sensor-fusion streaming job."""
    regions = site_regions or ["NEU", "WEU", "EUS"]
    sites = [
        SiteSpec(
            region=region,
            sources=[
                SensorGridSource(
                    name=f"grid-{region.lower()}",
                    n_sensors=sensors_per_site,
                    report_interval=report_interval,
                )
            ],
            # All sensors of a site fold into one regional key so global
            # results are per-region per-window statistics.
            operators=[_rekey_to_region(region)],
        )
        for region in regions
    ]
    return StreamJob(
        name="sensor-fusion",
        sites=sites,
        aggregation_region=aggregation_region,
        windows=TumblingWindows(window),
        aggregate=builtin_aggregate(aggregate),
        batch_policy_factory=lambda: HybridBatchPolicy(64 * KB, 2.0),
        ship_raw_records=ship_raw_records,
    )
