"""The A-Brain-shaped application workload.

A-Brain joins genetic and neuro-imaging data: univariate association
tests between ~10⁵ SNPs and ~10⁵ brain voxels, embarrassingly parallel
over SNP blocks, too large for the quota of one datacenter. The deployed
shape: a MapReduce stage per datacenter over its local subjects, per-site
reducers emitting partial correlation files, and a Meta-Reducer in one
site merging them into the global statistic.

For the reproduction the map stage is *computed* (synthetic genotype and
voxel matrices, real correlation math over numpy) but deliberately small,
because the evaluated quantity is the wide-area shipping of the partial
files — 1000 files per site whose size is set by the input configuration
(36 KB for the small runs up to 40 MB for the 120 GB campaign).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import SageEngine
from repro.simulation.units import KB, MB
from repro.streaming.metareduce import (
    MapReduceSiteSpec,
    MetaReduceReport,
    MetaReducer,
)


@dataclass(frozen=True)
class ABrainConfig:
    """One input-size configuration of the application."""

    name: str
    #: Partial-result files produced per map site.
    files_per_site: int = 1000
    #: Size of each partial file in bytes.
    file_size: float = 36 * KB
    #: Map sites (the original runs on three datacenters).
    map_regions: tuple[str, ...] = ("NEU", "WEU", "NUS")
    #: Where the Meta-Reducer aggregates.
    reducer_region: str = "NUS"
    #: Site-local compute before partials start flowing (seconds).
    map_compute_time: float = 30.0

    @property
    def total_bytes(self) -> float:
        return self.files_per_site * self.file_size * len(self.map_regions)


#: The three input configurations of the shipping experiment (E8):
#: ~108 MB, ~3 GB and ~120 GB total.
ABRAIN_CONFIGS: tuple[ABrainConfig, ...] = (
    ABrainConfig("small-108MB", file_size=36 * KB),
    ABrainConfig("medium-3GB", file_size=1 * MB),
    ABrainConfig("large-120GB", file_size=40 * MB),
)


class ABrainWorkload:
    """Generate per-site partials and run the shipping phase."""

    def __init__(self, config: ABrainConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed

    # ------------------------------------------------------------------
    # The scientific kernel (used by the example and unit tests).
    # ------------------------------------------------------------------
    @staticmethod
    def correlation_block(
        genotypes: np.ndarray, voxels: np.ndarray
    ) -> np.ndarray:
        """Univariate SNP × voxel association: Pearson correlations.

        ``genotypes``: (subjects × snps), ``voxels``: (subjects × voxels).
        Returns the (snps × voxels) correlation matrix — one map task's
        partial result. Vectorised: standardise both matrices and take the
        cross-product.
        """
        if genotypes.shape[0] != voxels.shape[0]:
            raise ValueError("genotypes and voxels must share the subject axis")
        n = genotypes.shape[0]
        if n < 3:
            raise ValueError("need at least 3 subjects")
        g = genotypes - genotypes.mean(axis=0)
        v = voxels - voxels.mean(axis=0)
        g_std = g.std(axis=0)
        v_std = v.std(axis=0)
        g_std[g_std == 0] = 1.0
        v_std[v_std == 0] = 1.0
        return (g / g_std).T @ (v / v_std) / n

    def synth_partial(
        self, rng: np.random.Generator, snps: int = 32, voxels: int = 32,
        subjects: int = 64,
    ) -> np.ndarray:
        """One synthetic map task: random cohort → correlation block."""
        genotypes = rng.integers(0, 3, size=(subjects, snps)).astype(float)
        signal = genotypes[:, :1] * 0.3
        vox = rng.normal(size=(subjects, voxels)) + signal
        return self.correlation_block(genotypes, vox)

    # ------------------------------------------------------------------
    # The shipping phase (what E8 measures).
    # ------------------------------------------------------------------
    def site_specs(self) -> list[MapReduceSiteSpec]:
        cfg = self.config
        rng = np.random.default_rng(self.seed)
        specs = []
        for region in cfg.map_regions:
            # Mild size jitter: reduced partials differ a little per block.
            sizes = cfg.file_size * rng.uniform(0.9, 1.1, cfg.files_per_site)
            specs.append(
                MapReduceSiteSpec(
                    region=region,
                    partial_files=[float(s) for s in sizes],
                    compute_time=cfg.map_compute_time,
                )
            )
        return specs

    def run_shipping(
        self,
        engine: SageEngine,
        shipping_factory,
        files_in_flight_per_site: int = 4,
    ) -> MetaReduceReport:
        reducer = MetaReducer(
            engine,
            self.site_specs(),
            self.config.reducer_region,
            shipping_factory,
            files_in_flight_per_site=files_in_flight_per_site,
        )
        return reducer.run()
