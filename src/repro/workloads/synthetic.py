"""Synthetic benchmark scaffolding.

The experiments repeatedly need a fresh, warmed-up engine over a known
deployment, with identical environment randomness across the strategies
being compared. ``fresh_engine`` packages that: same seed → same link
weather, different strategies run in *separate* simulations so they never
perturb each other.
"""

from __future__ import annotations

from repro.cloud.deployment import CloudEnvironment
from repro.core.decision import DecisionConfig
from repro.core.engine import SageEngine
from repro.monitor.agent import MonitorConfig
from repro.simulation.units import GB, MB, MINUTE

#: The default experiment deployment: a slice of the 120-node global
#: system, spread over all six EU/US sites.
STANDARD_SPEC: dict[str, int] = {
    "NEU": 8,
    "WEU": 6,
    "NUS": 8,
    "SUS": 6,
    "EUS": 6,
    "WUS": 6,
}


def standard_deployment() -> dict[str, int]:
    return dict(STANDARD_SPEC)


def fresh_engine(
    seed: int,
    spec: dict[str, int] | None = None,
    vm_size: str = "Small",
    learning_phase: float = 5 * MINUTE,
    variability_sigma: float = 0.20,
    glitches: bool = True,
    monitor_config: MonitorConfig | None = None,
    decision_config: DecisionConfig | None = None,
    observer=None,
) -> SageEngine:
    """A new simulated cloud + warmed-up SAGE engine."""
    env = CloudEnvironment(
        seed=seed,
        variability_sigma=variability_sigma,
        glitches=glitches,
    )
    engine = SageEngine(
        env,
        deployment_spec=spec or standard_deployment(),
        vm_size=vm_size,
        monitor_config=monitor_config,
        decision_config=decision_config,
        observer=observer,
    )
    engine.start(learning_phase=learning_phase)
    return engine


def size_sweep(small: bool = False) -> list[float]:
    """Payload sizes used by the size-sweep experiments."""
    if small:
        return [64 * MB, 256 * MB, 1 * GB]
    return [64 * MB, 256 * MB, 1 * GB, 4 * GB, 8 * GB]
