"""Global clickstream analytics.

A service with users in Europe and the US ingests click events at the
nearest datacenter and wants global per-page counts over short windows —
the bursty, key-skewed counterpart to the smooth sensor workload. Bursts
(campaigns, incidents) are modelled with Markov-modulated Poisson sources.
"""

from __future__ import annotations

from repro.simulation.units import KB
from repro.streaming.batching import HybridBatchPolicy
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import FilterOperator, builtin_aggregate
from repro.streaming.sources import MmppSource
from repro.streaming.windows import TumblingWindows


def zipf_pages(n_pages: int = 50) -> list[str]:
    """Page-key universe (skew comes from key-draw, uniform here across
    a truncated universe — heavy keys emerge from per-site burst states)."""
    return [f"/page/{i:03d}" for i in range(n_pages)]


def clickstream_job(
    site_regions: list[str] | None = None,
    aggregation_region: str = "WUS",
    base_rate: float = 300.0,
    burst_rate: float = 3000.0,
    window: float = 10.0,
    n_pages: int = 50,
    bot_filter: bool = True,
    batch_policy_factory=None,
    ship_raw_records: bool = False,
) -> StreamJob:
    """Build the clickstream counting job."""
    regions = site_regions or ["NEU", "EUS", "SUS"]
    pages = zipf_pages(n_pages)
    operators = []
    if bot_filter:
        # Crude bot heuristic: drop obviously automated bursts flagged by
        # the edge (modelled as the value being negative).
        operators.append(
            FilterOperator(
                lambda r: r.value >= -1.0,
                batch_predicate=lambda b: b.value >= -1.0,
            )
        )
    sites = [
        SiteSpec(
            region=region,
            sources=[
                MmppSource(
                    name=f"clicks-{region.lower()}",
                    base_rate=base_rate,
                    burst_rate=burst_rate,
                    keys=pages,
                )
            ],
            operators=list(operators),
        )
        for region in regions
    ]
    return StreamJob(
        name="clickstream",
        sites=sites,
        aggregation_region=aggregation_region,
        windows=TumblingWindows(window),
        aggregate=builtin_aggregate("count"),
        batch_policy_factory=batch_policy_factory
        or (lambda: HybridBatchPolicy(128 * KB, 1.5)),
        ship_raw_records=ship_raw_records,
    )
