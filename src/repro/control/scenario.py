"""The resident-service scenario behind ``sage serve``.

:func:`run_serve` builds a long-lived geo-streaming session with the
control plane armed — leader lease, warm standbys in dedicated regions,
checkpoint shipping — then scripts the service lifecycle on top of it:

1. **unplanned leader kills** on a fixed cadence (``leader.kill``
   adversities through the fault plan), each of which must resolve by
   standby promotion within the configured MTTR bound;
2. a **live reconfiguration** mid-run — backlog bound doubled and the
   latency SLO tightened through :meth:`ControlPlane.apply`, stamping a
   new config version into every subsequent window;
3. a modest **2× ingest burst** in the middle third, so failovers land
   under load, not in a quiet pipe.

The run drains to quiescence and the service contract is checked
exactly: every kill produced exactly one failover, every failover's
measured MTTR is within bound, the split-brain audit never fired, no
window was emitted twice across any epoch change, and the loss identity
(now including admission-rejected records) is exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cloud.deployment import CloudEnvironment
from repro.config import ServeConfig, resolve_config
from repro.core.engine import SageEngine
from repro.control.plane import ControlPlane
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.flow.policy import FlowConfig
from repro.obs.audit import SLOAuditor
from repro.report import ScenarioReport, metrics_snapshot
from repro.simulation.units import format_bytes
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime, LatencyStats
from repro.streaming.shipping import ReliableShipping, SageShipping
from repro.streaming.sources import BurstSource
from repro.streaming.windows import TumblingWindows


@dataclass
class ServeResult:
    """Everything the service report needs, in plain numbers."""

    seed: int
    policy: str
    duration: float
    kills: int
    failovers: int
    #: Per-failover records (:meth:`FailoverEvent.to_dict` form).
    failover_log: list[dict] = field(default_factory=list)
    mttr_max: float = 0.0
    mttr_mean: float = 0.0
    mttr_bound: float = 0.0
    #: Final lease epoch (1 + completed failovers when all kills resolve).
    epochs: int = 0
    config_versions: int = 0
    config_log: list[dict] = field(default_factory=list)
    standby_syncs: int = 0
    respawns: int = 0
    ingested: int = 0
    counted: int = 0
    results: int = 0
    #: Window-result counts keyed by leadership epoch (string keys so
    #: the canonical-JSON digest round-trips).
    results_by_epoch: dict[str, int] = field(default_factory=dict)
    admission_rejected: int = 0
    shed: int = 0
    late_dropped: int = 0
    late_partial_records: int = 0
    abandoned_records: int = 0
    duplicates_dropped: int = 0
    retries: int = 0
    retry_budget_exhausted: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    aggregator_crashes: int = 0
    batches_dropped_while_down: int = 0
    drained: bool = False
    latency: LatencyStats = field(default_factory=LatencyStats.empty)
    wan_bytes: float = 0.0
    audit: dict = field(default_factory=dict)
    cost: dict = field(default_factory=dict)
    slo_violations: int = 0
    strict_slo: bool = True

    @property
    def lost(self) -> int:
        return max(0, self.ingested - self.counted)

    @property
    def explained(self) -> int:
        """Loss the shed/late/abandoned/admission counters explain."""
        return (
            self.shed
            + self.late_dropped
            + self.late_partial_records
            + self.abandoned_records
            + self.admission_rejected
        )

    @property
    def accounted(self) -> bool:
        return self.lost == self.explained

    @property
    def mttr_ok(self) -> bool:
        return self.mttr_max <= self.mttr_bound + 1e-9

    @property
    def clean(self) -> bool:
        """The service contract held across every failover."""
        ok = (
            self.failovers == self.kills
            and self.accounted
            and self.drained
            and self.mttr_ok
        )
        if self.strict_slo:
            ok = ok and self.slo_violations == 0
        return ok

    def describe(self) -> str:
        by_epoch = ", ".join(
            f"e{epoch}={count}"
            for epoch, count in sorted(
                self.results_by_epoch.items(), key=lambda kv: int(kv[0])
            )
        )
        lines = [
            f"serve run: policy={self.policy} seed={self.seed} "
            f"duration={self.duration:.0f}s",
            "",
            f"leader kills: {self.kills}, failovers completed: "
            f"{self.failovers}, final epoch {self.epochs}",
            f"MTTR: max {self.mttr_max:.1f}s, mean {self.mttr_mean:.1f}s "
            f"(bound {self.mttr_bound:.1f}s"
            + (")" if self.mttr_ok else ")  ** BOUND EXCEEDED **"),
            f"standby syncs: {self.standby_syncs}, respawns: {self.respawns}",
            f"config versions applied: {self.config_versions}",
            f"admission rejected at ingress: {self.admission_rejected}",
            f"shipping: {self.retries} retries, "
            f"{self.retry_budget_exhausted} budget-deferred",
            f"checkpoints: {self.checkpoints} "
            f"({format_bytes(float(self.checkpoint_bytes))} latest), "
            f"aggregator crashes {self.aggregator_crashes}, "
            f"{self.batches_dropped_while_down} deliveries while down",
            f"aggregator dedup: {self.duplicates_dropped} duplicate batches",
            "",
            f"records ingested: {self.ingested}",
            f"records counted:  {self.counted} in {self.results} windows "
            f"({by_epoch})",
            f"lost {self.lost}, explained {self.explained} "
            + ("(accounted)" if self.accounted else "** UNACCOUNTED **"),
            self.latency.describe(),
            f"wide-area bytes: {format_bytes(self.wan_bytes)}",
            f"auditor: {self.audit.get('checks', 0)} checks, "
            f"{self.slo_violations} violations"
            + (" (strict)" if self.strict_slo else ""),
            "",
            "verdict: "
            + (
                "CLEAN — service contract held across failovers"
                if self.clean
                else "SERVICE CONTRACT VIOLATED"
            ),
        ]
        return "\n".join(lines)


def _kill_times(cfg: ServeConfig) -> list[float]:
    """Scheduled leader-kill instants (relative to runtime start)."""
    if cfg.kill_leader_every <= 0:
        return []
    times = []
    t = cfg.kill_leader_every
    while t <= 0.75 * cfg.duration:
        times.append(t)
        if cfg.max_kills and len(times) >= cfg.max_kills:
            break
        t += cfg.kill_leader_every
    return times


def run_serve(
    config: ServeConfig | str | dict | None = None,
    *,
    observer=None,
) -> ScenarioReport:
    """Run the resident-service scenario to completion (virtual time).

    Returns a :class:`~repro.report.ScenarioReport` whose ``details``
    is the :class:`ServeResult` payload (attribute access falls
    through). Same seed, same numbers — the determinism tests and the
    CI chaos job rely on it.
    """
    cfg = resolve_config(
        ServeConfig, config, {},
        "run_serve(ServeConfig(...))",
        "run_serve(ServeConfig(...))",
    )
    wall0 = time.perf_counter()
    seed = cfg.seed
    duration = cfg.duration
    site_regions = cfg.site_regions

    flow = FlowConfig(
        policy=cfg.policy,
        max_backlog=cfg.max_backlog,
        max_inflight=8,
        max_pending=None if cfg.policy == "block" else 64,
        breaker_threshold=3,
        breaker_reset=20.0,
    )
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    spec = {region: 2 for region in site_regions}
    spec[cfg.aggregation_region] = 4
    for region in cfg.standby_regions:
        spec[region] = 2
    engine = SageEngine(env, deployment_spec=spec, observer=observer)
    engine.start(learning_phase=120.0)

    job = StreamJob(
        name="serve",
        sites=[
            SiteSpec(
                region,
                [
                    BurstSource(
                        f"src-{region}",
                        base_rate=cfg.base_rate,
                        burst_rate=cfg.base_rate * 2.0,
                        burst_start=duration / 3.0,
                        burst_end=2.0 * duration / 3.0,
                        keys=["k1", "k2"],
                    )
                ],
            )
            for region in site_regions
        ],
        aggregation_region=cfg.aggregation_region,
        windows=TumblingWindows(10.0),
        finalize_grace=120.0,
        aggregate=builtin_aggregate("count"),
        flow=flow,
    )
    factory = ReliableShipping.factory(
        SageShipping.factory(n_nodes=2, plan_ttl=30.0),
        delivery_timeout=cfg.delivery_timeout,
        max_retries=cfg.max_retries,
        max_inflight=flow.max_inflight,
        max_pending=flow.max_pending,
        breaker=True,
        breaker_threshold=flow.breaker_threshold,
        breaker_reset=flow.breaker_reset,
        retry_budget=cfg.retry_budget or None,
    )
    runtime = GeoStreamRuntime(
        engine, job, factory, per_vm_records_per_s=cfg.base_rate
    )
    store = runtime.enable_checkpointing(
        interval=cfg.checkpoint_interval
    ).store

    plane = ControlPlane(engine, runtime, cfg.control())
    plane.add_leader()
    for region in cfg.standby_regions:
        plane.add_standby(region)
    auditor = SLOAuditor(
        engine,
        runtime,
        max_latency_s=cfg.slo_max_latency_s,
        max_usd_per_1k=cfg.slo_max_usd_per_1k,
        control=plane,
    ).start()
    plane.auditor = auditor
    plane.start()

    kill_times = _kill_times(cfg)
    recovery = plane.config.mttr_bound + plane.config.respawn_delay
    plan = FaultPlan()
    for t in kill_times:
        plan.kill_leader(t, recovery=recovery)
    injector = FaultInjector(engine, plan) if len(plan) else None

    t0 = engine.sim.now
    if injector is not None:
        injector.arm()  # plan times are relative to arming
    if cfg.reconfigure_at > 0:
        engine.sim.schedule(
            cfg.reconfigure_at,
            plane.apply,
            {
                "max_backlog": cfg.max_backlog * 2,
                "slo_max_latency_s": cfg.slo_max_latency_s,
            },
        )
    runtime.start()
    engine.run_until(t0 + duration)
    for site in runtime.sites.values():
        site.stop_sources(drain=True)
    # Outlive the fault plan (last kill + full recovery) before draining.
    horizon = max(t0 + duration, t0 + plan.horizon())
    if engine.sim.now < horizon:
        engine.run_until(horizon)
    drain_cap = engine.sim.now + 1800.0
    while runtime.in_pipe() and engine.sim.now < drain_cap:
        engine.run_until(engine.sim.now + 10.0)
    drained = runtime.in_pipe() == 0
    engine.run_until(engine.sim.now + job.watermark_lag + 30.0)
    runtime.stop()
    plane.stop()
    engine.run_until(engine.sim.now + job.finalize_grace + 60.0)
    engine.env.finalize()

    audit_report = auditor.finish()
    cost = engine.ledger.summary(
        windows=len(runtime.results) or None,
        records=runtime.records_ingested() or None,
    )
    sites = list(runtime.sites.values())
    backends = [site.shipping for site in sites]
    agg = runtime.aggregator
    mttr = plane.mttr_stats()
    results_by_epoch: dict[str, int] = {}
    for r in runtime.results:
        key = str(r.epoch)
        results_by_epoch[key] = results_by_epoch.get(key, 0) + 1
    result = ServeResult(
        seed=seed,
        policy=cfg.policy,
        duration=duration,
        kills=plane.kills,
        failovers=len(plane.failovers),
        failover_log=[f.to_dict() for f in plane.failovers],
        mttr_max=mttr["mttr_max"],
        mttr_mean=mttr["mttr_mean"],
        mttr_bound=mttr["mttr_bound"],
        epochs=plane.lease.epoch,
        config_versions=plane.config_version,
        config_log=list(plane.config_log),
        standby_syncs=plane.standby_syncs,
        respawns=plane.respawns,
        ingested=runtime.records_ingested(),
        counted=runtime.records_in_results(),
        results=len(runtime.results),
        results_by_epoch=results_by_epoch,
        admission_rejected=runtime.records_admission_rejected(),
        shed=runtime.records_shed(),
        late_dropped=sum(site.aggregator.late_dropped for site in sites),
        late_partial_records=agg.late_partial_records,
        abandoned_records=sum(b.records_abandoned for b in backends),
        duplicates_dropped=agg.duplicates_dropped,
        retries=sum(b.retries for b in backends),
        retry_budget_exhausted=sum(
            getattr(b, "retry_budget_exhausted", 0) for b in backends
        ),
        checkpoints=store.saves,
        checkpoint_bytes=store.size_bytes("aggregator"),
        aggregator_crashes=runtime.aggregator_crashes,
        batches_dropped_while_down=runtime.batches_dropped_while_down,
        drained=drained,
        latency=runtime.latency_stats(),
        wan_bytes=runtime.wan_bytes(),
        audit=audit_report.to_dict(),
        cost=cost.to_dict(),
        slo_violations=len(audit_report.violations),
        strict_slo=cfg.strict_slo,
    )
    return ScenarioReport(
        scenario="serve",
        config=cfg.to_dict(),
        seed=seed,
        virtual_seconds=engine.sim.now,
        wall_seconds=time.perf_counter() - wall0,
        details=result,
        metrics=metrics_snapshot(observer),
    )


__all__ = ["ServeResult", "run_serve"]
