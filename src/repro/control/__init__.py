"""``repro.control`` — the resident-service control plane.

Leader lease + standby promotion (:mod:`repro.control.lease`,
:mod:`repro.control.plane`), ingress admission control
(:mod:`repro.control.admission`), and the scripted service scenario
behind ``sage serve`` (:mod:`repro.control.scenario`).
"""

from repro.control.admission import AdmissionGate
from repro.control.lease import LeaderLease
from repro.control.plane import (
    APPLY_KEYS,
    ControlPlane,
    FailoverEvent,
    Replica,
)
from repro.control.scenario import ServeResult, run_serve

__all__ = [
    "APPLY_KEYS",
    "AdmissionGate",
    "ControlPlane",
    "FailoverEvent",
    "LeaderLease",
    "Replica",
    "ServeResult",
    "run_serve",
]
