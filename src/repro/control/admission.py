"""Ingress admission control: a token bucket in front of each site.

The PR 3 flow layer sheds *inside* the pipeline — records are accepted
from the source, counted, and then dropped or deferred by the overload
policy. Admission control moves the first line of defence to the front
door: a per-site token bucket rejects records **at ingress**, before
they ever touch the backlog, so sustained overload is shed at the edge
where it is cheapest (no batching, no shipping, no WAN bytes).

The gate is tied into the credit/backpressure layer through the
``saturated`` flag: when the site's credit gate is fully exhausted (the
backlog is at ``max_backlog``) the gate rejects everything regardless of
tokens, so ingress shedding always engages *before* the internal policy
has to. Rejections are counted per site and folded into the loss
identity (``records_admission_rejected``) — admission-shed records are
explained loss, never silent loss.

Rejected records are always the **front** of the offered chunk. Sources
treat the ingest return value as a consumed prefix, so the gate must
consume (reject) a prefix and leave the policy a contiguous tail to
accept or defer.
"""

from __future__ import annotations


class AdmissionGate:
    """Token-bucket ingress gate (virtual-time driven, no timers).

    Tokens refill lazily on each :meth:`admit` call from the elapsed
    virtual time, so the gate costs nothing while idle and needs no
    periodic task. ``rate`` is records/second; the bucket holds up to
    ``rate * burst_s`` tokens, letting short bursts through while
    capping sustained throughput at ``rate``.
    """

    def __init__(self, rate: float, burst_s: float = 2.0) -> None:
        if rate <= 0:
            raise ValueError("admission rate must be positive")
        if burst_s <= 0:
            raise ValueError("admission burst_s must be positive")
        self.rate = float(rate)
        self.burst_s = float(burst_s)
        self.tokens = self.capacity
        self._last_refill = 0.0
        #: Records let through / rejected since construction.
        self.admitted = 0
        self.rejected = 0

    @property
    def capacity(self) -> float:
        return self.rate * self.burst_s

    # ------------------------------------------------------------------
    def admit(self, n: int, now: float, saturated: bool = False) -> int:
        """Return how many of ``n`` offered records to REJECT (a prefix).

        ``saturated`` is the credit-layer tie-in: when the site's backlog
        credits are exhausted, everything is rejected at ingress so the
        internal policy never sees load it would have to shed anyway.
        """
        if n <= 0:
            return 0
        if now > self._last_refill:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last_refill) * self.rate,
            )
        self._last_refill = max(self._last_refill, now)
        if saturated:
            self.rejected += n
            return n
        granted = min(n, int(self.tokens))
        self.tokens -= granted
        self.admitted += granted
        rejected = n - granted
        self.rejected += rejected
        return rejected

    # ------------------------------------------------------------------
    def configure(
        self, rate: float | None = None, burst_s: float | None = None
    ) -> None:
        """Live-reconfigure the bucket (control-plane ``apply``).

        Tokens are clamped to the new capacity so a rate cut takes
        effect immediately instead of coasting on the old burst.
        """
        if rate is not None:
            if rate <= 0:
                raise ValueError("admission rate must be positive")
            self.rate = float(rate)
        if burst_s is not None:
            if burst_s <= 0:
                raise ValueError("admission burst_s must be positive")
            self.burst_s = float(burst_s)
        self.tokens = min(self.tokens, self.capacity)


__all__ = ["AdmissionGate"]
