"""The resident control plane: failover, reconfiguration, admission.

:class:`ControlPlane` turns a batch-oriented streaming session into a
long-lived service. It owns three concerns:

**Leader lease + standby promotion.** The global aggregator holds a
renewable :class:`~repro.control.lease.LeaderLease`; warm standbys in
other regions follow the leader via checkpoint shipping (every durable
:class:`~repro.flow.checkpoint.CheckpointStore` save fans out to the
standbys after a propagation delay). When the leader dies — a
``leader.kill`` adversity, or any crash that stops renewals — the lease
expires, the watcher promotes the highest-priority live standby, sites
re-target shipping to the new region, and the new aggregator restores
from the durable checkpoint and replays retained batches. The durable
store is the *source of truth* at promotion; standby sync state only
decides whether the promotion is warm (checkpoint already local) or
cold (pay ``cold_fetch_delay`` to pull it). That is what preserves
exactly-once across an epoch change: a stale standby never aggregates
from its stale snapshot.

**Live reconfiguration.** :meth:`apply` swaps overload policy, SLO
thresholds, batching, shipping and admission knobs on the running
session without restart. Each apply bumps an epoch-stamped config
version that the aggregator stamps into every subsequent
:class:`~repro.streaming.runtime.WindowResult`, so lineage and flight
records attribute every window to the exact configuration that
produced it.

**Admission control.** When armed with an admission rate, every site
gets a token-bucket :class:`~repro.control.admission.AdmissionGate`
tied to the credit/backpressure layer — ingress shedding engages before
the pipeline sheds internally, and rejections are folded into the loss
identity.

MTTR accounting: every completed failover is recorded with its
measured time-to-recovery, which the SLO auditor checks against
``ControlConfig.mttr_bound`` (lease TTL + watch interval + promotion
delay + cold-fetch delay). The auditor also checks the split-brain
invariant — never two live replicas in the leader role at once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import ControlConfig
from repro.control.admission import AdmissionGate
from repro.control.lease import LeaderLease
from repro.flow.policy import make_policy


#: Knobs :meth:`ControlPlane.apply` accepts (anything else is an error).
APPLY_KEYS = frozenset({
    "policy",
    "max_backlog",
    "slo_max_latency_s",
    "slo_max_usd_per_1k",
    "delivery_timeout",
    "max_retries",
    "batch_max_delay",
    "admission_rate",
    "admission_burst_s",
})


@dataclass
class Replica:
    """One aggregator candidate the plane tracks."""

    name: str
    region: str
    vm: object
    priority: int
    #: ``"leader"`` | ``"standby"`` | ``"dead"``
    role: str = "standby"
    #: Highest durable checkpoint sequence this replica holds locally.
    synced_seq: int = 0
    synced_at: float = float("-inf")


@dataclass(frozen=True)
class FailoverEvent:
    """One completed leader failover (the MTTR record)."""

    epoch: int
    old_leader: str
    new_leader: str
    t_down: float
    t_promoted: float
    warm: bool

    @property
    def mttr(self) -> float:
        return self.t_promoted - self.t_down

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "old_leader": self.old_leader,
            "new_leader": self.new_leader,
            "t_down": self.t_down,
            "t_promoted": self.t_promoted,
            "mttr": self.mttr,
            "warm": self.warm,
        }


class ControlPlane:
    """Virtual-time control plane over a running GeoStreamRuntime."""

    def __init__(
        self,
        engine,
        runtime,
        config: ControlConfig | None = None,
        auditor=None,
    ) -> None:
        if runtime.checkpoint_store is None:
            raise ValueError(
                "control plane requires checkpointing: call "
                "runtime.enable_checkpointing() before building the plane"
            )
        self.engine = engine
        self.runtime = runtime
        self.config = config if config is not None else ControlConfig()
        self.auditor = auditor
        self.lease = LeaderLease(engine.sim, self.config.lease_ttl)
        self.replicas: dict[str, Replica] = {}
        #: The replica whose lease the renew loop maintains.
        self._lease_owner: Replica | None = None
        self._promoting = False
        self._down_since: float | None = None
        self._started = False
        self._tasks: list = []
        self.kills = 0
        self.respawns = 0
        self.standby_syncs = 0
        self.failovers: list[FailoverEvent] = []
        self.config_version = 0
        #: ``{"t", "version", "changes"}`` per :meth:`apply`, in order.
        self.config_log: list[dict] = []
        obs = engine.observer
        self._obs_on = obs.enabled
        self._m_failovers = obs.counter("control_failovers_total")
        self._m_syncs = obs.counter("control_standby_syncs_total")
        self._m_applies = obs.counter("control_config_applies_total")
        self._m_epoch = obs.gauge("control_epoch")
        self._m_mttr = obs.histogram("control_failover_mttr_seconds")

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_leader(self) -> Replica:
        """Register the runtime's current aggregator as the initial leader."""
        region = self.runtime.aggregation_region
        replica = Replica(
            name=f"agg@{region}",
            region=region,
            vm=self.runtime.agg_vm,
            priority=0,
            role="leader",
        )
        self.replicas[replica.name] = replica
        self._lease_owner = replica
        return replica

    def add_standby(self, region: str, priority: int | None = None) -> Replica:
        """Provision a warm standby in ``region``.

        The standby occupies the *last* VM of the region so that, in
        regions that also run a site pipeline, the standby does not
        contend with the first (site-facing) VMs.
        """
        vms = self.engine.deployment.vms(region)
        if not vms:
            raise ValueError(f"no VMs in standby region {region}")
        if priority is None:
            standbys = sum(1 for r in self.replicas.values()
                           if r.role != "leader")
            priority = standbys + 1
        replica = Replica(
            name=f"standby@{region}",
            region=region,
            vm=vms[-1],
            priority=priority,
        )
        self.replicas[replica.name] = replica
        return replica

    # ------------------------------------------------------------------
    def start(self) -> "ControlPlane":
        """Acquire the initial lease and arm the renew/watch loops."""
        if self._started:
            raise RuntimeError("control plane already started")
        if self._lease_owner is None:
            self.add_leader()
        self._started = True
        epoch = self.lease.try_acquire(self._lease_owner.name)
        self.runtime.aggregator.epoch = epoch
        if self._obs_on:
            self._m_epoch.set(epoch)
        self.engine.on_fault(self._on_fault)
        self.runtime.checkpoint_store.on_save(self._on_checkpoint_save)
        sim = self.engine.sim
        self._tasks.append(
            sim.add_periodic(self.config.renew_interval, self._renew)
        )
        self._tasks.append(
            sim.add_periodic(self.config.watch_interval, self._watch)
        )
        if self.config.admission_rate > 0:
            self._install_admission(
                self.config.admission_rate, self.config.admission_burst_s
            )
        return self

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks = []

    # ------------------------------------------------------------------
    # Lease maintenance and failover
    # ------------------------------------------------------------------
    def _renew(self) -> None:
        owner = self._lease_owner
        if owner is None or owner.role == "dead" or not owner.vm.alive:
            return  # a dead leader stops renewing; the lease runs out
        self.lease.renew(owner.name)

    def kill_leader(self) -> None:
        """Unplanned leader death (the ``leader.kill`` adversity).

        Fails the leader VM, crashes the aggregator process, and leaves
        the lease to expire on its own — detection happens through the
        heartbeat failure detector (fast path) or lease expiry (bound).
        Never emits ``leader.kill`` itself: the plane *subscribes* to
        that kind, and re-emitting would loop.
        """
        leader = next(
            (r for r in self.replicas.values()
             if r.role == "leader" and r.vm.alive),
            None,
        )
        if leader is None:
            return
        now = self.engine.sim.now
        self.kills += 1
        self._down_since = now
        leader.role = "dead"
        leader.vm.fail()
        self.engine.env.network.notify_change()
        self.runtime.crash_aggregator()
        self.engine.sim.schedule(self.config.respawn_delay,
                                 self._respawn, leader)
        # Guarantee a wake-up right after the lease lapses even if the
        # periodic watcher would tick later.
        self.engine.sim.schedule(self.lease.remaining + 1e-3, self._watch)

    def _on_fault(self, kind: str, target: str) -> None:
        if kind == "leader.kill":
            self.kill_leader()
        elif kind == "vm.suspected":
            leader = self._lease_owner
            if (
                leader is not None
                and leader.role != "dead"
                and leader.vm.vm_id == target
                and not leader.vm.alive
            ):
                # Fast path: the failure detector suspected the leader VM
                # (killed by a generic vm.crash, not leader.kill). Treat
                # it as a leader death so promotion starts at lease
                # expiry rather than never.
                if self._down_since is None:
                    self._down_since = self.engine.sim.now
                leader.role = "dead"
                self.runtime.crash_aggregator()
                self.engine.sim.schedule(
                    self.lease.remaining + 1e-3, self._watch
                )

    def _watch(self) -> None:
        """Promote a standby when the lease is free and no leader lives."""
        if self._promoting or self.lease.holder() is not None:
            return
        if any(r.role == "leader" and r.vm.alive
               for r in self.replicas.values()):
            return  # live leader just hasn't renewed yet this tick
        candidates = sorted(
            (r for r in self.replicas.values()
             if r.role == "standby" and r.vm.alive),
            key=lambda r: (r.priority, r.name),
        )
        if not candidates:
            return
        best = candidates[0]
        epoch = self.lease.try_acquire(best.name)
        if epoch is None:
            return
        warm = best.synced_seq >= self.runtime.checkpoint_store.seq(
            "aggregator"
        )
        delay = self.config.promotion_delay
        if not warm:
            delay += self.config.cold_fetch_delay
        self._promoting = True
        self._lease_owner = best  # renewals cover the promotion window
        self.engine.sim.schedule(
            delay, self._complete_promotion, best, epoch, warm
        )

    def _complete_promotion(
        self, replica: Replica, epoch: int, warm: bool
    ) -> None:
        self._promoting = False
        if not replica.vm.alive:
            # Candidate died during promotion; let the lease lapse and
            # the watcher pick the next standby.
            return
        old_name = next(
            (r.name for r in self.replicas.values() if r.role == "dead"),
            "?",
        )
        replica.role = "leader"
        # Retarget FIRST so the restarted aggregator's replayed batches
        # and all new shipping go to the new region.
        self.runtime.retarget_aggregation(replica.region)
        self.runtime.restart_aggregator()
        self.runtime.aggregator.epoch = epoch
        self.runtime.aggregator.config_version = self.config_version
        now = self.engine.sim.now
        t_down = self._down_since if self._down_since is not None else now
        self._down_since = None
        event = FailoverEvent(
            epoch=epoch,
            old_leader=old_name,
            new_leader=replica.name,
            t_down=t_down,
            t_promoted=now,
            warm=warm,
        )
        self.failovers.append(event)
        if self._obs_on:
            self._m_failovers.inc()
            self._m_epoch.set(epoch)
            self._m_mttr.observe(event.mttr)
        self.engine.emit_fault("leader.promoted", replica.name)

    def _respawn(self, replica: Replica) -> None:
        """Bring a killed replica back as a *cold* standby."""
        if replica.role != "dead":
            return
        if not replica.vm.alive:
            replica.vm.restore()
            self.engine.env.network.notify_change()
            self.engine.emit_fault("vm.restart", replica.vm.vm_id)
        replica.role = "standby"
        replica.synced_seq = 0  # rejoins cold; syncs catch it up
        if replica.priority == 0:
            # The original leader rejoins at the back of the queue.
            replica.priority = 1 + max(
                (r.priority for r in self.replicas.values()), default=0
            )
        self.respawns += 1

    # ------------------------------------------------------------------
    # Standby checkpoint shipping
    # ------------------------------------------------------------------
    def _on_checkpoint_save(self, name: str, seq: int, t: float) -> None:
        if name != "aggregator":
            return
        for replica in self.replicas.values():
            if replica.role == "standby" and replica.vm.alive:
                self.engine.sim.schedule(
                    self.config.sync_delay, self._sync_standby, replica, seq
                )

    def _sync_standby(self, replica: Replica, seq: int) -> None:
        if replica.role != "standby" or not replica.vm.alive:
            return
        if seq > replica.synced_seq:
            replica.synced_seq = seq
            replica.synced_at = self.engine.sim.now
            self.standby_syncs += 1
            if self._obs_on:
                self._m_syncs.inc()

    # ------------------------------------------------------------------
    # Audit surface
    # ------------------------------------------------------------------
    def active_leaders(self) -> list[str]:
        """Names of replicas acting as leader on a live VM right now.

        The split-brain invariant the auditor checks: this list never
        holds more than one name at any virtual instant.
        """
        return [
            r.name for r in self.replicas.values()
            if r.role == "leader" and r.vm.alive
        ]

    def mttr_stats(self) -> dict:
        mttrs = [f.mttr for f in self.failovers]
        return {
            "failovers": len(mttrs),
            "mttr_max": max(mttrs) if mttrs else 0.0,
            "mttr_mean": sum(mttrs) / len(mttrs) if mttrs else 0.0,
            "mttr_bound": self.config.mttr_bound,
        }

    def summary(self) -> dict:
        return {
            "epoch": self.lease.epoch,
            "kills": self.kills,
            "respawns": self.respawns,
            "standby_syncs": self.standby_syncs,
            "config_version": self.config_version,
            "lease_renewals": self.lease.renewals,
            **self.mttr_stats(),
        }

    # ------------------------------------------------------------------
    # Live reconfiguration
    # ------------------------------------------------------------------
    def apply(self, changes: dict) -> int:
        """Apply a config change to the running session; returns the
        new config version (stamped into subsequent window results).

        Accepted keys: ``policy``, ``max_backlog`` (flow layer, swapped
        per site with credit capacity adjusted), ``slo_max_latency_s``,
        ``slo_max_usd_per_1k`` (auditor thresholds), ``delivery_timeout``,
        ``max_retries`` (reliable shipping), ``batch_max_delay`` (time/
        hybrid batch policies), ``admission_rate``, ``admission_burst_s``
        (ingress gates; rate 0 removes them).
        """
        unknown = set(changes) - APPLY_KEYS
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        if not changes:
            raise ValueError("empty config change")
        flow_keys = {"policy", "max_backlog"} & set(changes)
        if flow_keys:
            self._apply_flow(
                {k: changes[k] for k in flow_keys}
            )
        if "delivery_timeout" in changes or "max_retries" in changes:
            for site in self.runtime.sites.values():
                shipping = site.shipping
                if "delivery_timeout" in changes and hasattr(
                    shipping, "delivery_timeout"
                ):
                    shipping.delivery_timeout = float(
                        changes["delivery_timeout"]
                    )
                if "max_retries" in changes and hasattr(
                    shipping, "max_retries"
                ):
                    shipping.max_retries = int(changes["max_retries"])
        if "batch_max_delay" in changes:
            self._apply_batch_delay(float(changes["batch_max_delay"]))
        if "slo_max_latency_s" in changes and self.auditor is not None:
            self.auditor.max_latency_s = changes["slo_max_latency_s"]
        if "slo_max_usd_per_1k" in changes and self.auditor is not None:
            self.auditor.max_usd_per_1k = changes["slo_max_usd_per_1k"]
        if "admission_rate" in changes or "admission_burst_s" in changes:
            self._apply_admission(
                changes.get("admission_rate"),
                changes.get("admission_burst_s"),
            )
        self.config_version += 1
        v = self.config_version
        self.runtime.aggregator.config_version = v
        self.config_log.append(
            {"t": self.engine.sim.now, "version": v, "changes": dict(changes)}
        )
        if self._obs_on:
            self._m_applies.inc()
        self.engine.emit_fault("control.apply", f"v{v}")
        return v

    def _apply_flow(self, changes: dict) -> None:
        base = self.runtime.flow
        if base is None:
            raise ValueError(
                "cannot apply flow knobs: runtime has no flow config"
            )
        new_flow = replace(base, **changes)
        self.runtime.flow = new_flow
        for site in self.runtime.sites.values():
            site.flow = new_flow
            site.policy = make_policy(new_flow)
            # Credit capacity tracks max_backlog; in-use credits are
            # released by the drain loop, so a cut self-corrects.
            site.credits.capacity = new_flow.max_backlog

    def _apply_batch_delay(self, max_delay: float) -> None:
        if max_delay <= 0:
            raise ValueError("batch_max_delay must be positive")
        for site in self.runtime.sites.values():
            policy = site.batcher.policy
            target = getattr(policy, "time", policy)  # hybrid holds .time
            if hasattr(target, "max_delay"):
                target.max_delay = max_delay

    def _apply_admission(
        self, rate: float | None, burst_s: float | None
    ) -> None:
        if rate is not None and rate <= 0:
            # Rate 0 (or negative clamped by config validation upstream)
            # disarms ingress gating entirely.
            for site in self.runtime.sites.values():
                site.admission = None
            return
        for site in self.runtime.sites.values():
            if site.admission is None:
                if rate is None:
                    raise ValueError(
                        "admission_burst_s without admission_rate on a "
                        "session with no gates armed"
                    )
                site.admission = AdmissionGate(
                    rate, burst_s if burst_s is not None else 2.0
                )
            else:
                site.admission.configure(rate=rate, burst_s=burst_s)

    def _install_admission(self, rate: float, burst_s: float) -> None:
        for site in self.runtime.sites.values():
            site.admission = AdmissionGate(rate, burst_s)


__all__ = ["APPLY_KEYS", "ControlPlane", "FailoverEvent", "Replica"]
