"""The leader lease: one renewable term at a time, on the virtual clock.

A :class:`LeaderLease` is the single source of truth for who may act as
the global aggregator. The holder renews before the TTL runs out; a
holder that dies simply stops renewing, and once ``now`` passes
``expires_at`` the lease is free for the highest-priority live standby
to claim with :meth:`try_acquire` — a compare-and-swap that either
starts a new *epoch* or refuses. Two properties follow directly:

* **No split brain.** ``try_acquire`` refuses while a different holder's
  term is still live, so at any virtual instant at most one name holds
  the lease. (The auditor additionally checks the plane's replica roles,
  which is where a buggy promotion *would* diverge from the lease.)
* **Bounded failover detection.** A dead leader holds the lease at most
  ``ttl`` seconds past its last renewal — the first term in the control
  plane's MTTR bound.

Epochs are monotone and every transition is recorded, so audits and
reports can attribute each emitted window to exactly one leadership
term.
"""

from __future__ import annotations

import math


class LeaderLease:
    """A renewable single-holder lease driven by the simulation clock."""

    def __init__(self, sim, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.sim = sim
        self.ttl = ttl
        #: Monotone term counter; bumped by every successful new acquire.
        self.epoch = 0
        #: Name of the last holder (kept after expiry, for history).
        self.holder_name: str | None = None
        self.expires_at = -math.inf
        self.renewals = 0
        #: ``{"t", "epoch", "holder"}`` per term start, in order.
        self.transitions: list[dict] = []

    # ------------------------------------------------------------------
    def holder(self) -> str | None:
        """The current *live* holder, or ``None`` if free/expired."""
        if self.holder_name is not None and self.sim.now < self.expires_at:
            return self.holder_name
        return None

    @property
    def remaining(self) -> float:
        """Seconds until the current term expires (0 if already free)."""
        return max(0.0, self.expires_at - self.sim.now)

    # ------------------------------------------------------------------
    def try_acquire(self, name: str) -> int | None:
        """Claim the lease; returns the epoch, or ``None`` if refused.

        Succeeds only when the lease is free, expired, or already held
        by ``name``. A fresh claim (different holder, or the same holder
        after an expiry) starts a new epoch; extending a live own term
        does not.
        """
        current = self.holder()
        if current is not None and current != name:
            return None
        if current is None:
            self.epoch += 1
            self.transitions.append(
                {"t": self.sim.now, "epoch": self.epoch, "holder": name}
            )
        self.holder_name = name
        self.expires_at = self.sim.now + self.ttl
        return self.epoch

    def renew(self, name: str) -> bool:
        """Extend a *live* own term. An expired term cannot be renewed —
        the holder must go back through :meth:`try_acquire` (and get a
        new epoch), because another replica may have held in between."""
        if self.holder_name != name or self.sim.now >= self.expires_at:
            return False
        self.expires_at = self.sim.now + self.ttl
        self.renewals += 1
        return True

    def release(self, name: str) -> bool:
        """Voluntarily lapse the term now (planned step-down)."""
        if self.holder_name != name or self.holder() is None:
            return False
        self.expires_at = self.sim.now
        return True


__all__ = ["LeaderLease"]
