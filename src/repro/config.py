"""Frozen configuration dataclasses — the one constructor surface.

Historically every layer grew its own calling convention: scenarios took
long ad-hoc keyword lists, baselines took positional knobs, and only
``FlowConfig``/``MonitorConfig``/``DecisionConfig`` were proper
dataclasses. This module unifies them: every tunable surface is a frozen
dataclass deriving from :class:`ConfigBase`, which adds symmetric
``to_dict``/``from_dict`` (JSON round-trip safe — tuple-typed fields are
re-tupled on the way in) and ``replace``. Dict form is what the sweep
runner hashes for cache keys and ships across process boundaries, so the
round trip must be loss-free.

Old call signatures still work through thin shims that emit
``DeprecationWarning`` (see ``run_chaos``/``run_overload`` and the
baseline constructors); new code passes a config object or its dict.
"""

from __future__ import annotations

import dataclasses
import typing
import warnings
from dataclasses import dataclass

from repro.simulation.units import MB


def deprecated_call(old: str, new: str) -> None:
    """Emit the uniform deprecation warning for a legacy call path."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class ConfigBase:
    """Mixin giving frozen config dataclasses a symmetric dict form."""

    def to_dict(self) -> dict:
        """Plain-dict form (nested dataclasses included). JSON-safe
        modulo tuples, which ``from_dict`` restores."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ConfigBase":
        """Rebuild from :meth:`to_dict` output (or parsed JSON).

        Unknown keys raise ``TypeError`` — a config dict is also a cache
        key, so silently dropping a field would alias distinct
        configurations.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise TypeError(
                f"{cls.__name__}.from_dict: unknown fields {sorted(unknown)}"
            )
        hints = typing.get_type_hints(cls)
        kwargs = {}
        for key, value in data.items():
            hint = str(hints.get(key, ""))
            if isinstance(value, list) and "tuple" in hint.lower():
                value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)

    def replace(self, **changes) -> "ConfigBase":
        return dataclasses.replace(self, **changes)


# ----------------------------------------------------------------------
# Scenario configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosConfig(ConfigBase):
    """Configuration of the scripted fault-recovery scenario."""

    seed: int = 2013
    duration: float = 240.0
    site_regions: tuple[str, str] = ("NEU", "WEU")
    aggregation_region: str = "NUS"
    records_per_s: float = 300.0
    #: Arm the scripted fault plan (False = fault-free control run).
    inject: bool = True
    delivery_timeout: float = 15.0
    max_retries: int = 8
    #: When set, invariant/SLO violations found by the continuous
    #: auditor fail the scenario (``report.clean`` turns False).
    strict_slo: bool = False
    #: Per-window end-to-end latency SLO in seconds (None = no SLO).
    slo_max_latency_s: float | None = None
    #: Cost SLO: attributed streaming $ per 1000 raw records.
    slo_max_usd_per_1k: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.records_per_s <= 0:
            raise ValueError("records_per_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.slo_max_latency_s is not None and self.slo_max_latency_s <= 0:
            raise ValueError("slo_max_latency_s must be positive")
        if self.slo_max_usd_per_1k is not None and self.slo_max_usd_per_1k <= 0:
            raise ValueError("slo_max_usd_per_1k must be positive")


@dataclass(frozen=True)
class OverloadConfig(ConfigBase):
    """Configuration of the scripted overload-recovery scenario."""

    policy: str = "block"
    seed: int = 2013
    duration: float = 240.0
    site_regions: tuple[str, str] = ("NEU", "WEU")
    aggregation_region: str = "NUS"
    base_rate: float = 100.0
    burst_factor: float = 5.0
    burst_window: tuple[float, float] = (60.0, 90.0)
    max_backlog: int = 1500
    #: ``(start, duration, capacity_scale)`` brownout on the first
    #: site's aggregation link; ``None`` disables it.
    brownout: tuple[float, float, float] | None = (70.0, 40.0, 0.0)
    #: Aggregator crash time (``None`` disables the crash).
    crash_at: float | None = 150.0
    restart_after: float = 15.0
    checkpoint_interval: float = 15.0
    #: When set, invariant/SLO violations found by the continuous
    #: auditor fail the scenario (``report.clean`` turns False).
    strict_slo: bool = False
    #: Per-window end-to-end latency SLO in seconds (None = no SLO).
    slo_max_latency_s: float | None = None
    #: Cost SLO: attributed streaming $ per 1000 raw records.
    slo_max_usd_per_1k: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")
        if self.slo_max_latency_s is not None and self.slo_max_latency_s <= 0:
            raise ValueError("slo_max_latency_s must be positive")
        if self.slo_max_usd_per_1k is not None and self.slo_max_usd_per_1k <= 0:
            raise ValueError("slo_max_usd_per_1k must be positive")


# ----------------------------------------------------------------------
# Baseline configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirectConfig(ConfigBase):
    """Knobs of the single-path :class:`~repro.baselines.direct.DirectTransfer`."""

    streams: int = 1

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError("streams must be >= 1")


@dataclass(frozen=True)
class ParallelStaticConfig(ConfigBase):
    """Knobs of the fixed-fan-out static parallel baseline."""

    n_nodes: int = 5
    streams: int = 4

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")


@dataclass(frozen=True)
class ShortestPathConfig(ConfigBase):
    """Knobs of the widest-path baselines (static and dynamic)."""

    n_nodes: int = 10
    streams: int = 4
    max_hops: int = 3
    #: Replan cadence of the dynamic variant (ignored by the static one).
    replan_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if self.replan_interval <= 0:
            raise ValueError("replan_interval must be positive")


@dataclass(frozen=True)
class BlobRelayConfig(ConfigBase):
    """Knobs of the blob-store staging baseline."""

    staging_region: str | None = None
    object_size: float = 64 * MB
    parallel_objects: int = 2

    def __post_init__(self) -> None:
        if self.object_size <= 0:
            raise ValueError("object_size must be positive")
        if self.parallel_objects < 1:
            raise ValueError("parallel_objects must be >= 1")


@dataclass(frozen=True)
class GridFtpConfig(ConfigBase):
    """Knobs of the GridFTP-like striped-endpoint baseline."""

    streams: int = 8
    submission_latency: float = 5.0
    endpoints: int = 2

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.submission_latency < 0:
            raise ValueError("submission_latency must be non-negative")
        if self.endpoints < 1:
            raise ValueError("endpoints must be >= 1")


def resolve_config(cls, config, legacy_kwargs, old: str, new: str):
    """Normalise the (config | dict | legacy kwargs) calling convention.

    ``config`` may be an instance of ``cls``, a dict for
    ``cls.from_dict``, or ``None``; ``legacy_kwargs`` are pre-dataclass
    keyword arguments, accepted with a :class:`DeprecationWarning` and
    merged *into* the config (they override its fields, preserving the
    old call sites' semantics exactly).
    """
    if config is None:
        config = cls()
    elif isinstance(config, dict):
        config = cls.from_dict(config)
    elif not isinstance(config, cls):
        raise TypeError(
            f"expected {cls.__name__}, dict, or None — got {type(config).__name__}"
        )
    if legacy_kwargs:
        deprecated_call(old, new)
        config = config.replace(**legacy_kwargs)
    return config
