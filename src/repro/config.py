"""Frozen configuration dataclasses — the one constructor surface.

Historically every layer grew its own calling convention: scenarios took
long ad-hoc keyword lists, baselines took positional knobs, and only
``FlowConfig``/``MonitorConfig``/``DecisionConfig`` were proper
dataclasses. This module unifies them: every tunable surface is a frozen
dataclass deriving from :class:`ConfigBase`, which adds symmetric
``to_dict``/``from_dict`` (JSON round-trip safe — tuple-typed fields are
re-tupled on the way in) and ``replace``. Dict form is what the sweep
runner hashes for cache keys and ships across process boundaries, so the
round trip must be loss-free.

Old call signatures still work through thin shims that emit
``DeprecationWarning`` (see ``run_chaos``/``run_overload`` and the
baseline constructors); new code passes a config object or its dict.
"""

from __future__ import annotations

import dataclasses
import typing
import warnings
from dataclasses import dataclass

from repro.simulation.units import MB


def deprecated_call(old: str, new: str) -> None:
    """Emit the uniform deprecation warning for a legacy call path."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class ConfigBase:
    """Mixin giving frozen config dataclasses a symmetric dict form."""

    def to_dict(self) -> dict:
        """Plain-dict form (nested dataclasses included). JSON-safe
        modulo tuples, which ``from_dict`` restores."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ConfigBase":
        """Rebuild from :meth:`to_dict` output (or parsed JSON).

        Unknown keys raise ``TypeError`` — a config dict is also a cache
        key, so silently dropping a field would alias distinct
        configurations.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise TypeError(
                f"{cls.__name__}.from_dict: unknown fields {sorted(unknown)}"
            )
        hints = typing.get_type_hints(cls)
        kwargs = {}
        for key, value in data.items():
            hint = str(hints.get(key, ""))
            if isinstance(value, list) and "tuple" in hint.lower():
                value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)

    def replace(self, **changes) -> "ConfigBase":
        return dataclasses.replace(self, **changes)


# ----------------------------------------------------------------------
# Record plane configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordPlaneConfig(ConfigBase):
    """How records move through the streaming data plane.

    ``columnar=True`` (the default) runs the batch-at-a-time plane:
    sources emit one :class:`~repro.streaming.records.RecordBatch` per
    tick, site backlogs hold columnar chunks, and operators/windowing
    fold whole batches. ``columnar=False`` selects the legacy
    per-record-object plane — kept for A/B equivalence runs; both
    planes produce identical results and soak digests for the same
    seed (see ``tests/test_columnar_equivalence.py``).
    """

    #: Batch-at-a-time plane on/off (off = legacy per-record objects).
    columnar: bool = True
    #: Maximum records per backlog chunk / per source sink offer when a
    #: source opts into chunked emission.
    chunk_records: int = 4096

    def __post_init__(self) -> None:
        if self.chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")


#: The shipped default: columnar plane, 4096-record chunks.
DEFAULT_RECORD_PLANE = RecordPlaneConfig()

_default_record_plane = DEFAULT_RECORD_PLANE


def default_record_plane() -> RecordPlaneConfig:
    """The process-wide record-plane default.

    Used by every runtime whose :class:`~repro.streaming.dataflow.StreamJob`
    does not pin ``record_plane`` explicitly — which includes the
    scenario runners, whose jobs are built internally.
    """
    return _default_record_plane


def set_default_record_plane(plane: RecordPlaneConfig) -> RecordPlaneConfig:
    """Swap the process-wide record-plane default; returns the old one.

    This is the A/B lever for jobs built by scenario runners (chaos /
    overload / soak), where there is no job object to pin
    ``record_plane`` on. Callers should restore the returned previous
    value when done.
    """
    global _default_record_plane
    if not isinstance(plane, RecordPlaneConfig):
        raise TypeError(
            f"expected RecordPlaneConfig, got {type(plane).__name__}"
        )
    previous = _default_record_plane
    _default_record_plane = plane
    return previous


# ----------------------------------------------------------------------
# Scenario configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosConfig(ConfigBase):
    """Configuration of the scripted fault-recovery scenario."""

    seed: int = 2013
    duration: float = 240.0
    site_regions: tuple[str, str] = ("NEU", "WEU")
    aggregation_region: str = "NUS"
    records_per_s: float = 300.0
    #: Arm the scripted fault plan (False = fault-free control run).
    inject: bool = True
    delivery_timeout: float = 15.0
    max_retries: int = 8
    #: When set, invariant/SLO violations found by the continuous
    #: auditor fail the scenario (``report.clean`` turns False).
    strict_slo: bool = False
    #: Per-window end-to-end latency SLO in seconds (None = no SLO).
    slo_max_latency_s: float | None = None
    #: Cost SLO: attributed streaming $ per 1000 raw records.
    slo_max_usd_per_1k: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.records_per_s <= 0:
            raise ValueError("records_per_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.slo_max_latency_s is not None and self.slo_max_latency_s <= 0:
            raise ValueError("slo_max_latency_s must be positive")
        if self.slo_max_usd_per_1k is not None and self.slo_max_usd_per_1k <= 0:
            raise ValueError("slo_max_usd_per_1k must be positive")


@dataclass(frozen=True)
class OverloadConfig(ConfigBase):
    """Configuration of the scripted overload-recovery scenario."""

    policy: str = "block"
    seed: int = 2013
    duration: float = 240.0
    site_regions: tuple[str, str] = ("NEU", "WEU")
    aggregation_region: str = "NUS"
    base_rate: float = 100.0
    burst_factor: float = 5.0
    burst_window: tuple[float, float] = (60.0, 90.0)
    max_backlog: int = 1500
    #: ``(start, duration, capacity_scale)`` brownout on the first
    #: site's aggregation link; ``None`` disables it.
    brownout: tuple[float, float, float] | None = (70.0, 40.0, 0.0)
    #: Aggregator crash time (``None`` disables the crash).
    crash_at: float | None = 150.0
    restart_after: float = 15.0
    checkpoint_interval: float = 15.0
    #: When set, invariant/SLO violations found by the continuous
    #: auditor fail the scenario (``report.clean`` turns False).
    strict_slo: bool = False
    #: Per-window end-to-end latency SLO in seconds (None = no SLO).
    slo_max_latency_s: float | None = None
    #: Cost SLO: attributed streaming $ per 1000 raw records.
    slo_max_usd_per_1k: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")
        if self.slo_max_latency_s is not None and self.slo_max_latency_s <= 0:
            raise ValueError("slo_max_latency_s must be positive")
        if self.slo_max_usd_per_1k is not None and self.slo_max_usd_per_1k <= 0:
            raise ValueError("slo_max_usd_per_1k must be positive")


#: Named generator presets the soak harness accepts (see
#: :data:`repro.gen.GEN_PROFILES` for the corresponding knob sets).
SOAK_PROFILES = ("calm", "diurnal", "adversarial", "hostile")


@dataclass(frozen=True)
class GenConfig(ConfigBase):
    """Knobs of the seeded adversarial scenario generator.

    Traffic knobs shape per-region rate programs (diurnal curves, flash
    crowds, slow drift in record sizes); adversity knobs are expected
    event counts *per simulated day* — a two-hour soak scales them down
    proportionally, a two-day soak scales them up. All sampling is
    driven by seeds derived via :func:`repro.runner.seeds.derive_seed`,
    so the same ``(seed, GenConfig)`` pair always renders the same
    schedules and fault plans, in any process.
    """

    # -- deployment shape ----------------------------------------------
    n_sites: int = 3
    vms_per_site_min: int = 2
    vms_per_site_max: int = 4
    # -- traffic programs ----------------------------------------------
    shapes_per_site_min: int = 1
    shapes_per_site_max: int = 3
    keys_min: int = 2
    keys_max: int = 6
    #: Per-shape base rates are modest on purpose: a soak's point is
    #: *duration* (simulated days), and wall-clock scales with total
    #: records. Flash crowds still push instantaneous rates an order of
    #: magnitude higher.
    base_rate_min: float = 3.0
    base_rate_max: float = 10.0
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float = 86400.0
    flash_crowds_per_day: float = 4.0
    flash_peak_min: float = 3.0
    flash_peak_max: float = 8.0
    flash_rise_s: float = 120.0
    flash_decay_s: float = 600.0
    #: Slow drift of record sizes (amplitude as a fraction of the
    #: shape's nominal record size).
    drift_amplitude: float = 0.25
    drift_period_s: float = 21600.0
    #: Piecewise-constant rendering resolution of rate/size schedules.
    schedule_resolution_s: float = 60.0
    # -- adversity programs (expected events per simulated day) --------
    outages_per_day: float = 2.0
    outage_mean_s: float = 240.0
    outage_jitter_s: float = 20.0
    flaps_per_day: float = 6.0
    flap_scale_min: float = 0.1
    flap_scale_max: float = 0.5
    flap_mean_s: float = 180.0
    slow_burns_per_day: float = 2.0
    slow_burn_ramp_s: float = 1200.0
    slow_burn_floor: float = 0.3
    dup_windows_per_day: float = 3.0
    drop_windows_per_day: float = 3.0
    batch_window_mean_s: float = 120.0
    #: Unplanned global-aggregator (leader) kills per simulated day.
    #: Only effective when a control plane is armed — without one the
    #: emitted ``leader.kill`` events are recorded but change nothing.
    leader_kills_per_day: float = 0.0
    # -- job shape ------------------------------------------------------
    window_s: float = 30.0

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("n_sites must be >= 1")
        if not 1 <= self.vms_per_site_min <= self.vms_per_site_max:
            raise ValueError("vms_per_site bounds must satisfy 1 <= min <= max")
        if not 1 <= self.shapes_per_site_min <= self.shapes_per_site_max:
            raise ValueError("shapes_per_site bounds must satisfy 1 <= min <= max")
        if not 1 <= self.keys_min <= self.keys_max:
            raise ValueError("keys bounds must satisfy 1 <= min <= max")
        if not 0 < self.base_rate_min <= self.base_rate_max:
            raise ValueError("base_rate bounds must satisfy 0 < min <= max")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        for name in ("diurnal_period_s", "drift_period_s",
                     "schedule_resolution_s", "window_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.slow_burn_floor <= 1.0:
            raise ValueError("slow_burn_floor must be in (0, 1]")
        if not 0.0 < self.flap_scale_min <= self.flap_scale_max <= 1.0:
            raise ValueError("flap_scale bounds must satisfy 0 < min <= max <= 1")
        for name in ("outages_per_day", "flaps_per_day", "slow_burns_per_day",
                     "dup_windows_per_day", "drop_windows_per_day",
                     "leader_kills_per_day"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class SoakConfig(ConfigBase):
    """Configuration of the long-horizon generated soak scenario.

    The scenario itself is *sampled*: ``(seed, profile)`` feed the
    :class:`~repro.gen.ScenarioGenerator`, which renders traffic and
    adversity programs deterministically. The config therefore stays
    flat and JSON-safe — exactly what the sweep cache hashes.
    """

    seed: int = 2013
    #: Simulated hours the soak covers (faults and traffic included).
    hours: float = 2.0
    #: Generator preset (see :data:`SOAK_PROFILES`).
    profile: str = "adversarial"
    #: Virtual seconds between continuous-auditor checks.
    check_interval: float = 30.0
    #: Simulated hours per report phase (0 = auto: ~6 phases).
    phase_hours: float = 0.0
    #: Periodic checkpoint cadence in seconds (0 = off — a soak without
    #: aggregator crashes exercises exactly-once through dedup alone,
    #: and skipping snapshots keeps multi-day runs fast).
    checkpoint_interval: float = 0.0
    #: Overload policy of the generated job (``block`` is lossless).
    policy: str = "block"
    max_backlog: int = 20_000
    delivery_timeout: float = 15.0
    max_retries: int = 10
    #: Unplanned leader (global aggregator) kills injected over the run.
    #: ``> 0`` arms the control plane: checkpointing is forced on, warm
    #: standbys are provisioned, and exactly this many ``leader.kill``
    #: events are spread deterministically across the middle of the run.
    failovers: int = 0
    #: When set, any auditor violation fails the scenario (soaks are
    #: strict by default — that is their whole point).
    strict_slo: bool = True
    #: Per-window end-to-end latency SLO in seconds (None = no SLO).
    slo_max_latency_s: float | None = None
    #: Cost SLO: attributed streaming $ per 1000 raw records.
    slo_max_usd_per_1k: float | None = None

    def __post_init__(self) -> None:
        if self.hours <= 0:
            raise ValueError("hours must be positive")
        if self.profile not in SOAK_PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; choose from {SOAK_PROFILES}"
            )
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if self.phase_hours < 0:
            raise ValueError("phase_hours must be >= 0")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.policy not in ("block", "shed", "degrade"):
            raise ValueError("policy must be block, shed, or degrade")
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.failovers < 0:
            raise ValueError("failovers must be >= 0")
        if self.slo_max_latency_s is not None and self.slo_max_latency_s <= 0:
            raise ValueError("slo_max_latency_s must be positive")
        if self.slo_max_usd_per_1k is not None and self.slo_max_usd_per_1k <= 0:
            raise ValueError("slo_max_usd_per_1k must be positive")


# ----------------------------------------------------------------------
# Control plane configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ControlConfig(ConfigBase):
    """Knobs of the :class:`repro.control.ControlPlane`.

    All intervals are virtual seconds. The worst-case failover MTTR the
    plane promises (and the auditor enforces) is :attr:`mttr_bound`:
    after an unplanned leader death the lease takes at most
    ``lease_ttl`` to expire, the standby watcher notices within
    ``watch_interval``, and promotion costs ``promotion_delay`` plus —
    only when the standby's shipped-checkpoint cache is stale —
    ``cold_fetch_delay`` to pull the latest snapshot from the store.
    """

    #: Leader lease time-to-live. Renewal stops the instant the leader
    #: dies, so this bounds how long a dead leader can hold the lease.
    lease_ttl: float = 10.0
    #: How often the live leader renews its lease.
    renew_interval: float = 2.0
    #: How often standbys check the lease for expiry.
    watch_interval: float = 2.0
    #: Simulated latency of shipping one checkpoint to a standby.
    sync_delay: float = 1.0
    #: Standby boot-to-serving time once it wins the lease.
    promotion_delay: float = 2.0
    #: Extra promotion cost when the winning standby's checkpoint cache
    #: lags the durable store (it must fetch before serving).
    cold_fetch_delay: float = 5.0
    #: Delay before a killed leader's VM rejoins the pool as a standby.
    respawn_delay: float = 120.0
    #: Token-bucket admission rate per site in records/s (0 = gate off).
    admission_rate: float = 0.0
    #: Burst tolerance of the admission bucket, in seconds of rate.
    admission_burst_s: float = 2.0

    def __post_init__(self) -> None:
        for name in ("lease_ttl", "renew_interval", "watch_interval",
                     "promotion_delay"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("sync_delay", "cold_fetch_delay", "respawn_delay",
                     "admission_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.renew_interval >= self.lease_ttl:
            raise ValueError("renew_interval must be < lease_ttl")
        if self.admission_burst_s <= 0:
            raise ValueError("admission_burst_s must be positive")

    @property
    def mttr_bound(self) -> float:
        """Worst-case unplanned-failover recovery time the plane promises."""
        return (self.lease_ttl + self.watch_interval
                + self.promotion_delay + self.cold_fetch_delay)


@dataclass(frozen=True)
class ServeConfig(ConfigBase):
    """Configuration of the resident-service scenario (``sage serve``).

    A long-lived session with the control plane armed: warm standbys
    follow the leader, the leader is killed on a schedule, a scripted
    live reconfiguration lands mid-run, and the continuous auditor
    checks split-brain / MTTR / exactly-once invariants throughout.
    """

    seed: int = 2013
    duration: float = 1800.0
    site_regions: tuple[str, ...] = ("NEU", "WEU")
    aggregation_region: str = "NUS"
    #: Regions hosting warm standby aggregators, in promotion priority
    #: order (first = highest priority).
    standby_regions: tuple[str, ...] = ("EUS", "SUS")
    base_rate: float = 60.0
    policy: str = "block"
    max_backlog: int = 5000
    checkpoint_interval: float = 10.0
    #: Kill the current leader every this many seconds (0 = never).
    #: Kills stop after ``0.75 * duration`` so the tail can drain.
    kill_leader_every: float = 420.0
    #: Hard cap on scheduled kills (0 = no cap beyond the time window).
    max_kills: int = 0
    #: Virtual time of the scripted live reconfiguration (0 = none).
    reconfigure_at: float = 600.0
    #: Per-site token-bucket admission rate in records/s (0 = gate off).
    admission_rate: float = 0.0
    admission_burst_s: float = 2.0
    lease_ttl: float = 10.0
    promotion_delay: float = 2.0
    respawn_delay: float = 120.0
    delivery_timeout: float = 15.0
    max_retries: int = 8
    #: Cap on concurrent retry attempts across all site links (0 = off).
    retry_budget: int = 0
    strict_slo: bool = True
    slo_max_latency_s: float | None = None
    slo_max_usd_per_1k: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.site_regions:
            raise ValueError("site_regions must be non-empty")
        if not self.standby_regions:
            raise ValueError("standby_regions must be non-empty")
        overlap = (set(self.standby_regions)
                   & (set(self.site_regions) | {self.aggregation_region}))
        if overlap:
            raise ValueError(
                f"standby_regions must not overlap sites/aggregation: {sorted(overlap)}"
            )
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.policy not in ("block", "shed", "degrade"):
            raise ValueError("policy must be block, shed, or degrade")
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        for name in ("kill_leader_every", "reconfigure_at", "admission_rate",
                     "respawn_delay"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.max_kills < 0:
            raise ValueError("max_kills must be >= 0")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.lease_ttl <= 0 or self.promotion_delay <= 0:
            raise ValueError("lease_ttl and promotion_delay must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.slo_max_latency_s is not None and self.slo_max_latency_s <= 0:
            raise ValueError("slo_max_latency_s must be positive")
        if self.slo_max_usd_per_1k is not None and self.slo_max_usd_per_1k <= 0:
            raise ValueError("slo_max_usd_per_1k must be positive")

    def control(self) -> ControlConfig:
        """Derive the control-plane knob set from the scenario knobs."""
        return ControlConfig(
            lease_ttl=self.lease_ttl,
            promotion_delay=self.promotion_delay,
            respawn_delay=self.respawn_delay,
            admission_rate=self.admission_rate,
            admission_burst_s=self.admission_burst_s,
        )


# ----------------------------------------------------------------------
# Baseline configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirectConfig(ConfigBase):
    """Knobs of the single-path :class:`~repro.baselines.direct.DirectTransfer`."""

    streams: int = 1

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError("streams must be >= 1")


@dataclass(frozen=True)
class ParallelStaticConfig(ConfigBase):
    """Knobs of the fixed-fan-out static parallel baseline."""

    n_nodes: int = 5
    streams: int = 4

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")


@dataclass(frozen=True)
class ShortestPathConfig(ConfigBase):
    """Knobs of the widest-path baselines (static and dynamic)."""

    n_nodes: int = 10
    streams: int = 4
    max_hops: int = 3
    #: Replan cadence of the dynamic variant (ignored by the static one).
    replan_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if self.replan_interval <= 0:
            raise ValueError("replan_interval must be positive")


@dataclass(frozen=True)
class BlobRelayConfig(ConfigBase):
    """Knobs of the blob-store staging baseline."""

    staging_region: str | None = None
    object_size: float = 64 * MB
    parallel_objects: int = 2

    def __post_init__(self) -> None:
        if self.object_size <= 0:
            raise ValueError("object_size must be positive")
        if self.parallel_objects < 1:
            raise ValueError("parallel_objects must be >= 1")


@dataclass(frozen=True)
class GridFtpConfig(ConfigBase):
    """Knobs of the GridFTP-like striped-endpoint baseline."""

    streams: int = 8
    submission_latency: float = 5.0
    endpoints: int = 2

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.submission_latency < 0:
            raise ValueError("submission_latency must be non-negative")
        if self.endpoints < 1:
            raise ValueError("endpoints must be >= 1")


def resolve_config(cls, config, legacy_kwargs, old: str, new: str):
    """Normalise the (config | dict | legacy kwargs) calling convention.

    ``config`` may be an instance of ``cls``, a dict for
    ``cls.from_dict``, or ``None``; ``legacy_kwargs`` are pre-dataclass
    keyword arguments, accepted with a :class:`DeprecationWarning` and
    merged *into* the config (they override its fields, preserving the
    old call sites' semantics exactly).
    """
    if config is None:
        config = cls()
    elif isinstance(config, dict):
        config = cls.from_dict(config)
    elif not isinstance(config, cls):
        raise TypeError(
            f"expected {cls.__name__}, dict, or None — got {type(config).__name__}"
        )
    if legacy_kwargs:
        deprecated_call(old, new)
        config = config.replace(**legacy_kwargs)
    return config
