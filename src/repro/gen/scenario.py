"""The seeded scenario generator.

One root seed expands — through :func:`~repro.runner.seeds.derive_seed`
sub-streams, so every sampled axis is independent and process-stable —
into a full scenario: deployment layout, per-region heterogeneous
traffic programs, and a correlated adversity program rendered as an
ordinary :class:`~repro.faults.plan.FaultPlan`. The two-step API
(:meth:`ScenarioGenerator.generate` for everything known before
deployment, :meth:`ScenarioGenerator.adversity` once VM ids exist)
mirrors how the runtime actually boots: traffic shapes the job, faults
target the deployed VMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import GenConfig
from repro.faults.plan import FaultPlan
from repro.gen.adversity import (
    batch_window,
    event_count,
    link_flap,
    regional_outage,
    slow_burn,
)
from repro.gen.traffic import (
    FlashCrowd,
    SourceProgram,
    TrafficProgram,
    render_rates,
    render_sizes,
)
from repro.runner.seeds import derive_seed
from repro.workloads.mixes import WORKLOAD_SHAPES

#: Region universe the generator samples deployments from.
REGION_CODES = ("NEU", "WEU", "NUS", "SUS", "EUS", "WUS")

#: Named generator presets (the ``profile`` axis of ``sage soak``).
GEN_PROFILES: dict[str, GenConfig] = {
    # Diurnal traffic only — the control arm: if this one trips the
    # auditor, the bug is in the pipeline, not the adversity.
    "calm": GenConfig(
        diurnal_amplitude=0.2,
        flash_crowds_per_day=1.0,
        outages_per_day=0.0,
        flaps_per_day=0.0,
        slow_burns_per_day=0.0,
        dup_windows_per_day=0.0,
        drop_windows_per_day=0.0,
    ),
    # Strong diurnal swings + flash crowds, light network trouble.
    "diurnal": GenConfig(
        diurnal_amplitude=0.7,
        flash_crowds_per_day=6.0,
        outages_per_day=0.0,
        flaps_per_day=3.0,
        slow_burns_per_day=1.0,
        dup_windows_per_day=1.0,
        drop_windows_per_day=1.0,
    ),
    # The default: everything the generator knows, at moderate rates.
    "adversarial": GenConfig(),
    # Maximum correlated hostility the recovery machinery must absorb.
    "hostile": GenConfig(
        n_sites=4,
        diurnal_amplitude=0.8,
        flash_crowds_per_day=8.0,
        flash_peak_max=10.0,
        outages_per_day=4.0,
        flaps_per_day=12.0,
        slow_burns_per_day=4.0,
        dup_windows_per_day=6.0,
        drop_windows_per_day=6.0,
    ),
}


@dataclass(frozen=True)
class GeneratedScenario:
    """Everything :meth:`ScenarioGenerator.generate` sampled."""

    seed: int
    profile: str
    hours: float
    site_regions: tuple[str, ...]
    aggregation_region: str
    #: Region → VM count, aggregation region included.
    deployment: dict[str, int] = field(default_factory=dict)
    traffic: TrafficProgram = field(default_factory=TrafficProgram)
    window_s: float = 30.0

    @property
    def horizon_s(self) -> float:
        return self.hours * 3600.0

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "hours": self.hours,
            "site_regions": list(self.site_regions),
            "aggregation_region": self.aggregation_region,
            "deployment": dict(sorted(self.deployment.items())),
            "window_s": self.window_s,
            "traffic": self.traffic.summary(),
        }


class ScenarioGenerator:
    """Expands ``(seed, GenConfig)`` into traffic + adversity programs."""

    def __init__(
        self, seed: int, config: GenConfig | None = None, profile: str = "custom"
    ) -> None:
        if profile in GEN_PROFILES and config is None:
            config = GEN_PROFILES[profile]
        self.seed = seed
        self.profile = profile
        self.config = config or GenConfig()

    def _rng(self, *scope: str) -> np.random.Generator:
        return np.random.Generator(
            np.random.PCG64(derive_seed(self.seed, "gen", self.profile, *scope))
        )

    # ------------------------------------------------------------------
    def generate(self, hours: float) -> GeneratedScenario:
        """Sample layout + traffic (everything known pre-deployment)."""
        if hours <= 0:
            raise ValueError("hours must be positive")
        cfg = self.config
        horizon = hours * 3600.0
        rng = self._rng("layout")
        codes = list(REGION_CODES)
        agg_idx = int(rng.integers(len(codes)))
        aggregation_region = codes.pop(agg_idx)
        n_sites = min(cfg.n_sites, len(codes))
        site_idx = rng.choice(len(codes), size=n_sites, replace=False)
        site_regions = tuple(codes[i] for i in sorted(int(j) for j in site_idx))
        deployment = {
            region: int(
                rng.integers(cfg.vms_per_site_min, cfg.vms_per_site_max + 1)
            )
            for region in site_regions
        }
        deployment[aggregation_region] = max(4, cfg.vms_per_site_max)

        programs: list[SourceProgram] = []
        for region in site_regions:
            mix_rng = self._rng("mix", region)
            n_shapes = int(
                mix_rng.integers(
                    cfg.shapes_per_site_min, cfg.shapes_per_site_max + 1
                )
            )
            n_shapes = min(n_shapes, len(WORKLOAD_SHAPES))
            shape_idx = mix_rng.choice(
                len(WORKLOAD_SHAPES), size=n_shapes, replace=False
            )
            for i in sorted(int(j) for j in shape_idx):
                shape = WORKLOAD_SHAPES[i]
                src_rng = self._rng("traffic", region, shape.name)
                base = float(
                    src_rng.uniform(cfg.base_rate_min, cfg.base_rate_max)
                ) * shape.rate_scale
                n_keys = int(src_rng.integers(cfg.keys_min, cfg.keys_max + 1))
                crowds = [
                    FlashCrowd(
                        t_peak=float(src_rng.uniform(0.05, 0.95)) * horizon,
                        peak_factor=float(
                            src_rng.uniform(cfg.flash_peak_min, cfg.flash_peak_max)
                        ),
                        rise_s=cfg.flash_rise_s,
                        decay_s=cfg.flash_decay_s,
                    )
                    for _ in range(
                        event_count(src_rng, cfg.flash_crowds_per_day, hours)
                    )
                ]
                rates = render_rates(
                    src_rng,
                    horizon,
                    cfg.schedule_resolution_s,
                    base,
                    cfg.diurnal_amplitude,
                    cfg.diurnal_period_s,
                    crowds,
                )
                sizes = render_sizes(
                    src_rng,
                    horizon,
                    cfg.schedule_resolution_s,
                    shape.record_bytes,
                    cfg.drift_amplitude,
                    cfg.drift_period_s,
                )
                programs.append(
                    SourceProgram(
                        name=f"{shape.name}-{region.lower()}",
                        region=region,
                        shape_name=shape.name,
                        n_keys=n_keys,
                        rates=rates,
                        sizes=sizes,
                    )
                )
        return GeneratedScenario(
            seed=self.seed,
            profile=self.profile,
            hours=hours,
            site_regions=site_regions,
            aggregation_region=aggregation_region,
            deployment=deployment,
            traffic=TrafficProgram(sources=tuple(programs)),
            window_s=cfg.window_s,
        )

    # ------------------------------------------------------------------
    def adversity(
        self,
        scenario: GeneratedScenario,
        vm_ids_by_region: dict[str, list[str]],
    ) -> FaultPlan:
        """Sample the fault plan against the *deployed* VM ids.

        Times are relative to injector arming. Every event lands inside
        ``[2%, 75%]`` of the horizon and every outage is bounded, so
        the final quarter of the run is a recovery window — the soak
        asserts the loss identity at true quiescence, which requires
        the plan to actually end. The aggregation region is never
        taken down whole: a dead aggregator cannot emit, and the soak
        is measuring recovery of the *sites*, not aggregator HA (the
        overload scenario covers that separately).
        """
        cfg = self.config
        scn = scenario
        horizon = scn.horizon_s
        t_lo, t_hi = 0.02 * horizon, 0.75 * horizon
        max_outage = min(600.0, 0.1 * horizon)
        plan = FaultPlan()
        links = [(r, scn.aggregation_region) for r in scn.site_regions]

        rng = self._rng("adversity", "outage")
        for _ in range(event_count(rng, cfg.outages_per_day, scn.hours)):
            region = scn.site_regions[int(rng.integers(len(scn.site_regions)))]
            t = float(rng.uniform(t_lo, t_hi))
            outage = min(
                max_outage, float(rng.exponential(cfg.outage_mean_s)) + 30.0
            )
            peers = [scn.aggregation_region] + [
                r for r in scn.site_regions if r != region
            ]
            regional_outage(
                plan,
                rng,
                t,
                region,
                vm_ids_by_region.get(region, []),
                peers,
                outage,
                cfg.outage_jitter_s,
            )

        rng = self._rng("adversity", "flap")
        for _ in range(event_count(rng, cfg.flaps_per_day, scn.hours)):
            link = links[int(rng.integers(len(links)))]
            t = float(rng.uniform(t_lo, t_hi))
            link_flap(
                plan, rng, t, link,
                cfg.flap_scale_min, cfg.flap_scale_max,
                min(cfg.flap_mean_s, max_outage),
            )

        rng = self._rng("adversity", "burn")
        for _ in range(event_count(rng, cfg.slow_burns_per_day, scn.hours)):
            link = links[int(rng.integers(len(links)))]
            t = float(rng.uniform(t_lo, t_hi))
            slow_burn(
                plan, rng, t, link,
                min(cfg.slow_burn_ramp_s, 2.0 * max_outage),
                cfg.slow_burn_floor,
            )

        rng = self._rng("adversity", "batch")
        for _ in range(event_count(rng, cfg.dup_windows_per_day, scn.hours)):
            t = float(rng.uniform(t_lo, t_hi))
            batch_window(plan, rng, t, "dup", cfg.batch_window_mean_s)
        for _ in range(event_count(rng, cfg.drop_windows_per_day, scn.hours)):
            t = float(rng.uniform(t_lo, t_hi))
            batch_window(plan, rng, t, "drop", cfg.batch_window_mean_s)

        # Leader kills are the one sanctioned aggregator-side adversity:
        # they do not take the region down whole — an armed control
        # plane fails over to a warm standby, which is exactly what the
        # event exists to exercise. Without a control plane the events
        # are recorded no-ops.
        if cfg.leader_kills_per_day > 0:
            rng = self._rng("adversity", "leader")
            for _ in range(
                event_count(rng, cfg.leader_kills_per_day, scn.hours)
            ):
                t = float(rng.uniform(t_lo, t_hi))
                plan.kill_leader(t, recovery=max_outage)
        return plan


__all__ = [
    "GEN_PROFILES",
    "REGION_CODES",
    "GeneratedScenario",
    "ScenarioGenerator",
]
