"""repro.gen: seeded adversarial scenario generation + soak harness.

The generator turns one root seed into a full scenario — deployment
layout, heterogeneous time-varying traffic, and a correlated fault
program — and the soak runner executes it over simulated days with the
SLO auditor checking invariants continuously. Everything renders into
existing primitives (``ScheduleSource`` rate programs, ``FaultPlan``
schedules), so generated scenarios replay bit-identically through the
same machinery the scripted scenarios use.
"""

from repro.gen.adversity import regional_outage, slow_burn
from repro.gen.scenario import (
    GEN_PROFILES,
    REGION_CODES,
    GeneratedScenario,
    ScenarioGenerator,
)
from repro.gen.soak import SoakResult, SoakRunner, run_soak
from repro.gen.traffic import (
    FlashCrowd,
    RateSchedule,
    SourceProgram,
    TrafficProgram,
)

__all__ = [
    "GEN_PROFILES",
    "REGION_CODES",
    "FlashCrowd",
    "GeneratedScenario",
    "RateSchedule",
    "ScenarioGenerator",
    "SoakResult",
    "SoakRunner",
    "SourceProgram",
    "TrafficProgram",
    "regional_outage",
    "run_soak",
    "slow_burn",
]
