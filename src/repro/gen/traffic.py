"""Traffic programs: time-varying rate schedules for generated sources.

A :class:`RateSchedule` is a piecewise-constant function rendered once
at a fixed resolution — the generator composes diurnal curves, flash
crowds, and slow drift analytically, then samples the product onto the
grid. Rendering up front (instead of evaluating closures at emit time)
makes the schedule a plain list of floats: trivially canonical for
digests, cheap at runtime (O(1) lookups), and directly comparable in
the determinism tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.streaming.sources import ScheduleSource
from repro.workloads.mixes import WORKLOAD_SHAPES, WorkloadShape

_SHAPES_BY_NAME = {shape.name: shape for shape in WORKLOAD_SHAPES}


@dataclass(frozen=True)
class RateSchedule:
    """Piecewise-constant values on a uniform grid starting at t=0.

    ``at(t)`` clamps outside the grid (first value before 0, last value
    past the end), so a source that outlives its program keeps emitting
    at the final rate instead of going dark mid-drain.
    """

    resolution: float
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if not self.values:
            raise ValueError("schedule needs at least one value")

    def at(self, t: float) -> float:
        idx = int(t // self.resolution)
        if idx < 0:
            idx = 0
        elif idx >= len(self.values):
            idx = len(self.values) - 1
        return self.values[idx]

    @property
    def horizon(self) -> float:
        return self.resolution * len(self.values)

    @property
    def mean(self) -> float:
        return float(sum(self.values)) / len(self.values)

    @property
    def peak(self) -> float:
        return float(max(self.values))

    def to_dict(self) -> dict:
        return {"resolution": self.resolution, "values": list(self.values)}


@dataclass(frozen=True)
class FlashCrowd:
    """One flash-crowd event: linear rise to a peak, exponential decay."""

    t_peak: float
    peak_factor: float
    rise_s: float
    decay_s: float

    def factor(self, t: float) -> float:
        """Rate multiplier contributed at time ``t`` (1.0 = no effect)."""
        if t < self.t_peak - self.rise_s:
            return 1.0
        if t < self.t_peak:
            frac = 1.0 - (self.t_peak - t) / self.rise_s
            return 1.0 + (self.peak_factor - 1.0) * frac
        return 1.0 + (self.peak_factor - 1.0) * math.exp(
            -(t - self.t_peak) / self.decay_s
        )


@dataclass(frozen=True)
class SourceProgram:
    """One generated source: a workload shape bound to rendered schedules."""

    name: str
    region: str
    shape_name: str
    n_keys: int
    rates: RateSchedule
    sizes: RateSchedule

    @property
    def shape(self) -> WorkloadShape:
        return _SHAPES_BY_NAME[self.shape_name]

    def build_source(self, tick: float = 1.0) -> ScheduleSource:
        """Materialise as a runtime source (rates relative to first tick)."""
        shape = self.shape
        return ScheduleSource(
            name=self.name,
            rate_fn=self.rates.at,
            keys=shape.keys(self.n_keys),
            key_weights=shape.key_weights(self.n_keys),
            bytes_fn=self.sizes.at,
            record_bytes=shape.record_bytes,
            tick=tick,
            integrate_step=min(30.0, max(1.0, self.rates.resolution / 2.0)),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "region": self.region,
            "shape": self.shape_name,
            "n_keys": self.n_keys,
            "mean_rate": self.rates.mean,
            "peak_rate": self.rates.peak,
        }


@dataclass(frozen=True)
class TrafficProgram:
    """All generated sources of one scenario."""

    sources: tuple[SourceProgram, ...] = field(default_factory=tuple)

    def by_region(self) -> dict[str, list[SourceProgram]]:
        out: dict[str, list[SourceProgram]] = {}
        for program in self.sources:
            out.setdefault(program.region, []).append(program)
        return out

    def mean_rate(self, region: str | None = None) -> float:
        return sum(
            p.rates.mean
            for p in self.sources
            if region is None or p.region == region
        )

    def peak_rate(self, region: str | None = None) -> float:
        """Worst instantaneous aggregate rate (sum of per-source peaks)."""
        return sum(
            p.rates.peak
            for p in self.sources
            if region is None or p.region == region
        )

    def summary(self) -> dict:
        return {
            "sources": [p.to_dict() for p in self.sources],
            "mean_rate": self.mean_rate(),
            "peak_rate": self.peak_rate(),
        }


def render_rates(
    rng: np.random.Generator,
    horizon: float,
    resolution: float,
    base_rate: float,
    diurnal_amplitude: float,
    diurnal_period_s: float,
    crowds: list[FlashCrowd],
) -> RateSchedule:
    """Sample ``base · diurnal · crowd`` onto the grid.

    The diurnal phase is drawn from ``rng`` (regions peak at different
    wall-clock hours); overlapping flash crowds multiply through their
    strongest member rather than stacking, so sampled pile-ups cannot
    drive the rate to absurdity.
    """
    phase = float(rng.uniform(0.0, 2.0 * math.pi))
    n = max(1, int(math.ceil(horizon / resolution)))
    values = []
    for i in range(n):
        t = (i + 0.5) * resolution
        diurnal = 1.0 + diurnal_amplitude * math.sin(
            2.0 * math.pi * t / diurnal_period_s + phase
        )
        crowd = 1.0
        for c in crowds:
            crowd = max(crowd, c.factor(t))
        values.append(round(base_rate * diurnal * crowd, 6))
    return RateSchedule(resolution=resolution, values=tuple(values))


def render_sizes(
    rng: np.random.Generator,
    horizon: float,
    resolution: float,
    nominal_bytes: float,
    drift_amplitude: float,
    drift_period_s: float,
) -> RateSchedule:
    """Slow sinusoidal drift of record sizes around the shape nominal."""
    phase = float(rng.uniform(0.0, 2.0 * math.pi))
    n = max(1, int(math.ceil(horizon / resolution)))
    values = tuple(
        round(
            nominal_bytes
            * (
                1.0
                + drift_amplitude
                * math.sin(
                    2.0 * math.pi * (i + 0.5) * resolution / drift_period_s
                    + phase
                )
            ),
            6,
        )
        for i in range(n)
    )
    return RateSchedule(resolution=resolution, values=values)


__all__ = [
    "FlashCrowd",
    "RateSchedule",
    "SourceProgram",
    "TrafficProgram",
    "render_rates",
    "render_sizes",
]
