"""Adversity programs: generated fault schedules.

Everything here renders into an ordinary
:class:`~repro.faults.plan.FaultPlan`, so the existing injector replays
generated adversity exactly like the scripted chaos scenarios — same
relative-to-arming clock, same ordered replay log, same determinism
contract. The builders add the *correlated* patterns the hand-written
plans never exercised: region-wide outages (every VM and every link of
a region inside one jittered window), slow-burn capacity ramps, and
recurring duplicate/drop windows.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultPlan


def regional_outage(
    plan: FaultPlan,
    rng: np.random.Generator,
    t: float,
    region: str,
    vm_ids: list[str],
    peer_regions: list[str],
    outage_s: float,
    jitter_s: float,
) -> FaultPlan:
    """Fail an entire region: all its VMs and all its links, together.

    Each element goes down at ``t + U(0, jitter)`` and comes back after
    ``outage + U(0, jitter)`` — correlated like a real zonal incident
    (one blast radius, slightly ragged edges), not like independent
    faults that happen to overlap. Links are cut in *both* directions
    to every peer region, so nothing routes around the dead region
    through a half-open pair.
    """
    if outage_s <= 0:
        raise ValueError("outage_s must be positive")
    if jitter_s < 0:
        raise ValueError("jitter_s must be >= 0")
    for vm_id in vm_ids:
        start = t + float(rng.uniform(0.0, jitter_s)) if jitter_s else t
        back = outage_s + (float(rng.uniform(0.0, jitter_s)) if jitter_s else 0.0)
        plan.crash_vm(start, vm_id, restart_after=back)
    for peer in peer_regions:
        if peer == region:
            continue
        for src, dst in ((region, peer), (peer, region)):
            start = t + float(rng.uniform(0.0, jitter_s)) if jitter_s else t
            back = outage_s + (
                float(rng.uniform(0.0, jitter_s)) if jitter_s else 0.0
            )
            plan.link_down(start, src, dst, duration=back)
    return plan


def slow_burn(
    plan: FaultPlan,
    rng: np.random.Generator,
    t: float,
    link: tuple[str, str],
    ramp_s: float,
    floor: float,
    steps: int = 6,
) -> FaultPlan:
    """Gradually degrade a link's capacity to ``floor``, then recover.

    Rendered as a staircase of ``LINK_FLAP`` events with descending
    capacity scales. Each step's restore fires at 90% of the step
    spacing — strictly *before* the next step applies — because the
    injector's un-flap resets the scale to 1.0: a restore landing after
    the next step would silently cancel it. The last step holds one
    full spacing and its restore ends the burn.
    """
    if steps < 2:
        raise ValueError("slow burn needs at least 2 steps")
    if ramp_s <= 0:
        raise ValueError("ramp_s must be positive")
    spacing = ramp_s / steps
    for i in range(steps):
        frac = (i + 1) / steps
        scale = round(1.0 - (1.0 - floor) * frac, 6)
        duration = spacing if i == steps - 1 else 0.9 * spacing
        plan.flap_link(t + i * spacing, link[0], link[1], scale, duration)
    return plan


def link_flap(
    plan: FaultPlan,
    rng: np.random.Generator,
    t: float,
    link: tuple[str, str],
    scale_min: float,
    scale_max: float,
    mean_s: float,
) -> FaultPlan:
    """One capacity flap with a sampled severity and duration."""
    scale = round(float(rng.uniform(scale_min, scale_max)), 6)
    duration = round(float(rng.exponential(mean_s)) + 10.0, 6)
    return plan.flap_link(t, link[0], link[1], scale, duration)


def batch_window(
    plan: FaultPlan,
    rng: np.random.Generator,
    t: float,
    kind: str,
    mean_s: float,
    origin: str = "*",
) -> FaultPlan:
    """A duplicate- or drop-batch window of sampled length."""
    duration = round(float(rng.exponential(mean_s)) + 10.0, 6)
    probability = round(float(rng.uniform(0.3, 1.0)), 6)
    if kind == "dup":
        return plan.duplicate_batches(t, duration, origin, probability)
    if kind == "drop":
        return plan.drop_batches(t, duration, origin, probability)
    raise ValueError(f"unknown batch window kind {kind!r}")


def event_count(rng: np.random.Generator, per_day: float, hours: float) -> int:
    """Poisson draw of how many events a ``per_day`` rate yields."""
    if per_day <= 0 or hours <= 0:
        return 0
    return int(rng.poisson(per_day * hours / 24.0))


__all__ = [
    "batch_window",
    "event_count",
    "link_flap",
    "regional_outage",
    "slow_burn",
]
