"""The long-horizon soak harness.

:func:`run_soak` expands a :class:`~repro.config.SoakConfig` through the
:class:`~repro.gen.scenario.ScenarioGenerator` and runs the generated
scenario for simulated *days*, with the SLO auditor armed the whole way
(watermark monotonicity, exactly-once emission, and the continuous loss
bound checked at every audit tick — not only at quiescence). The run
drains to true quiescence before the final loss-identity check, and the
resulting :class:`SoakResult` carries a canonical sha256 digest: two
runs with the same seed must produce the same digest, byte for byte.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from hashlib import sha256

from repro.cloud.deployment import CloudEnvironment
from repro.config import ControlConfig, SoakConfig, resolve_config
from repro.control.plane import ControlPlane
from repro.core.engine import SageEngine
from repro.faults.injector import FaultInjector
from repro.flow.policy import FlowConfig
from repro.gen.scenario import ScenarioGenerator
from repro.obs.audit import SLOAuditor
from repro.report import ScenarioReport, canonical_json, canonical_value, metrics_snapshot
from repro.simulation.units import format_bytes
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime, LatencyStats
from repro.streaming.shipping import ReliableShipping, SageShipping
from repro.streaming.windows import TumblingWindows


@dataclass
class SoakResult:
    """Deterministic outcome of one generated soak (digest-stable)."""

    seed: int
    profile: str
    hours: float
    scenario: dict = field(default_factory=dict)
    #: Applied-fault counts by kind plus total, from the injector log.
    fault_counts: dict = field(default_factory=dict)
    faults_applied: int = 0
    sources: int = 0
    ingested: int = 0
    counted: int = 0
    results: int = 0
    shed: int = 0
    late_dropped: int = 0
    late_partial_records: int = 0
    abandoned_records: int = 0
    duplicates_dropped: int = 0
    retries: int = 0
    #: Control-plane rollups (all zero when ``failovers`` is unarmed).
    failovers: int = 0
    failover_mttr_max: float = 0.0
    epochs: int = 0
    standby_syncs: int = 0
    admission_rejected: int = 0
    retry_budget_exhausted: int = 0
    backlog_peaks: dict[str, int] = field(default_factory=dict)
    max_deferred: int = 0
    checkpoints: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats.empty)
    lineage: dict = field(default_factory=dict)
    #: Per-phase rollups: results, p99 latency, lineage completeness,
    #: cumulative violations at phase end.
    phases: list[dict] = field(default_factory=list)
    wan_bytes: float = 0.0
    audit: dict = field(default_factory=dict)
    cost: dict = field(default_factory=dict)
    usd_per_1k: float = 0.0
    slo_violations: int = 0
    strict_slo: bool = True
    drained: bool = True

    @property
    def lost(self) -> int:
        return max(0, self.ingested - self.counted)

    @property
    def explained(self) -> int:
        return (
            self.shed
            + self.late_dropped
            + self.late_partial_records
            + self.abandoned_records
            + self.admission_rejected
        )

    @property
    def accounted(self) -> bool:
        return self.lost == self.explained

    @property
    def clean(self) -> bool:
        ok = self.accounted and self.drained
        if self.strict_slo:
            ok = ok and self.slo_violations == 0
        return ok

    @property
    def digest(self) -> str:
        """Canonical sha256 over the deterministic payload.

        Same seed + same config → byte-identical digest; this is the
        acceptance handle for soak reproducibility (a property, not a
        field, so it never feeds back into its own hash).
        """
        return sha256(canonical_json(canonical_value(self)).encode()).hexdigest()

    def describe(self) -> str:
        regions = ", ".join(self.scenario.get("site_regions", []))
        peaks = ", ".join(
            f"{region}={peak}"
            for region, peak in sorted(self.backlog_peaks.items())
        )
        lines = [
            f"soak run: profile={self.profile} seed={self.seed} "
            f"{self.hours:.1f} simulated hours",
            "",
            f"generated scenario: sites [{regions}] -> "
            f"{self.scenario.get('aggregation_region', '?')}, "
            f"{self.sources} sources, "
            f"mean {self.scenario.get('traffic', {}).get('mean_rate', 0.0):.1f} rec/s",
            f"adversity: {self.faults_applied} faults applied "
            + (
                "("
                + ", ".join(
                    f"{kind}={n}" for kind, n in sorted(self.fault_counts.items())
                )
                + ")"
                if self.fault_counts
                else "(none)"
            ),
            (
                f"failovers: {self.failovers} "
                f"(MTTR max {self.failover_mttr_max:.1f}s, "
                f"final epoch {self.epochs}, "
                f"{self.standby_syncs} standby syncs)"
                if self.failovers
                else "failovers: none (control plane unarmed)"
            ),
            f"backlog peaks: {peaks or '-'}; "
            f"peak source deferral {self.max_deferred}",
            f"shipping: {self.retries} retries, "
            f"{self.abandoned_records} records abandoned; "
            f"aggregator dedup {self.duplicates_dropped} batches; "
            f"checkpoints {self.checkpoints}",
            "",
            f"records ingested: {self.ingested}",
            f"records counted:  {self.counted} in {self.results} windows "
            f"(lost {self.lost}, "
            + ("accounted" if self.accounted else "UNACCOUNTED")
            + ")",
            self.latency.describe(),
            f"wide-area bytes: {format_bytes(self.wan_bytes)}; "
            f"${self.usd_per_1k:.4f} per 1k records",
            f"auditor: {self.audit.get('checks', 0)} checks, "
            f"{self.slo_violations} violations"
            + (" (strict)" if self.strict_slo else ""),
        ]
        for phase in self.phases:
            p99 = phase.get("p99")
            lines.append(
                f"  phase {phase['phase']:>2}  "
                f"[{phase['t0'] / 3600.0:5.1f}h, {phase['t1'] / 3600.0:5.1f}h)  "
                f"{phase['results']:>6} windows  "
                + (f"p99 {p99:7.1f}s  " if p99 is not None else "p99     -    ")
                + f"lineage {phase['lineage_complete']:>6}  "
                f"violations {phase['violations']}"
            )
        lines += [
            "",
            f"digest: {self.digest}",
            "verdict: "
            + ("CLEAN — soak invariants held" if self.clean
               else "SOAK INVARIANTS VIOLATED"),
        ]
        return "\n".join(lines)


class SoakRunner:
    """Executes one generated scenario end to end.

    Split from :func:`run_soak` so tests can reach into the pieces
    (generator output, fault plan, phase boundaries) without rerunning
    the whole horizon.
    """

    def __init__(self, config: SoakConfig, observer=None) -> None:
        self.config = config
        self.observer = observer
        self.generator = ScenarioGenerator(config.seed, profile=config.profile)
        self.scenario = self.generator.generate(config.hours)

    # ------------------------------------------------------------------
    def phase_bounds(self) -> list[tuple[float, float]]:
        """Relative [t0, t1) phase windows covering the horizon."""
        cfg = self.config
        horizon = self.scenario.horizon_s
        if cfg.phase_hours > 0:
            n = max(1, int(math.ceil(cfg.hours / cfg.phase_hours)))
        else:
            n = min(6, max(1, int(cfg.hours)))
        width = horizon / n
        return [(i * width, (i + 1) * width) for i in range(n)]

    # ------------------------------------------------------------------
    def _schedule_kills(self, plan, plane) -> None:
        """Spread exactly N unplanned leader kills across the middle.

        Kills are evenly spaced over ``[15%, 70%]`` of the horizon — the
        same deterministic-event window the generated adversity uses —
        and must be at least one full recovery (MTTR bound + respawn
        delay + margin) apart, so every kill hits a settled plane with a
        live leader and the run measures N independent failovers.
        """
        n = self.config.failovers
        horizon = self.scenario.horizon_s
        recovery = plane.config.mttr_bound + plane.config.respawn_delay
        lo, hi = 0.15 * horizon, 0.70 * horizon
        step = (hi - lo) / (n - 1) if n > 1 else 0.0
        if n > 1 and step < recovery + 60.0:
            raise ValueError(
                f"{n} failovers need at least "
                f"{(recovery + 60.0) * (n - 1) / 0.55 / 3600.0:.2f} soak "
                f"hours to keep kills a full recovery apart"
            )
        for i in range(n):
            plan.kill_leader(lo + i * step, recovery=recovery)

    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        cfg = self.config
        scn = self.scenario
        wall0 = time.perf_counter()

        flow = FlowConfig(
            policy=cfg.policy,
            max_backlog=cfg.max_backlog,
            max_inflight=8,
            max_pending=None if cfg.policy == "block" else 64,
            breaker_threshold=3,
            breaker_reset=20.0,
        )
        env = CloudEnvironment(
            seed=cfg.seed, variability_sigma=0.0, glitches=False
        )
        engine = SageEngine(
            env, deployment_spec=dict(scn.deployment), observer=self.observer
        )
        engine.start(learning_phase=120.0)

        by_region = scn.traffic.by_region()
        job = StreamJob(
            name="soak",
            sites=[
                SiteSpec(
                    region,
                    [p.build_source() for p in by_region.get(region, [])],
                )
                for region in scn.site_regions
            ],
            aggregation_region=scn.aggregation_region,
            windows=TumblingWindows(scn.window_s),
            aggregate=builtin_aggregate("count"),
            finalize_grace=120.0,
            flow=flow,
        )
        factory = ReliableShipping.factory(
            SageShipping.factory(n_nodes=2, plan_ttl=30.0),
            delivery_timeout=cfg.delivery_timeout,
            max_retries=cfg.max_retries,
            max_inflight=flow.max_inflight,
            max_pending=flow.max_pending,
            breaker=True,
            breaker_threshold=flow.breaker_threshold,
            breaker_reset=flow.breaker_reset,
        )
        # Site capacity sits at ~2.5× the generated mean: diurnal peaks
        # clear it comfortably, flash crowds exceed it — so overload
        # handling is actually exercised, not idled through.
        per_vm = max(
            5.0,
            max(
                2.5 * scn.traffic.mean_rate(region) / scn.deployment[region]
                for region in scn.site_regions
            ),
        )
        runtime = GeoStreamRuntime(
            engine, job, factory, per_vm_records_per_s=per_vm
        )
        store = None
        # Failover soaks need the exactly-once substrate even when the
        # config left checkpointing off.
        checkpoint_interval = cfg.checkpoint_interval
        if cfg.failovers > 0 and checkpoint_interval <= 0:
            checkpoint_interval = 30.0
        if checkpoint_interval > 0:
            store = runtime.enable_checkpointing(
                interval=checkpoint_interval
            ).store
        plane = None
        if cfg.failovers > 0:
            # Standbys co-locate with the first two site regions (each
            # has >= 2 VMs; the standby takes the last one), so the
            # generated layout needs no extra regions and a promotion
            # exercises the site->local-aggregator handover path too.
            plane = ControlPlane(engine, runtime, ControlConfig())
            plane.add_leader()
            for region in scn.site_regions[:2]:
                plane.add_standby(region)
            plane.start()
        auditor = SLOAuditor(
            engine,
            runtime,
            max_latency_s=cfg.slo_max_latency_s,
            max_usd_per_1k=cfg.slo_max_usd_per_1k,
            check_interval=cfg.check_interval,
            continuous_loss=True,
            control=plane,
        ).start()
        if plane is not None:
            plane.auditor = auditor

        vm_ids = {
            region: [vm.vm_id for vm in engine.deployment.vms(region)]
            for region in scn.site_regions
        }
        plan = self.generator.adversity(scn, vm_ids)
        if plane is not None:
            self._schedule_kills(plan, plane)
        injector = FaultInjector(engine, plan, observer=self.observer).arm()

        t0 = engine.sim.now
        runtime.start()
        phase_marks: list[dict] = []
        for i, (_, rel_end) in enumerate(self.phase_bounds()):
            engine.run_until(t0 + rel_end)
            phase_marks.append(
                {
                    "phase": i,
                    "t1": rel_end,
                    "violations": len(auditor.violations),
                }
            )

        # Quiet the sources (drain the deferred tail), outlive the last
        # windowed fault, then drain to true quiescence — the terminal
        # loss identity is only meaningful over an empty pipe.
        for site in runtime.sites.values():
            site.stop_sources(drain=True)
        fault_end = t0 + plan.horizon() + 60.0
        if engine.sim.now < fault_end:
            engine.run_until(fault_end)
        drain_cap = engine.sim.now + 3600.0
        while runtime.in_pipe() and engine.sim.now < drain_cap:
            engine.run_until(engine.sim.now + 10.0)
        drained = runtime.in_pipe() == 0
        engine.run_until(engine.sim.now + job.watermark_lag + 30.0)
        runtime.stop()
        if plane is not None:
            plane.stop()
        engine.run_until(engine.sim.now + job.finalize_grace + 60.0)
        engine.env.finalize()

        audit_report = auditor.finish(quiescent=True)
        cost = engine.ledger.summary(
            windows=len(runtime.results) or None,
            records=runtime.records_ingested() or None,
        )

        all_results = runtime.results
        phases = []
        for i, (rel_start, rel_end) in enumerate(self.phase_bounds()):
            lo, hi = t0 + rel_start, t0 + rel_end
            last = i == len(phase_marks) - 1
            bucket = [
                r for r in all_results
                if lo <= r.emitted_at < hi or (last and r.emitted_at >= hi)
            ]
            stats = LatencyStats.from_results(bucket)
            p99 = stats.p99 if stats else None
            phases.append(
                {
                    "phase": i,
                    "t0": rel_start,
                    "t1": rel_end,
                    "results": len(bucket),
                    "records": sum(r.record_count for r in bucket),
                    "p99": p99,
                    "lineage_complete": sum(
                        1 for r in bucket
                        if r.lineage is not None and r.lineage.complete
                    ),
                    "violations": phase_marks[i]["violations"],
                }
            )

        sites = list(runtime.sites.values())
        backends = [site.shipping for site in sites]
        sources = [src for site in sites for src in site.spec.sources]
        agg = runtime.aggregator
        result = SoakResult(
            seed=cfg.seed,
            profile=cfg.profile,
            hours=cfg.hours,
            scenario=scn.summary(),
            fault_counts=_fault_counts(injector),
            faults_applied=len(injector.log),
            sources=len(sources),
            ingested=runtime.records_ingested(),
            counted=runtime.records_in_results(),
            results=len(all_results),
            shed=runtime.records_shed(),
            late_dropped=sum(s.aggregator.late_dropped for s in sites),
            late_partial_records=agg.late_partial_records,
            abandoned_records=sum(b.records_abandoned for b in backends),
            duplicates_dropped=agg.duplicates_dropped,
            retries=sum(b.retries for b in backends),
            failovers=len(plane.failovers) if plane is not None else 0,
            failover_mttr_max=(
                plane.mttr_stats()["mttr_max"] if plane is not None else 0.0
            ),
            epochs=plane.lease.epoch if plane is not None else 0,
            standby_syncs=plane.standby_syncs if plane is not None else 0,
            admission_rejected=runtime.records_admission_rejected(),
            retry_budget_exhausted=sum(
                getattr(b, "retry_budget_exhausted", 0) for b in backends
            ),
            backlog_peaks={s.spec.region: s.max_backlog for s in sites},
            max_deferred=sum(src.max_deferred for src in sources),
            checkpoints=store.saves if store is not None else 0,
            latency=runtime.latency_stats(),
            lineage=runtime.lineage_stats(),
            phases=phases,
            wan_bytes=runtime.wan_bytes(),
            audit=audit_report.to_dict(),
            cost=cost.to_dict(),
            usd_per_1k=cost.usd_per_1k_records,
            slo_violations=len(audit_report.violations),
            strict_slo=cfg.strict_slo,
            drained=drained,
        )
        return ScenarioReport(
            scenario="soak",
            config=cfg.to_dict(),
            seed=cfg.seed,
            virtual_seconds=engine.sim.now,
            wall_seconds=time.perf_counter() - wall0,
            details=result,
            metrics=metrics_snapshot(self.observer),
        )


def _fault_counts(injector: FaultInjector) -> dict[str, int]:
    counts: dict[str, int] = {}
    for applied in injector.log:
        counts[applied.kind] = counts.get(applied.kind, 0) + 1
    return dict(sorted(counts.items()))


def run_soak(
    config: SoakConfig | dict | None = None,
    *,
    observer=None,
    **legacy,
) -> ScenarioReport:
    """Generate a scenario from the seed and soak it (virtual time).

    Accepts a :class:`~repro.config.SoakConfig` (or its dict form) like
    every other scenario entry point; returns a
    :class:`~repro.report.ScenarioReport` whose payload is the
    :class:`SoakResult` — ``report.digest`` is the reproducibility
    handle.
    """
    cfg = resolve_config(
        SoakConfig, config, legacy,
        "run_soak(seed=..., hours=..., ...)",
        "run_soak(SoakConfig(...))",
    )
    return SoakRunner(cfg, observer=observer).run()


__all__ = ["SoakResult", "SoakRunner", "run_soak"]
