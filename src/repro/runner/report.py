"""Sweep outcome: per-shard results plus cache/parallelism accounting.

The deterministic payload of a sweep is the ordered list of per-shard
canonical results; everything else (wall clocks, cache hits, job count)
is bookkeeping that legitimately varies between runs. The two are kept
strictly apart: :meth:`SweepReport.canonical_lines` and
:meth:`SweepReport.digest` cover only the payload — a ``--jobs 4`` run,
a ``--jobs 1`` run, and a warm-cache replay of either must all produce
the same digest — while :meth:`SweepReport.write_jsonl` records both for
humans and CI artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.report import canonical_json


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard of a sweep."""

    name: str
    scenario: str
    seed: int
    ok: bool
    #: Served from the result cache (no simulation executed).
    cached: bool
    wall_seconds: float
    #: Canonical result dict (``None`` iff the shard failed).
    result: dict | None = None
    error: str | None = None
    #: Shard perf bookkeeping (virtual seconds, sim speedup) — host-
    #: dependent, therefore excluded from :meth:`canonical_dict`.
    perf: dict | None = None

    def canonical_dict(self) -> dict:
        """The deterministic projection of this shard."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "seed": self.seed,
            "result": self.result,
        }


@dataclass(frozen=True)
class SweepReport:
    """Everything a sweep run produced, in task order."""

    root_seed: int
    jobs: int
    shards: tuple[ShardResult, ...]
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    #: Shards actually simulated this run (misses that were dispatched).
    executed: int

    @property
    def failures(self) -> tuple[ShardResult, ...]:
        return tuple(s for s in self.shards if not s.ok)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def canonical_lines(self) -> list[str]:
        """One deterministic JSON line per shard, in task order."""
        return [canonical_json(s.canonical_dict()) for s in self.shards]

    def digest(self) -> str:
        """SHA-256 of the canonical payload — the byte-identity anchor."""
        h = hashlib.sha256()
        for line in self.canonical_lines():
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the run log: one line per shard, then a summary line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for shard in self.shards:
                fh.write(
                    json.dumps(
                        {
                            "kind": "shard",
                            "name": shard.name,
                            "scenario": shard.scenario,
                            "seed": shard.seed,
                            "ok": shard.ok,
                            "cached": shard.cached,
                            "wall_seconds": round(shard.wall_seconds, 6),
                            "error": shard.error,
                            "perf": shard.perf,
                            "result": shard.result,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            fh.write(
                json.dumps(
                    {
                        "kind": "summary",
                        "root_seed": self.root_seed,
                        "jobs": self.jobs,
                        "shards": len(self.shards),
                        "failures": len(self.failures),
                        "cache_hits": self.cache_hits,
                        "cache_misses": self.cache_misses,
                        "executed": self.executed,
                        "wall_seconds": round(self.wall_seconds, 6),
                        "digest": self.digest(),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        return path

    def describe(self) -> str:
        from repro.analysis.tables import render_table

        lines = [
            f"sweep: {len(self.shards)} shards, jobs={self.jobs}, "
            f"root seed {self.root_seed}",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.hit_ratio:.0f}% hit ratio), "
            f"{self.executed} simulated",
            f"wall: {self.wall_seconds:.2f}s",
            f"digest: {self.digest()}",
        ]
        rows: list[list[object]] = []
        for s in self.shards:
            status = "ok" if s.ok else "FAILED"
            speedup = (s.perf or {}).get("sim_speedup", 0.0)
            rows.append([
                s.name,
                s.scenario,
                s.seed,
                "yes" if s.cached else "no",
                f"{s.wall_seconds:.2f}",
                f"{speedup:,.0f}x" if speedup else "",
                status + (f"  {s.error}" if s.error else ""),
            ])
        lines.append(
            render_table(
                ["shard", "scenario", "seed", "cached", "wall (s)",
                 "speedup", "status"],
                rows,
            )
        )
        if not self.ok:
            lines.append(f"FAILURES: {len(self.failures)}")
        return "\n".join(lines)
