"""Sweep tasks: what a shard runs, and how the worker executes it.

A :class:`SweepTask` is pure data — a shard name (its identity within
the sweep, feeding seed derivation), a scenario reference, and a config
dict *without* a seed. Scenario references are either names in the
built-in registry (``"chaos"``, ``"overload"``) or dotted import paths
``"pkg.module:callable"`` for user-defined experiments; either way the
worker process resolves them by import, so tasks pickle as plain data
and spawn-based pools see exactly what fork-based pools would.

A registered scenario is ``(config_cls, run_fn)`` where ``run_fn(cfg,
observer=None)`` returns a :class:`~repro.report.ScenarioReport`. A
dotted-path callable instead has the signature ``fn(config: dict, seed:
int) -> ScenarioReport | dict``; a dict return is taken as an
already-canonical result. Execution always normalises to the canonical
dict — the only currency the cache and the byte-identity checks trade
in.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field

from repro.report import ScenarioReport


@dataclass(frozen=True)
class SweepTask:
    """One shard of a sweep: a named, seedless scenario configuration."""

    #: Shard identity within the sweep; feeds child-seed derivation and
    #: must be unique across the sweep's tasks.
    name: str
    #: Registry name ("chaos", "overload") or "module:callable" path.
    scenario: str
    #: Scenario config as a plain dict, WITHOUT a seed — the runner
    #: injects the derived child seed.
    config: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepTask":
        return cls(
            name=data["name"],
            scenario=data["scenario"],
            config=dict(data.get("config", {})),
        )


_REGISTRY: dict[str, tuple[type, object]] = {}


def register_scenario(name: str, config_cls, run_fn) -> None:
    """Register ``name`` as a sweepable scenario.

    ``config_cls`` must provide ``from_dict`` and have a ``seed`` field;
    ``run_fn(config, observer=None)`` must return a ``ScenarioReport``.
    """
    if ":" in name:
        raise ValueError("registry names must not contain ':'")
    _REGISTRY[name] = (config_cls, run_fn)


def registered_scenarios() -> list[str]:
    _ensure_builtin()
    return sorted(_REGISTRY)


def _ensure_builtin() -> None:
    if "chaos" in _REGISTRY:
        return
    # Imported lazily: the registry must be importable from a spawn
    # worker without dragging the whole scenario stack in at module
    # import time.
    from repro.config import (
        ChaosConfig,
        OverloadConfig,
        ServeConfig,
        SoakConfig,
    )
    from repro.control.scenario import run_serve
    from repro.faults.scenario import run_chaos
    from repro.flow.scenario import run_overload
    from repro.gen.soak import run_soak

    _REGISTRY.setdefault("chaos", (ChaosConfig, run_chaos))
    _REGISTRY.setdefault("overload", (OverloadConfig, run_overload))
    _REGISTRY.setdefault("soak", (SoakConfig, run_soak))
    _REGISTRY.setdefault("serve", (ServeConfig, run_serve))


def _resolve_dotted(ref: str):
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ValueError(f"bad scenario reference {ref!r}")
    module = importlib.import_module(module_name)
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise ValueError(f"{ref!r} does not resolve to a callable")
    return fn


def execute_task(payload: dict) -> dict:
    """Run one shard to completion. Worker-side entry point.

    ``payload`` is ``{"name", "scenario", "config", "seed"}``; returns
    ``{"name", "result", "wall_seconds"}`` where ``result`` is the
    shard's canonical dict. Exceptions propagate — the pool maps them to
    failed shards.
    """
    scenario = payload["scenario"]
    config = payload["config"]
    seed = payload["seed"]
    wall0 = time.perf_counter()
    if ":" in scenario:
        report = _resolve_dotted(scenario)(dict(config), seed)
    else:
        _ensure_builtin()
        if scenario not in _REGISTRY:
            raise ValueError(
                f"unknown scenario {scenario!r}; "
                f"registered: {registered_scenarios()}"
            )
        config_cls, run_fn = _REGISTRY[scenario]
        cfg = config_cls.from_dict({**config, "seed": seed})
        report = run_fn(cfg)
    wall = time.perf_counter() - wall0
    perf = None
    if isinstance(report, ScenarioReport):
        result = report.canonical_dict()
        # Shard-level perf — bookkeeping, never canonical: wall time and
        # speedup vary per host, so they ride next to the result, not in
        # it (cache keys and digests are unaffected).
        perf = {
            "virtual_seconds": report.virtual_seconds,
            "sim_speedup": report.virtual_seconds / wall if wall > 0 else 0.0,
        }
        # Audited scenarios ride their SLO outcome next to the result so
        # the sweep JSONL answers "which shard violated what" directly.
        audit = getattr(report, "audit", None)
        if isinstance(audit, dict) and audit:
            perf["slo"] = {
                "checks": audit.get("checks", 0),
                "violations": audit.get("violation_count", 0),
                "counts_by_kind": audit.get("counts_by_kind", {}),
                "clean": audit.get("clean", True),
            }
    elif isinstance(report, dict):
        result = report
    else:
        raise TypeError(
            f"scenario {scenario!r} returned {type(report).__name__}; "
            "expected ScenarioReport or dict"
        )
    return {
        "name": payload["name"],
        "result": result,
        "wall_seconds": wall,
        "perf": perf,
    }
