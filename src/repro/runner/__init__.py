"""Parallel experiment execution: sharding, seeding, caching, reporting.

The runner turns any deterministic parameter sweep into a process-pool
job whose output is bit-identical to a serial run:

* :mod:`repro.runner.seeds` — stable child-seed derivation (SHA-256 of
  root seed + shard key; process- and platform-independent);
* :mod:`repro.runner.tasks` — :class:`SweepTask` shards and the scenario
  registry the workers resolve them against;
* :mod:`repro.runner.cache` — content-addressed result cache keyed by
  (code fingerprint, scenario, canonical config, seed);
* :mod:`repro.runner.pool` — :class:`SweepRunner`, the spawn-based pool;
* :mod:`repro.runner.report` — :class:`SweepReport` with the canonical
  digest the byte-identity guarantees are stated against.
"""

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.pool import SweepRunner
from repro.runner.report import ShardResult, SweepReport
from repro.runner.seeds import derive_seed, shard_key
from repro.runner.tasks import (
    SweepTask,
    execute_task,
    register_scenario,
    registered_scenarios,
)

__all__ = [
    "ResultCache",
    "ShardResult",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "code_fingerprint",
    "derive_seed",
    "execute_task",
    "register_scenario",
    "registered_scenarios",
    "shard_key",
]
