"""Content-addressed on-disk cache of deterministic experiment results.

Every sweep shard is a pure function of ``(code, scenario, config,
seed)`` — the simulations are deterministic by construction — so its
canonical result can be cached on disk and reused forever, until the
*code* changes. The cache key is therefore
``sha256(code fingerprint ‖ scenario ‖ canonical config ‖ seed)``:

* the **code fingerprint** hashes the source text of every module under
  ``repro`` (sorted walk, path-tagged), so any edit to simulation code
  invalidates every entry at once — coarse, but never stale;
* the **canonical config** is the sorted-key JSON of the shard's config
  dict, so semantically identical configs hit the same entry regardless
  of construction order;
* the **seed** is the shard's derived child seed.

Entries are one JSON file each under ``<root>/<key[:2]>/<key>.json``,
written atomically (temp file + rename) so a crashed run can never leave
a half-written entry that a later run would trust. Unreadable or
corrupt entries are treated as misses and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.report import canonical_json

_FINGERPRINT_CACHE: dict[str, str] = {}


def code_fingerprint() -> str:
    """SHA-256 over the source of every module in the ``repro`` package."""
    import repro

    pkg_root = Path(repro.__file__).parent
    cache_key = str(pkg_root)
    cached = _FINGERPRINT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(pkg_root.rglob("*.py")):
        digest.update(str(path.relative_to(pkg_root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[cache_key] = fingerprint
    return fingerprint


class ResultCache:
    """Content-addressed store of canonical shard results."""

    def __init__(self, root: str | Path, fingerprint: str | None = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, scenario: str, config: dict, seed: int) -> str:
        material = "\x1f".join(
            (self.fingerprint, scenario, canonical_json(config), str(int(seed)))
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, key: str, result: dict) -> Path:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"key": key, "fingerprint": self.fingerprint, "result": result},
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
