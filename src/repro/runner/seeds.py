"""Deterministic per-shard seed derivation.

A sweep gets one root seed; every shard derives its own child seed as a
stable hash of ``(root_seed, shard key)``. "Stable" is load-bearing:
the derivation must not depend on the process (``hash()`` is salted per
interpreter), the platform, or the dict ordering of the key material —
otherwise ``--jobs 4`` and ``--jobs 1`` would simulate different
universes. SHA-256 over a canonical JSON encoding gives all three
properties, and the property tests pin them across real process
boundaries.
"""

from __future__ import annotations

import hashlib

from repro.report import canonical_json

#: Child seeds live in [0, 2**63): positive, and safe for any consumer
#: that stores them in a signed 64-bit field.
SEED_BITS = 63


def shard_key(*parts) -> str:
    """Canonical string form of a shard's identity.

    Accepts any JSON-representable parts (strings, numbers, dicts,
    dataclasses); dict key order does not matter.
    """
    return canonical_json(list(parts))


def derive_seed(root_seed: int, *parts) -> int:
    """Child seed for the shard identified by ``parts`` under ``root_seed``.

    Deterministic across processes, platforms and Python versions;
    different roots or different shard keys give independent seeds.
    """
    material = f"{int(root_seed)}\x1f{shard_key(*parts)}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - SEED_BITS)
