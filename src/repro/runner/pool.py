"""The parallel sweep runner.

:class:`SweepRunner` shards a list of :class:`~repro.runner.tasks.SweepTask`
across a spawn-based process pool. The execution model keeps parallel
output bit-identical to serial:

* every shard's child seed is derived *before* dispatch, from the root
  seed and the shard name only (:func:`~repro.runner.seeds.derive_seed`)
  — never from pool scheduling;
* shards are pure functions of ``(code, scenario, config, seed)``, so
  completion order cannot matter; results are reassembled in task
  order;
* the pool uses the ``spawn`` start method even on platforms that
  default to ``fork``, so a worker sees exactly the clean-interpreter
  state the determinism tests pin.

Cache lookups happen in the parent before dispatch: a warm cache runs
zero simulations. Per-shard progress and failures are folded into the
``repro.obs`` registry under ``runner_*`` metric names.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from repro.obs import NULL_OBSERVER
from repro.runner.cache import ResultCache
from repro.runner.report import ShardResult, SweepReport
from repro.runner.seeds import derive_seed
from repro.runner.tasks import SweepTask, execute_task


class SweepRunner:
    """Run sweeps over a process pool with result caching."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        root_seed: int = 2013,
        observer=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.root_seed = root_seed
        self.cache = ResultCache(cache_dir) if cache_dir else None
        obs = observer if observer is not None else NULL_OBSERVER
        self.observer = obs
        self._m_shards = obs.counter("runner_shards_total")
        self._m_failures = obs.counter("runner_shard_failures_total")
        self._m_hits = obs.counter("runner_cache_hits_total")
        self._m_misses = obs.counter("runner_cache_misses_total")
        self._m_executed = obs.counter("runner_shards_executed_total")
        self._m_inflight = obs.gauge("runner_shards_inflight")

    def seed_for(self, task: SweepTask) -> int:
        return derive_seed(self.root_seed, task.name)

    def run(self, tasks: list[SweepTask]) -> SweepReport:
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate shard names {dupes}")
        wall0 = time.perf_counter()
        shards: dict[str, ShardResult] = {}
        hits = misses = 0

        pending: list[tuple[SweepTask, int, str | None]] = []
        for task in tasks:
            self._m_shards.inc()
            seed = self.seed_for(task)
            key = None
            if self.cache is not None:
                key = self.cache.key(task.scenario, task.config, seed)
                cached = self.cache.get(key)
                if cached is not None:
                    hits += 1
                    self._m_hits.inc()
                    shards[task.name] = ShardResult(
                        name=task.name,
                        scenario=task.scenario,
                        seed=seed,
                        ok=True,
                        cached=True,
                        wall_seconds=0.0,
                        result=cached,
                    )
                    continue
            misses += 1
            self._m_misses.inc()
            pending.append((task, seed, key))

        for task, seed, key, outcome in self._dispatch(pending):
            self._m_executed.inc()
            if isinstance(outcome, BaseException):
                self._m_failures.inc()
                shards[task.name] = ShardResult(
                    name=task.name,
                    scenario=task.scenario,
                    seed=seed,
                    ok=False,
                    cached=False,
                    wall_seconds=0.0,
                    error=f"{type(outcome).__name__}: {outcome}",
                )
                continue
            result = outcome["result"]
            if self.cache is not None and key is not None:
                self.cache.put(key, result)
            shards[task.name] = ShardResult(
                name=task.name,
                scenario=task.scenario,
                seed=seed,
                ok=True,
                cached=False,
                wall_seconds=outcome["wall_seconds"],
                result=result,
                perf=outcome.get("perf"),
            )

        return SweepReport(
            root_seed=self.root_seed,
            jobs=self.jobs,
            shards=tuple(shards[t.name] for t in tasks),
            wall_seconds=time.perf_counter() - wall0,
            cache_hits=hits,
            cache_misses=misses,
            executed=len(pending),
        )

    # ------------------------------------------------------------------
    def _dispatch(self, pending):
        """Yield ``(task, seed, key, outcome)`` for every pending shard.

        ``outcome`` is the worker's payload dict, or the exception the
        shard raised. ``jobs == 1`` executes inline — same code path as
        a worker, no pool, so single-job runs stay debuggable.
        """
        if not pending:
            return
        payloads = [
            {**task.to_dict(), "seed": seed} for task, seed, _ in pending
        ]
        if self.jobs == 1:
            for (task, seed, key), payload in zip(pending, payloads):
                self._m_inflight.set(1)
                try:
                    outcome = execute_task(payload)
                except Exception as exc:  # noqa: BLE001 - shard isolation
                    outcome = exc
                self._m_inflight.set(0)
                yield task, seed, key, outcome
            return
        ctx = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                pool.submit(execute_task, payload): item
                for item, payload in zip(pending, payloads)
            }
            not_done = set(futures)
            while not_done:
                self._m_inflight.set(len(not_done))
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    task, seed, key = futures[future]
                    exc = future.exception()
                    outcome = exc if exc is not None else future.result()
                    yield task, seed, key, outcome
            self._m_inflight.set(0)
