"""Cost ledger: per-link / per-site / per-window dollar attribution.

The :class:`~repro.cloud.pricing.CostMeter` answers "what did this run
cost in total"; the ledger answers "where did the money go". It
subscribes to the meter's charge stream (every accrual carries the exact
USD charged plus a context — a WAN link for egress, a region for VM
time) and folds the charges into attribution buckets. Because the
listener receives the *actual* charged amounts, the ledger's totals
reconcile with the meter to within float tolerance by construction —
there is no separate re-pricing that could drift.

``$ per window`` and ``$ per 1k records`` — the paper's bounded-cost
headline metrics — come out of :meth:`CostLedger.summary` once a run
knows its emitted-window and record counts, and are pushed as gauges
through the observer for the dashboard and exporters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LinkCost:
    """Accrued egress on one WAN link (``src->dst``)."""

    link: str
    bytes: float = 0.0
    usd: float = 0.0


@dataclass
class RegionCost:
    """Accrued VM lease time in one region."""

    region: str
    seconds: float = 0.0
    usd: float = 0.0


@dataclass
class CostSummary:
    """Run-level attribution rollup (JSON-safe via :meth:`to_dict`)."""

    egress_usd: float
    egress_bytes: float
    vm_usd: float
    vm_seconds: float
    storage_usd: float
    other_usd: float
    per_link: dict[str, LinkCost] = field(default_factory=dict)
    per_region: dict[str, RegionCost] = field(default_factory=dict)
    usd_per_window: float = math.nan
    usd_per_1k_records: float = math.nan

    @property
    def total_usd(self) -> float:
        return self.egress_usd + self.vm_usd + self.storage_usd + self.other_usd

    def to_dict(self) -> dict:
        return {
            "egress_usd": self.egress_usd,
            "egress_bytes": self.egress_bytes,
            "vm_usd": self.vm_usd,
            "vm_seconds": self.vm_seconds,
            "storage_usd": self.storage_usd,
            "other_usd": self.other_usd,
            "total_usd": self.total_usd,
            "usd_per_window": self.usd_per_window,
            "usd_per_1k_records": self.usd_per_1k_records,
            "per_link": {
                link: {"bytes": c.bytes, "usd": c.usd}
                for link, c in sorted(self.per_link.items())
            },
            "per_region": {
                region: {"seconds": c.seconds, "usd": c.usd}
                for region, c in sorted(self.per_region.items())
            },
        }


class CostLedger:
    """Attributes every :class:`CostMeter` charge to a link or region.

    Always on (one listener call per charge — charges happen per flow
    completion and per lease close, never per record), observer-optional:
    gauges are only written when an enabled observer is bound.
    """

    def __init__(self, meter, observer=None) -> None:
        self.meter = meter
        self.baseline = meter.snapshot()
        self.per_link: dict[str, LinkCost] = {}
        self.per_region: dict[str, RegionCost] = {}
        #: Charges whose context named neither a link nor a region
        #: (storage capacity, transactions, context-less callers).
        self.storage_usd = 0.0
        self.other_usd = 0.0
        self.other_egress_bytes = 0.0
        self._obs = None
        self._obs_on = False
        if observer is not None:
            self.bind_observer(observer)
        meter.on_charge(self._observe)

    def bind_observer(self, observer) -> None:
        self._obs = observer
        self._obs_on = observer.enabled

    # ------------------------------------------------------------------
    def _observe(self, kind: str, amount: float, usd: float, context) -> None:
        if kind == "egress":
            if isinstance(context, str) and "->" in context:
                cost = self.per_link.get(context)
                if cost is None:
                    cost = self.per_link[context] = LinkCost(link=context)
                cost.bytes += amount
                cost.usd += usd
                if self._obs_on:
                    self._obs.gauge(
                        "ledger_link_egress_usd", link=context
                    ).set(cost.usd)
            else:
                self.other_usd += usd
                self.other_egress_bytes += amount
        elif kind == "vm":
            region = context if isinstance(context, str) else "?"
            cost = self.per_region.get(region)
            if cost is None:
                cost = self.per_region[region] = RegionCost(region=region)
            cost.seconds += amount
            cost.usd += usd
            if self._obs_on:
                self._obs.gauge("ledger_vm_usd", region=region).set(cost.usd)
        elif kind in ("storage", "transactions"):
            self.storage_usd += usd
        else:  # pragma: no cover - future charge kinds
            self.other_usd += usd

    # ------------------------------------------------------------------
    @property
    def egress_usd(self) -> float:
        return sum(c.usd for c in self.per_link.values())

    @property
    def egress_bytes(self) -> float:
        return sum(c.bytes for c in self.per_link.values())

    @property
    def vm_usd(self) -> float:
        return sum(c.usd for c in self.per_region.values())

    @property
    def vm_seconds(self) -> float:
        return sum(c.seconds for c in self.per_region.values())

    def delta(self):
        """Meter charges accrued since this ledger was attached."""
        return self.meter.snapshot() - self.baseline

    def reconcile(self, rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> bool:
        """Attributed totals must equal the meter's deltas.

        Egress: per-link USD + unattributed egress == meter egress delta
        (bytes likewise). VM: per-region USD == meter VM delta. Storage:
        storage bucket == meter storage delta. Any mismatch means a
        charge site bypassed the listener — a bug, never rounding.
        """
        d = self.delta()
        checks = (
            (self.egress_usd + self.other_usd, d.egress_usd),
            (self.egress_bytes + self.other_egress_bytes, d.egress_bytes),
            (self.vm_usd, d.vm_usd),
            (self.vm_seconds, d.vm_seconds),
            (self.storage_usd, d.storage_usd),
        )
        return all(
            math.isclose(mine, meters, rel_tol=rel_tol, abs_tol=abs_tol)
            for mine, meters in checks
        )

    # ------------------------------------------------------------------
    def summary(
        self, windows: int | None = None, records: int | None = None
    ) -> CostSummary:
        """Roll up attribution; normalise per window / per 1k records.

        The normalised metrics use streaming egress + VM spend (the
        resources the stream actually consumes); storage stays separate
        so a blob-shipping baseline remains comparable.
        """
        summary = CostSummary(
            egress_usd=self.egress_usd,
            egress_bytes=self.egress_bytes,
            vm_usd=self.vm_usd,
            vm_seconds=self.vm_seconds,
            storage_usd=self.storage_usd,
            other_usd=self.other_usd,
            per_link=dict(self.per_link),
            per_region=dict(self.per_region),
        )
        spend = summary.egress_usd + summary.vm_usd
        if windows:
            summary.usd_per_window = spend / windows
        if records:
            summary.usd_per_1k_records = spend / records * 1000.0
        if self._obs_on:
            if windows:
                self._obs.gauge("ledger_usd_per_window").set(
                    summary.usd_per_window
                )
            if records:
                self._obs.gauge("ledger_usd_per_1k_records").set(
                    summary.usd_per_1k_records
                )
        return summary
