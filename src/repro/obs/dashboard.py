"""Text perf dashboard rendered from a live observer.

One snapshot API feeds everything: the :class:`~repro.obs.profile.StageProfiler`
supplies hottest stages and throughput meters, the metrics registry
supplies backlog/credit gauges and breaker states. ``sage perf`` prints
the final frame of a profiled scenario; ``sage dashboard`` re-renders
frames while a streaming run advances (and ``--once`` prints a single
snapshot) — both call :func:`render_dashboard`.
"""

from __future__ import annotations

import math

from repro.analysis.tables import render_table

#: Gauge families surfaced in the "gauges" panel, in display order.
GAUGE_PANEL_PREFIXES = (
    "stream_backlog_depth",
    "stream_backlog_peak",
    "stream_watermark_lag_seconds",
    "flow_ingest_credits",
    "flow_credits_available",
    "runner_shards_inflight",
    "sim_virtual_time_seconds",
)

_BREAKER_STATES = {0.0: "closed", 1.0: "half-open", 2.0: "open"}


def _bar(share: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, share)) * width))
    return "#" * filled + "." * (width - filled)


def _fmt_count(value: float) -> str:
    if value >= 10_000_000:
        return f"{value / 1e6:.1f}M"
    if value >= 10_000:
        return f"{value / 1e3:.1f}k"
    return f"{value:g}"


def hottest_stages(observer, top: int = 10) -> str:
    """Top-``top`` stages by exclusive wall time, with share bars."""
    snap = observer.profiler.snapshot()
    rows = [
        [name, s["calls"], f"{s['seconds']:.4f}",
         f"{100.0 * s['share']:5.1f}%", _bar(s["share"])]
        for name, s in list(snap["stages"].items())[:top]
    ]
    if not rows:
        return "Hot stages\n(no stages profiled)"
    return render_table(
        ["stage", "calls", "self (s)", "share", ""],
        rows,
        title="Hot stages (exclusive wall time)",
    )


def throughput_panel(observer) -> str:
    """Meter counts and rates over the profiled window."""
    snap = observer.profiler.snapshot()
    rows = [
        [name, _fmt_count(m["count"]), f"{m['per_wall_s']:,.0f}",
         f"{m['per_virtual_s']:,.0f}"]
        for name, m in snap["meters"].items()
    ]
    if not rows:
        return "Throughput\n(no meters recorded)"
    return render_table(
        ["meter", "count", "/s wall", "/s virtual"],
        rows,
        title="Throughput",
    )


def gauges_panel(observer) -> str:
    """Backlog/credit gauges and breaker states from the registry."""
    snapshot = observer.registry.snapshot()
    rows: list[list[object]] = []
    for prefix in GAUGE_PANEL_PREFIXES:
        for key in sorted(snapshot):
            snap = snapshot[key]
            if snap.kind == "gauge" and snap.name == prefix:
                last = "" if math.isnan(snap.value) else f"{snap.value:g}"
                hi = "" if math.isnan(snap.max) else f"{snap.max:g}"
                rows.append([key, last, hi])
    for key in sorted(snapshot):
        snap = snapshot[key]
        if snap.name == "flow_breaker_state" and not math.isnan(snap.value):
            state = _BREAKER_STATES.get(snap.value, f"?{snap.value:g}")
            rows.append([key, state, ""])
    if not rows:
        return "Gauges\n(no gauges recorded)"
    return render_table(["gauge", "value", "peak"], rows, title="Gauges")


def lineage_panel(observer) -> str:
    """Per-site end-to-end latency percentiles from the lineage layer.

    Empty string (panel hidden) when no lineage histograms exist — runs
    without the streaming aggregator have nothing to show here.
    """
    snapshot = observer.registry.snapshot()
    rows: list[list[object]] = []
    for key in sorted(snapshot):
        snap = snapshot[key]
        if (
            snap.kind == "histogram"
            and snap.name == "stream_e2e_latency_seconds"
            and snap.count
        ):
            site = dict(snap.labels).get("site", "?")
            rows.append(
                [site, snap.count, f"{snap.p50:.1f}", f"{snap.p95:.1f}",
                 f"{snap.p99:.1f}", f"{snap.max:.1f}"]
            )
    if not rows:
        return ""
    return render_table(
        ["site", "windows", "p50 (s)", "p95 (s)", "p99 (s)", "max (s)"],
        rows,
        title="End-to-end latency (event time -> emission)",
    )


#: Ledger gauges surfaced in the cost panel, in display order.
_COST_GAUGES = (
    "ledger_usd_per_window",
    "ledger_usd_per_1k_records",
    "ledger_link_egress_usd",
    "ledger_vm_usd",
)


def cost_panel(observer) -> str:
    """Attributed spend from the cost ledger (hidden when no charges)."""
    snapshot = observer.registry.snapshot()
    rows: list[list[object]] = []
    for prefix in _COST_GAUGES:
        for key in sorted(snapshot):
            snap = snapshot[key]
            if (
                snap.kind == "gauge"
                and snap.name == prefix
                and not math.isnan(snap.value)
            ):
                rows.append([key, f"${snap.value:.4f}"])
    if not rows:
        return ""
    return render_table(["cost", "usd"], rows, title="Cost ledger")


def slo_panel(observer) -> str:
    """SLO-auditor violation counts by kind (hidden when never audited)."""
    snapshot = observer.registry.snapshot()
    rows: list[list[object]] = []
    for key in sorted(snapshot):
        snap = snapshot[key]
        if snap.kind == "counter" and snap.name == "audit_violations_total":
            kind = dict(snap.labels).get("kind", "?")
            rows.append([kind, f"{snap.value:g}"])
    if not rows:
        return ""
    return render_table(
        ["violation", "count"], rows, title="SLO violations"
    )


def render_dashboard(observer, top: int = 10, title: str = "SAGE perf") -> str:
    """The full dashboard: header + throughput + hot stages + gauges,
    plus lineage/cost/SLO panels whenever their layers recorded data."""
    if not observer.enabled:
        return f"{title}\n(observability disabled — nothing to show)"
    snap = observer.profiler.snapshot()
    wall = snap["wall_seconds"]
    virt = snap["virtual_seconds"]
    speedup = virt / wall if wall > 0 else 0.0
    header = (
        f"{title} — wall {wall:.2f}s, virtual {virt:.0f}s "
        f"({speedup:,.0f}x real time), "
        f"attribution coverage {100.0 * snap['coverage']:.0f}%"
    )
    panels = [
        header,
        throughput_panel(observer),
        hottest_stages(observer, top=top),
        gauges_panel(observer),
        lineage_panel(observer),
        cost_panel(observer),
        slo_panel(observer),
    ]
    return "\n\n".join(panel for panel in panels if panel)
