"""Exporters: JSONL traces, Prometheus text exposition, summary tables.

Three audiences, three formats:

* machines replaying a run — one JSON object per finished span
  (``export_trace_jsonl`` / ``read_trace_jsonl`` round-trip);
* scrapers and dashboards — the Prometheus text exposition format
  (counters and gauges verbatim, histograms as quantile summaries);
* humans at a terminal — an aligned table over the registry snapshot,
  rendered with the same helper the experiment harness uses.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

from repro.analysis.tables import render_table
from repro.obs.metrics import MetricSnapshot


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def export_trace_jsonl(tracer, path: str) -> int:
    """Write every finished span as one JSON line. Returns span count."""
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.span_id))
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")
    return len(spans)


def read_trace_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a trace dump back into span dicts (strict: no blank junk)."""
    out: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition spec.

    Inside a quoted label value, backslash, double-quote, and newline
    must appear as ``\\\\``, ``\\"``, and ``\\n`` — in that order of
    replacement, so an already-present backslash is never re-escaped.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(pairs, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*pairs, *extra]
    if not items:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
        + "}"
    )


def prometheus_text(registry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    families: dict[str, list[MetricSnapshot]] = {}
    for snap in (m.snapshot() for m in registry):
        families.setdefault(snap.name, []).append(snap)
    lines: list[str] = []
    for name in sorted(families):
        snaps = families[name]
        kind = snaps[0].kind
        # Histograms export as quantile summaries.
        lines.append(
            f"# TYPE {name} {'summary' if kind == 'histogram' else kind}"
        )
        for snap in sorted(snaps, key=lambda s: s.labels):
            if kind == "histogram":
                for q, v in (
                    ("0.5", snap.p50), ("0.95", snap.p95), ("0.99", snap.p99)
                ):
                    lines.append(
                        f"{name}"
                        f"{_labels_text(snap.labels, (('quantile', q),))} "
                        f"{_fmt(v)}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(snap.labels)} {_fmt(snap.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels_text(snap.labels)} {snap.count}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(snap.labels)} {_fmt(snap.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def export_prometheus(registry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


# ----------------------------------------------------------------------
# Human-readable summary
# ----------------------------------------------------------------------
def summary_table(registry, title: str = "Run metrics") -> str:
    """Registry snapshot as an aligned table for reports and the CLI."""
    rows: list[list[object]] = []
    for key in sorted(snap_map := registry.snapshot()):
        s = snap_map[key]
        if s.kind == "counter":
            rows.append([key, s.kind, f"{s.value:g}", "", "", ""])
        elif s.kind == "gauge":
            last = "" if math.isnan(s.value) else f"{s.value:g}"
            hi = "" if math.isnan(s.max) else f"{s.max:g}"
            rows.append([key, s.kind, last, "", "", hi])
        else:
            rows.append([
                key,
                s.kind,
                str(s.count),
                "" if math.isnan(s.mean) else f"{s.mean:.4g}",
                "" if math.isnan(s.p95) else f"{s.p95:.4g}",
                "" if math.isnan(s.max) else f"{s.max:.4g}",
            ])
    if not rows:
        return f"{title}\n(no metrics recorded)"
    return render_table(
        ["metric", "type", "value/n", "mean", "p95", "max"],
        rows,
        title=title,
    )


def trace_summary(tracer, limit: int = 12) -> str:
    """Per-span-name duration roll-up of a trace (top ``limit`` names)."""
    groups: dict[str, list[float]] = {}
    for span in tracer.spans:
        if span.end is not None:
            groups.setdefault(span.name, []).append(span.end - span.start)
    rows: list[list[object]] = []
    ranked: Iterable[str] = sorted(
        groups, key=lambda n: -sum(groups[n])
    )[:limit]
    for name in ranked:
        durations = sorted(groups[name])
        n = len(durations)
        rows.append([
            name,
            n,
            f"{sum(durations) / n:.4g}",
            f"{durations[n // 2]:.4g}",
            f"{durations[-1]:.4g}",
        ])
    if not rows:
        return "Trace spans\n(no spans recorded)"
    return render_table(
        ["span", "n", "mean (s)", "p50 (s)", "max (s)"],
        rows,
        title="Trace spans",
    )
