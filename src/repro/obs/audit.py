"""Continuous SLO / invariant auditor for geo-streaming runs.

The scenario contracts ("nothing lost, nothing doubled, bounded
latency") have so far been checked *after* a run, by the scenario code
itself. :class:`SLOAuditor` moves the checks online: it rides the
virtual-time clock next to a :class:`~repro.streaming.runtime.GeoStreamRuntime`
and evaluates, every ``check_interval`` seconds of simulated time:

* **watermark monotonicity** — a site's event-time watermark must never
  move backwards (a regression silently reopens closed windows);
* **exactly-once emission** — no ``(window, key)`` pair may appear twice
  in the delivered result stream, crashes and restarts included;
* **latency SLO** — each emitted window's end-to-end latency (event-time
  window close → global emission) against a user-declared bound.

At :meth:`finish` time — once the run has drained to quiescence — it
additionally checks the **loss identity** (every missing record must be
explained by a shed / late / abandoned counter) and the **cost SLO**
(attributed streaming $ per 1k records from the engine's
:class:`~repro.obs.ledger.CostLedger`).

Every violation becomes a structured :class:`Violation`, a fault-bus
event (``audit.<kind>`` — which also lands in the flight-recorder ring
when observability is on), and an ``audit_violations_total{kind=}``
counter increment. All inputs are virtual-time and deterministic, so
the resulting :class:`AuditReport` is safe in canonical scenario output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Violation kinds the auditor can emit, in check order.
AUDIT_KINDS = (
    "watermark_regression",
    "duplicate_window",
    "latency_slo",
    "split_brain",
    "failover_mttr",
    "loss_identity",
    "cost_slo",
)


@dataclass(frozen=True)
class Violation:
    """One invariant or SLO breach, timestamped in virtual time."""

    t: float
    kind: str
    target: str
    value: float
    limit: float
    detail: str

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "kind": self.kind,
            "target": self.target,
            "value": self.value,
            "limit": self.limit,
            "detail": self.detail,
        }


@dataclass
class AuditReport:
    """Outcome of one audited run (JSON-safe via :meth:`to_dict`)."""

    checks: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.kind] = counts.get(v.kind, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "checks": self.checks,
            "clean": self.clean,
            "violation_count": len(self.violations),
            "counts_by_kind": self.counts_by_kind(),
            "violations": [v.to_dict() for v in self.violations],
        }


class SLOAuditor:
    """Online invariant checks over a running geo-stream.

    Attach before :meth:`~repro.streaming.runtime.GeoStreamRuntime.start`
    (or any time mid-run), call :meth:`start`, and collect the
    :class:`AuditReport` from :meth:`finish` after the drain. The
    auditor never mutates the runtime — it only reads public counters
    and the result list — so an audited run produces byte-identical
    canonical output to an unaudited one.
    """

    def __init__(
        self,
        engine,
        runtime,
        max_latency_s: float | None = None,
        max_usd_per_1k: float | None = None,
        check_interval: float = 5.0,
        continuous_loss: bool = False,
        control=None,
    ) -> None:
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.engine = engine
        self.runtime = runtime
        self.max_latency_s = max_latency_s
        self.max_usd_per_1k = max_usd_per_1k
        self.check_interval = check_interval
        #: Check the loss *bound* every tick, not only the identity at
        #: quiescence: mid-run, records still in flight are neither
        #: counted nor explained, so ``lost == explained`` cannot hold —
        #: but ``counted + explained <= ingested`` must (breaking it
        #: means a record was double-counted or double-explained). Long
        #: soaks arm this so an accounting bug surfaces at the audit
        #: tick where it happens, days of virtual time before drain.
        self.continuous_loss = continuous_loss
        #: Optional :class:`repro.control.ControlPlane`. When set, every
        #: tick also checks the split-brain invariant (never two live
        #: leader replicas at once) and each completed failover's MTTR
        #: against the plane's configured bound.
        self.control = control
        self._failover_cursor = 0
        self.violations: list[Violation] = []
        self.checks = 0
        self._task = None
        self._last_watermarks: dict[str, float] = {}
        #: Incremental result scan state. Results are scanned exactly
        #: once each via a flat cursor (``results_since`` on real
        #: runtimes, a list slice on anything exposing a plain
        #: ``results``), so a multi-day soak pays O(new results) per
        #: tick, not O(all results ever). ``_seen`` counts persist
        #: across ticks — that is what makes the scan equivalent to the
        #: old full re-scan.
        self._cursor = 0
        self._seen: dict[tuple, int] = {}
        self._counted_records = 0
        self._latency_checked: set[tuple] = set()
        self._dup_flagged: set[tuple] = set()
        obs = engine.observer
        self._obs = obs
        self._obs_on = obs.enabled

    # ------------------------------------------------------------------
    def start(self) -> "SLOAuditor":
        """Begin periodic checks on the engine's virtual clock."""
        if self._task is None:
            self._task = self.engine.sim.add_periodic(
                self.check_interval, self.check_now
            )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    def _violate(
        self, kind: str, target: str, value: float, limit: float, detail: str
    ) -> None:
        violation = Violation(
            t=self.engine.sim.now,
            kind=kind,
            target=target,
            value=value,
            limit=limit,
            detail=detail,
        )
        self.violations.append(violation)
        # Fault-bus broadcast: reaches subscribed components and the
        # flight-recorder ring, so a post-mortem dump shows the breach
        # in sequence with the faults around it.
        self.engine.emit_fault(f"audit.{kind}", target)
        if self._obs_on:
            self._obs.counter("audit_violations_total", kind=kind).inc()

    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Run every online check once (also called by the periodic task)."""
        self.checks += 1
        self._check_watermarks()
        self._check_results()
        if self.control is not None:
            self._check_control()
        if self.continuous_loss:
            self._check_loss_bound()

    def _check_watermarks(self) -> None:
        for region, site in self.runtime.sites.items():
            wm = site.watermark
            last = self._last_watermarks.get(region)
            if last is not None and wm < last:
                self._violate(
                    "watermark_regression",
                    region,
                    value=wm,
                    limit=last,
                    detail=(
                        f"site {region} watermark moved backwards: "
                        f"{last:.3f}s -> {wm:.3f}s"
                    ),
                )
            self._last_watermarks[region] = wm

    def _new_results(self, include_uncommitted: bool = False) -> list:
        """Results not yet scanned, advancing the flat cursor.

        Real runtimes expose :meth:`GeoStreamRuntime.results_since`
        (O(new), uncommitted excluded until the terminal sweep — a
        crash discards and later re-derives them, which a persistent
        counter would misread as duplicate emission). Stub runtimes
        with a plain ``results`` list are sliced directly.
        """
        since = getattr(self.runtime, "results_since", None)
        if since is not None:
            new = since(self._cursor, include_uncommitted=include_uncommitted)
        else:
            results = self.runtime.results
            new = results[self._cursor:] if self._cursor else list(results)
        self._cursor += len(new)
        return new

    def _check_results(self, include_uncommitted: bool = False) -> None:
        seen = self._seen
        for result in self._new_results(include_uncommitted):
            self._counted_records += getattr(result, "record_count", 0)
            ident = (result.window.start, result.window.end, result.key)
            seen[ident] = seen.get(ident, 0) + 1
            if seen[ident] > 1 and ident not in self._dup_flagged:
                self._dup_flagged.add(ident)
                self._violate(
                    "duplicate_window",
                    f"{result.key}@{result.window.start:.0f}",
                    value=float(seen[ident]),
                    limit=1.0,
                    detail=(
                        f"window [{result.window.start:.0f}, "
                        f"{result.window.end:.0f}) key={result.key} "
                        f"emitted {seen[ident]} times"
                    ),
                )
            if self.max_latency_s is not None and ident not in self._latency_checked:
                self._latency_checked.add(ident)
                if result.latency > self.max_latency_s:
                    self._violate(
                        "latency_slo",
                        f"{result.key}@{result.window.start:.0f}",
                        value=result.latency,
                        limit=self.max_latency_s,
                        detail=(
                            f"window [{result.window.start:.0f}, "
                            f"{result.window.end:.0f}) key={result.key} "
                            f"e2e latency {result.latency:.1f}s exceeds "
                            f"SLO {self.max_latency_s:.1f}s"
                        ),
                    )

    # ------------------------------------------------------------------
    def _check_control(self) -> None:
        """Control-plane invariants: split brain and failover MTTR.

        Split brain — at no audit tick may two live replicas act as
        leader simultaneously. MTTR — every completed failover must have
        recovered within the plane's configured ``mttr_bound``; a cursor
        keeps each failover checked exactly once.
        """
        leaders = self.control.active_leaders()
        if len(leaders) > 1:
            self._violate(
                "split_brain",
                ",".join(sorted(leaders)),
                value=float(len(leaders)),
                limit=1.0,
                detail=(
                    f"{len(leaders)} live leader replicas at once: "
                    + ", ".join(sorted(leaders))
                ),
            )
        bound = self.control.config.mttr_bound
        failovers = self.control.failovers
        for event in failovers[self._failover_cursor:]:
            if event.mttr > bound + 1e-9:
                self._violate(
                    "failover_mttr",
                    event.new_leader,
                    value=event.mttr,
                    limit=bound,
                    detail=(
                        f"failover to {event.new_leader} (epoch "
                        f"{event.epoch}) took {event.mttr:.1f}s, bound "
                        f"{bound:.1f}s"
                    ),
                )
        self._failover_cursor = len(failovers)

    # ------------------------------------------------------------------
    def _loss_terms(self) -> tuple[int, int]:
        """(ingested, explained) from the runtime's public counters."""
        runtime = self.runtime
        sites = list(runtime.sites.values())
        shed = runtime.records_shed()
        late_dropped = sum(site.aggregator.late_dropped for site in sites)
        late_partial = getattr(runtime.aggregator, "late_partial_records", 0)
        abandoned = sum(
            getattr(site.shipping, "records_abandoned", 0) for site in sites
        )
        admission = getattr(runtime, "records_admission_rejected", None)
        admission_rejected = admission() if admission is not None else 0
        return runtime.records_ingested(), (
            shed + late_dropped + late_partial + abandoned
            + admission_rejected
        )

    def _check_loss_bound(self) -> None:
        """Mid-run loss invariant: ``counted + explained <= ingested``.

        ``counted`` uses the incrementally accumulated record count of
        scanned (durable) results, so the check is O(1) per tick.
        """
        ingested, explained = self._loss_terms()
        counted = self._counted_records
        if counted + explained > ingested:
            self._violate(
                "loss_identity",
                "runtime",
                value=float(counted + explained),
                limit=float(ingested),
                detail=(
                    f"counted {counted} + explained {explained} exceeds "
                    f"ingested {ingested} mid-run (double-counted or "
                    f"double-explained records)"
                ),
            )

    def _check_loss_identity(self) -> None:
        runtime = self.runtime
        ingested = runtime.records_ingested()
        counted = runtime.records_in_results()
        lost = max(0, ingested - counted)
        sites = list(runtime.sites.values())
        shed = runtime.records_shed()
        late_dropped = sum(site.aggregator.late_dropped for site in sites)
        late_partial = getattr(
            runtime.aggregator, "late_partial_records", 0
        )
        abandoned = sum(
            getattr(site.shipping, "records_abandoned", 0) for site in sites
        )
        admission_fn = getattr(runtime, "records_admission_rejected", None)
        admission = admission_fn() if admission_fn is not None else 0
        explained = (
            shed + late_dropped + late_partial + abandoned + admission
        )
        if lost != explained:
            self._violate(
                "loss_identity",
                "runtime",
                value=float(lost),
                limit=float(explained),
                detail=(
                    f"lost {lost} != explained {explained} "
                    f"(shed {shed} + late_dropped {late_dropped} + "
                    f"late_partial {late_partial} + abandoned {abandoned} + "
                    f"admission_rejected {admission})"
                ),
            )

    def _check_cost(self) -> None:
        if self.max_usd_per_1k is None:
            return
        ledger = getattr(self.engine, "ledger", None)
        if ledger is None:
            return
        records = self.runtime.records_ingested()
        if not records:
            return
        summary = ledger.summary(
            windows=len(self.runtime.results) or None, records=records
        )
        usd_per_1k = summary.usd_per_1k_records
        if usd_per_1k > self.max_usd_per_1k:
            self._violate(
                "cost_slo",
                "ledger",
                value=usd_per_1k,
                limit=self.max_usd_per_1k,
                detail=(
                    f"${usd_per_1k:.4f} per 1k records exceeds "
                    f"SLO ${self.max_usd_per_1k:.4f}"
                ),
            )

    # ------------------------------------------------------------------
    def finish(self, quiescent: bool = True) -> AuditReport:
        """Final sweep; cancels the periodic task and returns the report.

        ``quiescent=False`` skips the loss identity (records still in
        flight are neither counted nor lost — the identity only holds
        once the pipe has drained).
        """
        self.checks += 1
        self._check_watermarks()
        # Terminal sweep includes still-uncommitted results: nothing can
        # crash-discard them after this point, so scanning them once is
        # safe and the exactly-once / latency checks cover every result
        # the report will expose.
        self._check_results(include_uncommitted=True)
        if self.control is not None:
            self._check_control()
        if self.continuous_loss:
            self._check_loss_bound()
        if quiescent:
            self._check_loss_identity()
        self._check_cost()
        self.stop()
        return AuditReport(checks=self.checks, violations=list(self.violations))


__all__ = ["AUDIT_KINDS", "AuditReport", "SLOAuditor", "Violation"]
