"""Span-based tracing keyed to virtual simulation time.

Spans cover the life of one unit of work: a batch leaving a site until
it lands at the aggregator, a window closing until its global result is
emitted, a managed transfer from plan to completion. Because the
simulated system is event-driven, most spans are *detached* — started in
one callback and ended in another — so the tracer supports three styles:

* ``with tracer.span("name"):`` — lexically nested work; the context
  stack supplies the parent span;
* ``tracer.start_span("name")`` / ``span.end()`` — detached spans that
  outlive the starting callback (parent passed explicitly if any);
* ``tracer.record_span("name", start, end)`` — retroactive spans whose
  endpoints were already measured (e.g. a window's event-time close and
  its emission time).

All timestamps come from the bound clock — virtual seconds when attached
to a :class:`~repro.simulation.engine.Simulator`.
"""

from __future__ import annotations

from typing import Any, Callable


class Span:
    """One traced interval of (virtual) time."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs",
                 "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs: Any) -> "Span":
        """End the span at the tracer's current clock reading."""
        if attrs:
            self.attrs.update(attrs)
        self._tracer._finish(self)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    # Context-manager style for lexically scoped spans.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        if not self.finished:
            self.finish()


class Tracer:
    """Collects finished spans; clock-agnostic (bind the simulator's)."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    def _new(
        self, name: str, parent_id: int | None, start: float,
        attrs: dict[str, Any],
    ) -> Span:
        span = Span(self, self._next_id, parent_id, name, start, attrs)
        self._next_id += 1
        return span

    def span(self, name: str, **attrs: Any) -> Span:
        """Start a lexically nested span (use as a context manager)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = self._new(name, parent, self._clock(), attrs)
        self._stack.append(span)
        return span

    def start_span(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> Span:
        """Start a detached span; it may end in a later callback."""
        parent_id = parent.span_id if parent is not None else None
        return self._new(name, parent_id, self._clock(), attrs)

    def record_span(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> Span:
        """Record an already-measured interval as a finished span."""
        span = self._new(name, None, start, attrs)
        span.end = end
        self.spans.append(span)
        return span

    def _finish(self, span: Span) -> None:
        if span.finished:
            return
        span.end = self._clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.spans.append(span)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]


class NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    start = 0.0
    end = 0.0
    attrs: dict[str, Any] = {}
    finished = True
    duration = 0.0

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def finish(self, **attrs: Any) -> "NullSpan":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": 0,
            "parent_id": None,
            "name": "",
            "start": 0.0,
            "end": 0.0,
            "attrs": {},
        }

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer façade that records nothing and allocates nothing."""

    __slots__ = ()
    spans: list[Span] = []
    now = 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def start_span(self, name: str, parent=None, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def record_span(self, name, start, end, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def __len__(self) -> int:
        return 0

    def find(self, name: str) -> list[Span]:
        return []


NULL_TRACER = NullTracer()
