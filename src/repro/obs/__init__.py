"""Unified observability: metrics + tracing + profiling + flight record.

The paper's monitoring service drives *decisions*; this layer is the
introspection companion — it records what the engine, the streaming
runtime, and the monitor actually did, in a form that can be exported
(JSONL trace, Prometheus text, flight-recorder dump), profiled (per-stage
wall-clock attribution + throughput meters), and folded into reports.

Usage::

    obs = Observer()                      # enabled
    engine = fresh_engine(seed=1, observer=obs)
    ... run ...
    obs.export(trace_path="run.jsonl", metrics_path="run.prom")
    print(render_dashboard(obs))          # hottest stages + throughput
    obs.recorder.dump("flight.jsonl")     # last N events, post-mortem

Every instrumented component takes its handles from the observer at
construction time — metric handles (:meth:`Observer.counter`, ...),
stage timers (:meth:`Observer.stage`), throughput meters
(:meth:`Observer.meter`). When no observer is supplied the shared
:data:`NULL_OBSERVER` is used and every handle is a no-op singleton, so
the disabled hot path performs one boolean check and allocates nothing.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.audit import AuditReport, SLOAuditor, Violation
from repro.obs.ledger import CostLedger, CostSummary
from repro.obs.lineage import BatchTrace, SiteLeg, WindowLineage, trace_id
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricSnapshot,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.profile import (
    NULL_METER,
    NULL_PROFILER,
    NULL_STAGE_TIMER,
    Meter,
    NullMeter,
    NullStageProfiler,
    NullStageTimer,
    StageProfiler,
    StageTimer,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    read_flight_jsonl,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
)


class Observer:
    """Facade bundling a metrics registry, tracer, profiler, recorder."""

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        flight_capacity: int | None = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock)
        self.profiler = StageProfiler(clock)
        self.recorder = (
            FlightRecorder(clock=clock)
            if flight_capacity is None
            else FlightRecorder(flight_capacity, clock=clock)
        )

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point span/flight timestamps at a clock (normally ``sim.now``)."""
        self.tracer.bind_clock(clock)
        self.profiler.bind_clock(clock)
        self.recorder.bind_clock(clock)

    # Metric handles ---------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.registry.histogram(name, **labels)

    # Profiling handles ------------------------------------------------
    def stage(self, name: str) -> StageTimer:
        """The (cached) wall-clock stage timer for ``name``."""
        return self.profiler.timer(name)

    def meter(self, name: str) -> Meter:
        """The (cached) throughput meter for ``name``."""
        return self.profiler.meter(name)

    # Spans ------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        return self.tracer.span(name, **attrs)

    def start_span(self, name: str, parent=None, **attrs: Any) -> Span:
        return self.tracer.start_span(name, parent=parent, **attrs)

    def record_span(self, name, start, end, **attrs: Any) -> Span:
        span = self.tracer.record_span(name, start, end, **attrs)
        # Retro-recorded spans are milestones (window closes, emissions):
        # exactly what a post-mortem flight dump should contain.
        self.recorder.record("span", name=name, start=start, end=end, **attrs)
        return span

    # Export -----------------------------------------------------------
    def export(
        self,
        trace_path: str | None = None,
        metrics_path: str | None = None,
        flight_path: str | None = None,
    ) -> dict[str, int]:
        """Write requested dumps; returns counts per artifact kind."""
        from repro.obs.exporters import export_prometheus, export_trace_jsonl

        written = {"spans": 0, "series": 0, "flight": 0}
        if trace_path:
            written["spans"] = export_trace_jsonl(self.tracer, trace_path)
        if metrics_path:
            export_prometheus(self.registry, metrics_path)
            written["series"] = len(self.registry.snapshot())
        if flight_path:
            written["flight"] = self.recorder.dump(flight_path)
        return written

    def summary(self) -> str:
        """Human-readable metrics + trace roll-up."""
        from repro.obs.exporters import summary_table, trace_summary

        return summary_table(self.registry) + "\n\n" + trace_summary(
            self.tracer
        )


class NullObserver:
    """Disabled observability: every handle is a shared no-op."""

    __slots__ = ()
    enabled = False
    registry = NULL_REGISTRY
    tracer = NULL_TRACER
    profiler = NULL_PROFILER
    recorder = NULL_RECORDER

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def counter(self, name: str, **labels: Any):
        return NULL_COUNTER

    def gauge(self, name: str, **labels: Any):
        return NULL_GAUGE

    def histogram(self, name: str, **labels: Any):
        return NULL_HISTOGRAM

    def stage(self, name: str) -> NullStageTimer:
        return NULL_STAGE_TIMER

    def meter(self, name: str) -> NullMeter:
        return NULL_METER

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def start_span(self, name: str, parent=None, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def record_span(self, name, start, end, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def export(
        self, trace_path=None, metrics_path=None, flight_path=None
    ) -> dict[str, int]:
        return {"spans": 0, "series": 0, "flight": 0}

    def summary(self) -> str:
        return "(observability disabled)"


NULL_OBSERVER = NullObserver()

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "AuditReport",
    "SLOAuditor",
    "Violation",
    "CostLedger",
    "CostSummary",
    "BatchTrace",
    "SiteLeg",
    "WindowLineage",
    "trace_id",
    "MetricsRegistry",
    "NullRegistry",
    "MetricSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "Span",
    "NullSpan",
    "StageProfiler",
    "NullStageProfiler",
    "StageTimer",
    "NullStageTimer",
    "Meter",
    "NullMeter",
    "FlightRecorder",
    "NullFlightRecorder",
    "read_flight_jsonl",
    "NULL_SPAN",
    "NULL_TRACER",
    "NULL_REGISTRY",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_PROFILER",
    "NULL_STAGE_TIMER",
    "NULL_METER",
    "NULL_RECORDER",
]
