"""Flight recorder: a bounded ring of recent events, spans, and faults.

When a chaos or overload run diverges, the question is always "what were
the last things that happened?" — and the full trace is either disabled
or too big. The :class:`FlightRecorder` answers it the way an aircraft
recorder does: a fixed-capacity ring buffer that every instrumented
layer appends to (simulator event dispatch, fault-bus messages,
retro-recorded spans, scenario milestones), cheap enough to leave on
whenever an observer is attached, dumped to JSONL on failure or on
demand (``sage … --flight-record PATH``).

Entries are plain dicts ``{"t": <virtual time>, "kind": ..., **fields}``
appended in occurrence order; once ``capacity`` is reached the oldest
entries are evicted — the dump is always the *last* ``capacity``
happenings, which is exactly the window a post-mortem needs.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable

#: Default ring capacity. Large enough that a failed scenario's dump
#: reproduces well over the last thousand events; small enough that the
#: resident ring stays a few MB even with verbose attributes.
DEFAULT_CAPACITY = 8192


class FlightRecorder:
    """Bounded in-memory ring of recent happenings, dumpable as JSONL."""

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._clock = clock or (lambda: 0.0)
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Total entries ever recorded (≥ len(ring); eviction never
        #: decrements it, so ``recorded - len`` is the evicted count).
        self.recorded = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Timestamp entries from a clock (normally ``sim.now``)."""
        self._clock = clock

    def record(self, kind: str, **fields: Any) -> None:
        """Append one entry stamped with the current (virtual) time."""
        entry = {"t": self._clock(), "kind": kind}
        entry.update(fields)
        self._ring.append(entry)
        self.recorded += 1

    @property
    def events(self) -> list[dict[str, Any]]:
        """The retained entries, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def dump(self, path: str) -> int:
        """Write the retained ring as JSONL; returns the entry count.

        Non-JSON-serialisable attribute values are stringified rather
        than dropped — a post-mortem dump must never fail because some
        payload object lacked an encoder.
        """
        entries = self.events
        with open(path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry, sort_keys=True, default=str))
                fh.write("\n")
        return len(entries)


def read_flight_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a flight dump back into entry dicts (skips blank lines)."""
    out: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


class NullFlightRecorder:
    """Disabled flight recorder: records nothing, dumps nothing."""

    __slots__ = ()
    enabled = False
    capacity = 0
    recorded = 0
    events: list[dict[str, Any]] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def record(self, kind: str, **fields: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def dump(self, path: str) -> int:
        return 0


NULL_RECORDER = NullFlightRecorder()
