"""Causal trace context for streamed batches and per-window lineage.

Every batch cut by a :class:`~repro.streaming.batching.Batcher` is
stamped with a :class:`BatchTrace` — a deterministic trace ID derived
from ``(origin, seq)`` plus an append-only list of :class:`Hop` entries,
one per shipping attempt. The trace rides the batch object itself, so it
survives everything the batch survives: ReliableShipping retries append
extra hops, duplicate deliveries share the same trace, and retained
batches replayed after a checkpoint restore keep their original ID (the
``(origin, seq)`` dedup key *is* the trace ID, so replay can never mint
a second identity for the same payload).

At the global aggregator each pending window accumulates one
:class:`SiteLeg` per contributing origin; when the window is finalized
the legs are frozen into a :class:`WindowLineage` answering "how long
did window W take from event-time to emission, through which sites and
links, and with how many shipping attempts?".

Trace IDs and all timestamps are virtual-time values — no wall clock,
no randomness — so lineage is byte-identical across runs and safe to
embed in canonical scenario output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def trace_id(origin: str, seq: int) -> str:
    """The deterministic trace identity of a batch: ``origin/seq``."""
    return f"{origin}/{seq}"


@dataclass
class Hop:
    """One shipping attempt over one link.

    ``arrived_at`` stays NaN until the delivery callback fires; a hop
    that never arrives (UDP loss, cancelled retry) records the attempt
    without claiming completion.
    """

    link: str
    backend: str
    sent_at: float
    arrived_at: float = math.nan

    @property
    def delivered(self) -> bool:
        return not math.isnan(self.arrived_at)

    @property
    def transit_s(self) -> float:
        return self.arrived_at - self.sent_at

    def to_dict(self) -> dict:
        return {
            "link": self.link,
            "backend": self.backend,
            "sent_at": self.sent_at,
            "arrived_at": self.arrived_at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Hop":
        return cls(
            link=payload["link"],
            backend=payload["backend"],
            sent_at=payload["sent_at"],
            arrived_at=payload.get("arrived_at", math.nan),
        )


@dataclass
class BatchTrace:
    """Causal context stamped on a batch at cut time.

    ``parents`` links a derived batch (a hub's merged output) back to
    the trace IDs of the upstream batches whose partials it carries —
    the cross-tier edge of the trace tree.
    """

    trace_id: str
    origin: str
    seq: int
    created_at: float
    hops: list[Hop] = field(default_factory=list)
    parents: tuple[str, ...] = ()

    @classmethod
    def stamp(cls, origin: str, seq: int, created_at: float) -> "BatchTrace":
        return cls(
            trace_id=trace_id(origin, seq),
            origin=origin,
            seq=seq,
            created_at=created_at,
        )

    def begin_hop(self, link: str, backend: str, now: float) -> Hop:
        """Record a shipping attempt; returns the hop so the delivery
        callback can close it."""
        hop = Hop(link=link, backend=backend, sent_at=now)
        self.hops.append(hop)
        return hop

    @property
    def attempts(self) -> int:
        return len(self.hops)

    @property
    def first_sent_at(self) -> float:
        return self.hops[0].sent_at if self.hops else math.nan

    @property
    def delivered_at(self) -> float:
        """Arrival time of the last delivered hop (NaN if none landed)."""
        arrived = [h.arrived_at for h in self.hops if h.delivered]
        return arrived[-1] if arrived else math.nan

    @property
    def delivered(self) -> bool:
        return any(h.delivered for h in self.hops)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "origin": self.origin,
            "seq": self.seq,
            "created_at": self.created_at,
            "hops": [h.to_dict() for h in self.hops],
            "parents": list(self.parents),
        }


@dataclass
class SiteLeg:
    """One origin's contribution to one pending window.

    Absorbs every batch that delivered a partial for the window:
    ``created_at`` keeps the earliest batch cut (the window closed at
    the site no later than that), ``arrived_at`` the latest arrival
    (the window could not finalize before it), and ``attempts`` the
    total shipping attempts across all contributing batches — retries
    included.
    """

    site: str
    records: int = 0
    partials: int = 0
    batches: int = 0
    attempts: int = 0
    bytes: float = 0.0
    created_at: float = math.nan
    first_sent_at: float = math.nan
    arrived_at: float = math.nan
    _seen: set = field(default_factory=set, repr=False)

    def absorb(
        self, trace: "BatchTrace | None", records: int, nbytes: float, now: float
    ) -> None:
        self.partials += 1
        self.records += records
        self.bytes += nbytes
        self.arrived_at = now if math.isnan(self.arrived_at) else max(
            self.arrived_at, now
        )
        if trace is None:
            return
        if trace.trace_id not in self._seen:
            self._seen.add(trace.trace_id)
            self.batches += 1
            self.attempts += trace.attempts
        self.created_at = _nan_min(self.created_at, trace.created_at)
        self.first_sent_at = _nan_min(self.first_sent_at, trace.first_sent_at)

    @property
    def complete(self) -> bool:
        return not (
            math.isnan(self.created_at)
            or math.isnan(self.first_sent_at)
            or math.isnan(self.arrived_at)
        )

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "records": self.records,
            "partials": self.partials,
            "batches": self.batches,
            "attempts": self.attempts,
            "bytes": self.bytes,
            "created_at": self.created_at,
            "first_sent_at": self.first_sent_at,
            "arrived_at": self.arrived_at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SiteLeg":
        leg = cls(site=payload["site"])
        leg.records = int(payload.get("records", 0))
        leg.partials = int(payload.get("partials", 0))
        leg.batches = int(payload.get("batches", 0))
        leg.attempts = int(payload.get("attempts", 0))
        leg.bytes = float(payload.get("bytes", 0.0))
        leg.created_at = _nan_float(payload.get("created_at"))
        leg.first_sent_at = _nan_float(payload.get("first_sent_at"))
        leg.arrived_at = _nan_float(payload.get("arrived_at"))
        return leg


#: Per-site hop names in causal order, used as the ``hop`` label on the
#: ``lineage_hop_seconds`` histogram family.
HOP_NAMES = ("site_close", "queue", "transit", "merge")


@dataclass(frozen=True)
class WindowLineage:
    """Frozen provenance of one emitted window result."""

    window_start: float
    window_end: float
    key: str
    emitted_at: float
    legs: tuple[SiteLeg, ...]

    @property
    def e2e_latency(self) -> float:
        """Event-time horizon → global emission."""
        return self.emitted_at - self.window_end

    @property
    def complete(self) -> bool:
        return bool(self.legs) and all(leg.complete for leg in self.legs)

    @property
    def egress_bytes(self) -> float:
        return sum(leg.bytes for leg in self.legs)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(leg.site for leg in self.legs)

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-site latency decomposition, keyed by site then hop name:

        * ``site_close`` — window end → batch cut at the site (local
          watermark lag plus batching hold);
        * ``queue`` — batch cut → first shipping attempt;
        * ``transit`` — first attempt → last arrival (retries and
          backoff included);
        * ``merge`` — last arrival → global emission (finalize grace).
        """
        out: dict[str, dict[str, float]] = {}
        for leg in self.legs:
            out[leg.site] = {
                "site_close": leg.created_at - self.window_end,
                "queue": leg.first_sent_at - leg.created_at,
                "transit": leg.arrived_at - leg.first_sent_at,
                "merge": self.emitted_at - leg.arrived_at,
            }
        return out

    def to_dict(self) -> dict:
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "key": self.key,
            "emitted_at": self.emitted_at,
            "legs": [leg.to_dict() for leg in self.legs],
        }


def _nan_min(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return min(a, b)


def _nan_float(value) -> float:
    return math.nan if value is None else float(value)
