"""Canonical ``BENCH_<name>.json`` publisher for the perf trajectory.

The ROADMAP's performance work is judged against a published trajectory:
every perf-relevant benchmark writes one ``BENCH_<name>.json`` with the
same schema, so successive PRs can assert "records/sec went up 10×
against the recorded baseline" instead of hand-waving. The schema:

``bench``
    the trajectory name (file is ``BENCH_<bench>.json``);
``scenario``
    what ran (``e9-streaming``, ``perf-baseline``, ...);
``config`` / ``config_digest``
    the exact configuration and the sha256-16 of its canonical JSON —
    two records are comparable iff their digests match;
``seed``, ``wall_seconds``, ``virtual_seconds``
    run identity and measured wall / simulated span;
``records_per_s`` / ``events_per_s``
    records processed and simulator events dispatched per *wall* second
    — the two numbers the million-source rewrite must move;
``stage_shares`` / ``stage_seconds`` / ``coverage``
    per-stage attribution from :class:`~repro.obs.profile.StageProfiler`
    (shares sum to 1.0 over the attributed time; coverage is attributed
    / measured wall);
``extras``
    free-form scenario numbers (latency percentiles, WAN bytes, ...).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.report import canonical_json


def config_digest(config: dict[str, Any]) -> str:
    """sha256-16 of the canonical JSON form of ``config``."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class BenchRecord:
    """One point of the published performance trajectory."""

    bench: str
    scenario: str
    seed: int
    config: dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    records_per_s: float = 0.0
    events_per_s: float = 0.0
    stage_shares: dict[str, float] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    coverage: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)
    #: Lineage/ledger headline numbers (PR7+). ``None`` omits them from
    #: the JSON, keeping earlier trajectory records byte-compatible.
    e2e_latency_p99_s: float | None = None
    usd_per_1k_records: float | None = None

    @classmethod
    def from_profile(
        cls,
        bench: str,
        scenario: str,
        seed: int,
        profile: dict[str, Any],
        *,
        config: dict[str, Any] | None = None,
        records: float = 0.0,
        events: float = 0.0,
        extras: dict[str, Any] | None = None,
        e2e_latency_p99_s: float | None = None,
        usd_per_1k_records: float | None = None,
    ) -> "BenchRecord":
        """Build a record from a :meth:`StageProfiler.snapshot` dict."""
        wall = profile["wall_seconds"]
        return cls(
            bench=bench,
            scenario=scenario,
            seed=seed,
            config=dict(config or {}),
            wall_seconds=wall,
            virtual_seconds=profile["virtual_seconds"],
            records_per_s=records / wall if wall > 0 else 0.0,
            events_per_s=events / wall if wall > 0 else 0.0,
            stage_shares={
                name: s["share"] for name, s in profile["stages"].items()
            },
            stage_seconds={
                name: s["seconds"] for name, s in profile["stages"].items()
            },
            coverage=profile["coverage"],
            extras=dict(extras or {}),
            e2e_latency_p99_s=e2e_latency_p99_s,
            usd_per_1k_records=usd_per_1k_records,
        )

    def to_dict(self) -> dict[str, Any]:
        out = {
            "bench": self.bench,
            "scenario": self.scenario,
            "seed": self.seed,
            "config": self.config,
            "config_digest": config_digest(self.config),
            "wall_seconds": round(self.wall_seconds, 6),
            "virtual_seconds": round(self.virtual_seconds, 6),
            "records_per_s": round(self.records_per_s, 3),
            "events_per_s": round(self.events_per_s, 3),
            "stage_shares": {
                k: round(v, 6) for k, v in self.stage_shares.items()
            },
            "stage_seconds": {
                k: round(v, 6) for k, v in self.stage_seconds.items()
            },
            "coverage": round(self.coverage, 6),
            "extras": self.extras,
        }
        if self.e2e_latency_p99_s is not None:
            out["e2e_latency_p99_s"] = round(self.e2e_latency_p99_s, 6)
        if self.usd_per_1k_records is not None:
            out["usd_per_1k_records"] = round(self.usd_per_1k_records, 9)
        return out


def write_bench(record: BenchRecord, directory: str | Path) -> Path:
    """Write ``BENCH_<bench>.json`` under ``directory``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{record.bench}.json"
    path.write_text(
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def compare_to_baseline(
    current: BenchRecord | dict[str, Any],
    baseline_path: str | Path,
    *,
    min_speedup: float = 1.0,
) -> dict[str, Any] | None:
    """Gate ``current`` against a recorded baseline trajectory point.

    ``baseline_path`` is a committed ``BENCH_*.json`` (the repo keeps the
    per-record-plane recordings at the repository root). Returns ``None``
    when no baseline is recorded there — a fresh clone must not fail its
    first benchmark run. Otherwise the two records must be *comparable*
    (identical ``config_digest``: same workload, duration, deployment)
    and the current throughput must be at least ``min_speedup`` × the
    recorded one; violations raise :class:`AssertionError` so the CI
    perf job fails loudly instead of letting a regression (or a silent
    config drift that would fake one) through.

    Returns ``{"baseline", "current", "speedup"}`` on success.
    """
    baseline_path = Path(baseline_path)
    if not baseline_path.exists():
        return None
    baseline = read_bench(baseline_path)
    data = current.to_dict() if isinstance(current, BenchRecord) else current
    if data["config_digest"] != baseline["config_digest"]:
        raise AssertionError(
            f"bench config drifted from the recorded baseline: "
            f"{data['config_digest']} != {baseline['config_digest']} "
            f"({baseline_path.name}) — the two runs are not comparable; "
            f"re-record the baseline if the change is intentional"
        )
    ratio = data["records_per_s"] / max(baseline["records_per_s"], 1e-12)
    if ratio < min_speedup:
        raise AssertionError(
            f"throughput regression vs {baseline_path.name}: "
            f"{data['records_per_s']:,.0f} records/s is {ratio:.2f}× the "
            f"recorded {baseline['records_per_s']:,.0f} records/s "
            f"(gate requires >= {min_speedup:.1f}×)"
        )
    return {
        "baseline": baseline["records_per_s"],
        "current": data["records_per_s"],
        "speedup": ratio,
    }


def read_bench(path: str | Path) -> dict[str, Any]:
    """Load a ``BENCH_*.json`` file, validating the schema invariants.

    Raises :class:`ValueError` if required keys are missing or the stage
    shares fail to sum to ≈1.0 (when any stage was attributed at all).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    required = {
        "bench", "scenario", "seed", "config_digest", "wall_seconds",
        "records_per_s", "events_per_s", "stage_shares", "coverage",
    }
    missing = required - data.keys()
    if missing:
        raise ValueError(f"{path}: missing bench keys {sorted(missing)}")
    shares = data["stage_shares"]
    if shares:
        total = sum(shares.values())
        if not math.isclose(total, 1.0, abs_tol=1e-3):
            raise ValueError(
                f"{path}: stage shares sum to {total:.6f}, expected ≈1.0"
            )
    # Lineage/ledger fields are optional (older records predate them)
    # but must be sane numbers when present.
    for key in ("e2e_latency_p99_s", "usd_per_1k_records"):
        if key in data and data[key] is not None:
            value = data[key]
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or math.isnan(value)
                or value < 0
            ):
                raise ValueError(
                    f"{path}: {key} must be a non-negative number, "
                    f"got {value!r}"
                )
    return data
