"""Hot-path stage profiling: wall-clock attribution + throughput meters.

The ROADMAP's million-source rewrite needs to know *where* wall time
goes before anything is rewritten — per stage (event dispatch, operator
apply, window close, batching, shipping, checkpoint), not just in total.
:class:`StageProfiler` provides that with the same handle-based contract
as :mod:`repro.obs.metrics`: a component asks the observer for a
:class:`StageTimer` once, at construction, and drives it from the hot
path; when observability is disabled the handle is the shared
:data:`NULL_STAGE_TIMER` and the hot path pays one no-op ``with``.

Attribution is **exclusive** (self-time): entering a nested stage pauses
the enclosing one, so the per-stage seconds are disjoint and sum to the
wall time spent inside the outermost stage. The simulator wraps its
event loop in ``sim.loop`` and each callback in ``sim.dispatch``; every
instrumented block inside a callback subtracts itself out, leaving
``sim.dispatch`` holding exactly the *un*-instrumented remainder. The
share a stage reports is therefore "fraction of accounted wall time this
stage spent on CPU", and coverage ("accounted / measured wall") tells
you how much of a run the attribution explains.

The profiler is virtual-time-aware: the bound clock (normally
``sim.now``) is read when the outermost stage opens and closes, so a
snapshot can report records/sec against wall *and* virtual seconds —
the simulator speedup falls out for free.

Throughput meters (:class:`Meter`) are monotone counts (records, events,
batches, bytes) whose rates are computed at snapshot time against the
profiled wall/virtual window — no per-sample timestamps on the hot path.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable


class StageStat:
    """Accumulated exclusive time and call count of one stage."""

    __slots__ = ("name", "seconds", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.calls = 0


class StageTimer:
    """Reusable context manager attributing exclusive time to a stage.

    Handles are cached per stage name by the profiler; one timer may be
    entered recursively (the inner entry simply keeps attributing to the
    same stage).
    """

    __slots__ = ("_profiler", "_stat")

    def __init__(self, profiler: "StageProfiler", stat: StageStat) -> None:
        self._profiler = profiler
        self._stat = stat

    def __enter__(self) -> "StageTimer":
        prof = self._profiler
        t = perf_counter()
        stack = prof._stack
        if stack:
            top = stack[-1]
            top[0].seconds += t - top[1]
        else:
            prof._outer_t0 = t
            prof._outer_v0 = prof._clock()
        stack.append([self._stat, t])
        return self

    def __exit__(self, *exc: Any) -> None:
        prof = self._profiler
        t = perf_counter()
        stat, mark = prof._stack.pop()
        stat.seconds += t - mark
        stat.calls += 1
        if prof._stack:
            prof._stack[-1][1] = t
        else:
            prof.wall_seconds += t - prof._outer_t0
            prof.virtual_seconds += max(0.0, prof._clock() - prof._outer_v0)


class Meter:
    """Monotone throughput count; rates are derived at snapshot time."""

    __slots__ = ("name", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0.0

    def mark(self, amount: float = 1.0) -> None:
        self.count += amount


class StageProfiler:
    """Creates stage timers and meters; snapshots shares and rates."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._stats: dict[str, StageStat] = {}
        self._timers: dict[str, StageTimer] = {}
        self._meters: dict[str, Meter] = {}
        #: [stat, mark] per open stage; mark is the perf_counter reading
        #: the stage last resumed at (entry, or a nested stage's exit).
        self._stack: list[list] = []
        self._outer_t0 = 0.0
        self._outer_v0 = 0.0
        #: Wall seconds spent inside outermost stages (the profiled window).
        self.wall_seconds = 0.0
        #: Virtual seconds the profiled window advanced the bound clock.
        self.virtual_seconds = 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the virtual-time window at a clock (normally ``sim.now``)."""
        self._clock = clock

    def timer(self, name: str) -> StageTimer:
        """The (cached) stage timer handle for ``name``."""
        timer = self._timers.get(name)
        if timer is None:
            stat = self._stats.setdefault(name, StageStat(name))
            timer = self._timers[name] = StageTimer(self, stat)
        return timer

    def meter(self, name: str) -> Meter:
        """The (cached) throughput meter handle for ``name``."""
        meter = self._meters.get(name)
        if meter is None:
            meter = self._meters[name] = Meter(name)
        return meter

    def stages(self) -> dict[str, StageStat]:
        return dict(self._stats)

    def meters(self) -> dict[str, Meter]:
        return dict(self._meters)

    def accounted_seconds(self) -> float:
        """Total exclusive seconds attributed across all stages."""
        return sum(s.seconds for s in self._stats.values())

    def snapshot(self, wall_seconds: float | None = None) -> dict[str, Any]:
        """Shares, coverage, and meter rates over the profiled window.

        ``wall_seconds`` is the externally measured wall time to compute
        coverage against; it defaults to the profiler's own window (in
        which case coverage is the fraction of *profiled* time that is
        attributed — ~1.0 by construction). Shares are normalised over
        the attributed seconds, so they sum to 1.0 whenever any stage
        ran at all.
        """
        accounted = self.accounted_seconds()
        wall = self.wall_seconds if wall_seconds is None else wall_seconds
        stages = {
            name: {
                "seconds": stat.seconds,
                "calls": stat.calls,
                "share": stat.seconds / accounted if accounted > 0 else 0.0,
            }
            for name, stat in sorted(
                self._stats.items(), key=lambda kv: -kv[1].seconds
            )
        }
        meters = {
            name: {
                "count": m.count,
                "per_wall_s": m.count / wall if wall > 0 else 0.0,
                "per_virtual_s": (
                    m.count / self.virtual_seconds
                    if self.virtual_seconds > 0
                    else 0.0
                ),
            }
            for name, m in sorted(self._meters.items())
        }
        return {
            "wall_seconds": wall,
            "profiled_seconds": self.wall_seconds,
            "virtual_seconds": self.virtual_seconds,
            "accounted_seconds": accounted,
            "coverage": accounted / wall if wall > 0 else 0.0,
            "stages": stages,
            "meters": meters,
        }

    def reset(self) -> None:
        """Zero all accumulated stats (handles stay valid)."""
        for stat in self._stats.values():
            stat.seconds = 0.0
            stat.calls = 0
        for meter in self._meters.values():
            meter.count = 0.0
        self.wall_seconds = 0.0
        self.virtual_seconds = 0.0


# ----------------------------------------------------------------------
# Disabled path: shared, stateless no-op handles.
# ----------------------------------------------------------------------
class NullStageTimer:
    __slots__ = ()

    def __enter__(self) -> "NullStageTimer":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


class NullMeter:
    __slots__ = ()
    name = ""
    count = 0.0

    def mark(self, amount: float = 1.0) -> None:
        pass


NULL_STAGE_TIMER = NullStageTimer()
NULL_METER = NullMeter()


class NullStageProfiler:
    """Profiler façade that hands out the shared no-op handles."""

    __slots__ = ()
    enabled = False
    wall_seconds = 0.0
    virtual_seconds = 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def timer(self, name: str) -> NullStageTimer:
        return NULL_STAGE_TIMER

    def meter(self, name: str) -> NullMeter:
        return NULL_METER

    def stages(self) -> dict[str, StageStat]:
        return {}

    def meters(self) -> dict[str, Meter]:
        return {}

    def accounted_seconds(self) -> float:
        return 0.0

    def snapshot(self, wall_seconds: float | None = None) -> dict[str, Any]:
        return {
            "wall_seconds": wall_seconds or 0.0,
            "profiled_seconds": 0.0,
            "virtual_seconds": 0.0,
            "accounted_seconds": 0.0,
            "coverage": 0.0,
            "stages": {},
            "meters": {},
        }

    def reset(self) -> None:
        pass


NULL_PROFILER = NullStageProfiler()
