"""Metric primitives: counters, gauges, histograms, and their registry.

The instrumentation contract is handle-based: a component asks the
registry for a metric handle *once* (normally at construction time) and
then drives the handle from its hot path. When observability is disabled
the handles are the shared null singletons below, so the hot path costs
one no-op method call and allocates nothing.

Label sets are part of a metric's identity: ``counter("x", site="NEU")``
and ``counter("x", site="WEU")`` are two series of one metric family,
exactly as in the Prometheus data model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelPairs:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricSnapshot:
    """Point-in-time view of one metric series (export format)."""

    kind: str  # "counter" | "gauge" | "histogram"
    name: str
    labels: LabelPairs
    value: float = 0.0  # counter total / gauge last value
    count: int = 0
    sum: float = 0.0
    min: float = math.nan
    max: float = math.nan
    p50: float = math.nan
    p95: float = math.nan
    p99: float = math.nan

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def series_name(self) -> str:
        """Render ``name{label="v",...}`` for tables and exposition."""
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(
            self.kind, self.name, self.labels, value=self.value
        )


class Gauge:
    """Last-written value, with the min/max envelope seen so far."""

    __slots__ = ("name", "labels", "value", "updates", "low", "high")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = math.nan
        self.updates = 0
        self.low = math.inf
        self.high = -math.inf

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value

    def merge_from(self, other: "Gauge") -> None:
        if other.updates:
            self.value = other.value
            self.updates += other.updates
            self.low = min(self.low, other.low)
            self.high = max(self.high, other.high)

    def snapshot(self) -> MetricSnapshot:
        has = self.updates > 0
        return MetricSnapshot(
            self.kind,
            self.name,
            self.labels,
            value=self.value,
            count=self.updates,
            min=self.low if has else math.nan,
            max=self.high if has else math.nan,
        )


class Histogram:
    """Exact-sample distribution with p50/p95/p99 at snapshot time.

    Samples are kept verbatim (append-only float list): simulation runs
    record thousands of observations, not millions, and exact percentiles
    make the exported numbers directly comparable to the offline numpy
    analysis the experiment tables use.
    """

    __slots__ = ("name", "labels", "values")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def merge_from(self, other: "Histogram") -> None:
        self.values.extend(other.values)

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the recorded samples.

        Documented edge cases (tested in ``tests/test_obs_metrics.py``):

        * ``q`` outside ``[0, 100]`` raises :class:`ValueError` — an
          out-of-range quantile is always a caller bug, never data;
        * no samples → ``nan`` (the "no data" sentinel, consistent with
          the empty :class:`MetricSnapshot`);
        * one sample → that sample, for every ``q`` — a degenerate
          distribution has only one value to report;
        * between samples, values interpolate linearly (numpy's default),
          so ``q`` exactly on a sample boundary returns that sample.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
        if not self.values:
            return math.nan
        return float(np.percentile(self.values, q))

    def snapshot(self) -> MetricSnapshot:
        if not self.values:
            return MetricSnapshot(self.kind, self.name, self.labels)
        arr = np.asarray(self.values)
        p50, p95, p99 = np.percentile(arr, (50, 95, 99))
        return MetricSnapshot(
            self.kind,
            self.name,
            self.labels,
            count=int(arr.size),
            sum=float(arr.sum()),
            min=float(arr.min()),
            max=float(arr.max()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Creates, deduplicates, snapshots, and merges metric series."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelPairs], Any] = {}

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, key[1])
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> dict[str, MetricSnapshot]:
        """All series, keyed by their rendered series name."""
        out: dict[str, MetricSnapshot] = {}
        for metric in self._metrics.values():
            snap = metric.snapshot()
            out[snap.series_name()] = snap
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, histograms pool,
        gauges take the other's latest value and widen the envelope)."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                mine = self._metrics[key] = type(metric)(metric.name, key[1])
            elif mine.kind != metric.kind:
                raise ValueError(
                    f"cannot merge {metric.kind} {metric.name!r} into "
                    f"{mine.kind}"
                )
            mine.merge_from(metric)


# ----------------------------------------------------------------------
# Disabled path: shared, stateless no-op handles.
# ----------------------------------------------------------------------
class NullCounter:
    __slots__ = ()
    kind = "counter"
    name = ""
    labels: LabelPairs = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def merge_from(self, other) -> None:
        pass

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(self.kind, self.name, self.labels)


class NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    labels: LabelPairs = ()
    value = math.nan
    updates = 0
    low = math.inf
    high = -math.inf

    def set(self, value: float) -> None:
        pass

    def merge_from(self, other) -> None:
        pass

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(self.kind, self.name, self.labels)


class NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    labels: LabelPairs = ()
    count = 0
    #: Never appended to: ``observe`` is a no-op, so sharing one list
    #: across all disabled handles is safe.
    values: list[float] = []

    def observe(self, value: float) -> None:
        pass

    def merge_from(self, other) -> None:
        pass

    def percentile(self, q: float) -> float:
        return math.nan

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot(self.kind, self.name, self.labels)


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry façade that hands out the shared no-op singletons."""

    __slots__ = ()

    def counter(self, name: str, **labels: Any) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, **labels: Any) -> NullHistogram:
        return NULL_HISTOGRAM

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def snapshot(self) -> dict[str, MetricSnapshot]:
        return {}

    def merge(self, other) -> None:
        pass


NULL_REGISTRY = NullRegistry()
