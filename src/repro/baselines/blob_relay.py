"""Transfer by staging through cloud object storage.

The only wide-area data path the 2013 cloud offered out of the box: the
source uploads the payload to a blob container, the destination downloads
it. Two full passes over the data, HTTP per object, per-operation
throughput ceilings, and storage transaction + capacity charges — the
experiments' slowest and most expensive strategy, included because it is
the realistic "do nothing" comparator.
"""

from __future__ import annotations

import itertools

from repro.baselines.base import BaselineResult, run_transfer_to_completion
from repro.config import BlobRelayConfig, resolve_config
from repro.core.engine import SageEngine
from repro.simulation.units import MB


class BlobRelay:
    """Stage via the blob store of a chosen region (default: source's)."""

    label = "AzureBlobs"
    _names = itertools.count()

    def __init__(
        self, config: BlobRelayConfig | dict | None = None, **legacy
    ) -> None:
        cfg = resolve_config(
            BlobRelayConfig, config, legacy,
            "BlobRelay(staging_region=..., object_size=..., ...)",
            "BlobRelay(BlobRelayConfig(...))",
        )
        self.config = cfg
        self.staging_region = cfg.staging_region
        self.object_size = cfg.object_size
        self.parallel_objects = cfg.parallel_objects

    def run(
        self,
        engine: SageEngine,
        src_region: str,
        dst_region: str,
        size: float,
    ) -> BaselineResult:
        src = engine.deployment.vms(src_region)[0]
        dst = engine.deployment.vms(dst_region)[0]
        store = engine.env.blob(self.staging_region or src_region)
        before = engine.env.meter.snapshot()
        run_id = next(self._names)

        # The payload is staged as a series of objects; each object is
        # readable as soon as its own upload finishes, so upload and
        # download overlap object-by-object (pipelined staging).
        sizes: list[float] = []
        remaining = size
        while remaining > 0:
            part = min(self.object_size, remaining)
            sizes.append(part)
            remaining -= part
        state = {"uploaded": 0, "downloaded": 0, "next_put": 0}

        def _start(done) -> None:
            def _pump_puts() -> None:
                in_flight = state["next_put"] - state["uploaded"]
                while (
                    state["next_put"] < len(sizes)
                    and in_flight < self.parallel_objects
                ):
                    idx = state["next_put"]
                    state["next_put"] += 1
                    in_flight += 1
                    store.put(
                        src,
                        f"relay/{run_id}/{idx}",
                        sizes[idx],
                        on_done=lambda obj, i=idx: _staged(i),
                    )

            def _staged(idx: int) -> None:
                state["uploaded"] += 1
                store.get(
                    dst,
                    f"relay/{run_id}/{idx}",
                    on_done=lambda obj: _fetched(),
                )
                _pump_puts()

            def _fetched() -> None:
                state["downloaded"] += 1
                if state["downloaded"] == len(sizes):
                    done()

            _pump_puts()

        seconds = run_transfer_to_completion(engine, _start)
        # Staged objects occupied storage for roughly the transfer span.
        store.charge_capacity(seconds)
        for idx in range(len(sizes)):
            store.delete(f"relay/{run_id}/{idx}")
        spent = engine.env.meter.snapshot() - before
        return BaselineResult(
            label=self.label,
            seconds=seconds,
            egress_usd=spent.egress_usd,
            vm_seconds_busy=2 * seconds,
            extra_usd=spent.storage_usd,
        )
