"""A GridFTP / Globus-Online-like managed transfer.

Represents the best grid-era tooling adapted to the cloud: well-tuned
parallel streams between two fixed endpoints, a control channel with job
submission latency, and automatic fault recovery — but *statically*
configured: it neither observes the environment nor recruits helper nodes
or relay datacenters. Experiment E6 places it between the naive options
and the environment-aware system.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, run_transfer_to_completion
from repro.config import GridFtpConfig, resolve_config
from repro.core.engine import SageEngine
from repro.transfer.plan import TransferPlan


class GridFtpLike:
    """Striped endpoint-to-endpoint transfer with submission overhead."""

    label = "GlobusOnline-like"

    def __init__(
        self, config: GridFtpConfig | dict | None = None, **legacy
    ) -> None:
        cfg = resolve_config(
            GridFtpConfig, config, legacy,
            "GridFtpLike(streams=..., submission_latency=..., ...)",
            "GridFtpLike(GridFtpConfig(...))",
        )
        self.config = cfg
        self.streams = cfg.streams
        self.submission_latency = cfg.submission_latency
        #: Striped servers per side (GridFTP striping), fixed at setup.
        self.endpoints = cfg.endpoints

    def run(
        self,
        engine: SageEngine,
        src_region: str,
        dst_region: str,
        size: float,
    ) -> BaselineResult:
        senders = engine.deployment.vms(src_region)[: self.endpoints]
        receivers = engine.deployment.vms(dst_region)[: self.endpoints]
        if not senders or not receivers:
            raise ValueError("deployment lacks VMs for GridFTP endpoints")
        before = engine.env.meter.snapshot()

        def _start(done) -> None:
            def _submit() -> None:
                pending = {"n": 0}
                share = size / len(senders)

                def _one_done(_s) -> None:
                    pending["n"] -= 1
                    if pending["n"] == 0:
                        done()

                for i, snd in enumerate(senders):
                    rcv = receivers[i % len(receivers)]
                    pending["n"] += 1
                    engine.transfers.execute(
                        TransferPlan.direct(
                            snd, rcv, streams=self.streams, label="gridftp"
                        ),
                        share,
                        on_complete=_one_done,
                    )

            engine.sim.schedule(self.submission_latency, _submit)

        seconds = run_transfer_to_completion(engine, _start)
        spent = engine.env.meter.snapshot() - before
        return BaselineResult(
            label=self.label,
            seconds=seconds,
            egress_usd=spent.egress_usd,
            vm_seconds_busy=2 * self.endpoints * seconds,
        )
