"""Shared plumbing for baseline transfer strategies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.engine import SageEngine
from repro.simulation.units import DAY


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of one baseline transfer run."""

    label: str
    seconds: float
    egress_usd: float
    vm_seconds_busy: float
    extra_usd: float = 0.0

    @property
    def throughput_of(self) -> Callable[[float], float]:
        return lambda size: size / self.seconds if self.seconds > 0 else 0.0


def run_transfer_to_completion(
    engine: SageEngine,
    start: Callable[[Callable[[], None]], None],
    timeout: float = DAY,
    step: float = 5.0,
    label: str = "baseline",
) -> float:
    """Run ``start(done_callback)`` and advance the sim until it signals.

    Returns the elapsed simulated seconds. The pattern keeps baselines
    free of event-loop boilerplate: they just call ``done()`` when their
    last byte lands. When the engine carries an enabled observer the run
    is recorded as a ``baseline.transfer`` span named by ``label``.
    """
    flag: dict[str, float | None] = {"done_at": None}

    def _done() -> None:
        flag["done_at"] = engine.sim.now

    t0 = engine.sim.now
    obs = engine.observer
    span = (
        obs.start_span("baseline.transfer", label=label)
        if obs.enabled
        else None
    )
    start(_done)
    deadline = t0 + timeout
    while flag["done_at"] is None and engine.sim.now < deadline:
        engine.run_until(min(engine.sim.now + step, deadline))
    if flag["done_at"] is None:
        raise TimeoutError("baseline transfer did not complete before timeout")
    elapsed = flag["done_at"] - t0
    if span is not None:
        span.finish(seconds=elapsed)
        span.end = flag["done_at"]  # trim the post-completion drain slack
    return elapsed
