"""EndPoint2EndPoint: one source VM, one destination VM, one flow."""

from __future__ import annotations

from repro.baselines.base import BaselineResult, run_transfer_to_completion
from repro.config import DirectConfig, resolve_config
from repro.core.engine import SageEngine


class EndPoint2EndPoint:
    """The minimal transfer: what scp/rsync between two VMs achieves."""

    label = "EndPoint2EndPoint"

    def __init__(
        self, config: DirectConfig | dict | None = None, **legacy
    ) -> None:
        cfg = resolve_config(
            DirectConfig, config, legacy,
            "EndPoint2EndPoint(streams=...)",
            "EndPoint2EndPoint(DirectConfig(...))",
        )
        self.config = cfg
        self.streams = cfg.streams

    def run(
        self,
        engine: SageEngine,
        src_region: str,
        dst_region: str,
        size: float,
    ) -> BaselineResult:
        src = engine.deployment.vms(src_region)[0]
        dst = engine.deployment.vms(dst_region)[0]
        before = engine.env.meter.snapshot()

        def _start(done) -> None:
            engine.transfers.direct(
                src, dst, size, streams=self.streams,
                on_complete=lambda _s: done(),
            )

        seconds = run_transfer_to_completion(engine, _start)
        spent = engine.env.meter.snapshot() - before
        return BaselineResult(
            label=self.label,
            seconds=seconds,
            egress_usd=spent.egress_usd,
            vm_seconds_busy=2 * seconds,
        )
