"""Comparison systems.

Every baseline implements the same callable contract —
``run(engine, src_region, dst_region, size) -> BaselineResult`` — so the
benchmark harness can sweep strategies over identical environments
(identical seeds → identical link weather) and report who wins where:

* :class:`EndPoint2EndPoint` — one node, one flow; the floor.
* :class:`StaticParallel` — fixed helper set chosen once, equal shares,
  blind to the environment (the E5 comparator).
* :class:`StaticShortestPath` / :class:`DynamicShortestPath` — widest-path
  routing computed once vs. re-computed on fresh monitoring (the E7
  comparators).
* :class:`BlobRelay` — stage through cloud object storage (the only
  out-of-the-box cloud offering; E6/E8 comparator).
* :class:`GridFtpLike` — a Globus-Online-style managed transfer: well
  tuned (many streams, retry) but environment-unaware and relay-free.
"""

from repro.baselines.base import BaselineResult, run_transfer_to_completion
from repro.baselines.direct import EndPoint2EndPoint
from repro.baselines.parallel_static import StaticParallel
from repro.baselines.shortest_path import DynamicShortestPath, StaticShortestPath
from repro.baselines.blob_relay import BlobRelay
from repro.baselines.gridftp import GridFtpLike

__all__ = [
    "BaselineResult",
    "run_transfer_to_completion",
    "EndPoint2EndPoint",
    "StaticParallel",
    "StaticShortestPath",
    "DynamicShortestPath",
    "BlobRelay",
    "GridFtpLike",
]
