"""Shortest-path (widest-path) multi-datacenter strategies.

Both variants route everything along the single best datacenter path, with
parallel route instances up to the node budget. They differ in *when* the
path is chosen:

* **static** — once, from the link map at launch. As the cloud drifts the
  choice goes stale; throughput decays over long transfers.
* **dynamic** — re-chosen from the fresh link map every ``replan_interval``
  (remaining bytes are re-planned). Tracks the environment, but still puts
  all eggs in one path — no multi-path growth, no marginal-gain reasoning.
"""

from __future__ import annotations

import itertools

from repro.baselines.base import BaselineResult, run_transfer_to_completion
from repro.config import ShortestPathConfig, resolve_config
from repro.core.engine import SageEngine
from repro.core.paths import widest_path
from repro.transfer.plan import RouteAssignment, TransferPlan


def _instances_for_budget(path: list[str], n_nodes: int) -> int:
    """Parallel route instances affordable within the node budget.

    One instance costs a sender plus a relay per intermediate site
    (receivers are not counted, matching the path selector's semantics).
    """
    return max(1, n_nodes // max(1, len(path) - 1))


def _materialise_path(
    engine: SageEngine, path: list[str], instances: int, streams: int
) -> TransferPlan:
    cyclers = {
        region: itertools.cycle(engine.deployment.vms(region)) for region in path
    }
    for region, cyc in cyclers.items():
        if not engine.deployment.vms(region):
            raise ValueError(f"no VMs in region {region} for path {path}")
    routes = [
        RouteAssignment(
            [next(cyclers[r]) for r in path], weight=1.0, streams=streams
        )
        for _ in range(instances)
    ]
    return TransferPlan(routes, label="shortest-path")


class StaticShortestPath:
    """Widest path chosen once at launch."""

    label = "ShortestPath-static"

    def __init__(
        self, config: ShortestPathConfig | dict | None = None, **legacy
    ) -> None:
        legacy.pop("replan_interval", None)  # dynamic-only knob
        cfg = resolve_config(
            ShortestPathConfig, config, legacy,
            "StaticShortestPath(n_nodes=..., streams=..., max_hops=...)",
            "StaticShortestPath(ShortestPathConfig(...))",
        )
        self.config = cfg
        self.n_nodes = cfg.n_nodes
        self.streams = cfg.streams
        self.max_hops = cfg.max_hops

    def choose_path(self, engine: SageEngine, src: str, dst: str) -> list[str]:
        thr = {
            pair: engine.monitor.link_map.throughput(*pair)
            for pair in engine.monitor.link_map.pairs()
        }
        path = widest_path(thr, src, dst, max_hops=self.max_hops)
        return path or [src, dst]

    def run(
        self, engine: SageEngine, src_region: str, dst_region: str, size: float
    ) -> BaselineResult:
        path = self.choose_path(engine, src_region, dst_region)
        plan = _materialise_path(
            engine, path, _instances_for_budget(path, self.n_nodes), self.streams
        )
        before = engine.env.meter.snapshot()

        def _start(done) -> None:
            engine.transfers.execute(plan, size, on_complete=lambda _s: done())

        seconds = run_transfer_to_completion(engine, _start)
        spent = engine.env.meter.snapshot() - before
        return BaselineResult(
            label=self.label,
            seconds=seconds,
            egress_usd=spent.egress_usd,
            vm_seconds_busy=plan.vm_count() * seconds,
        )


class DynamicShortestPath(StaticShortestPath):
    """Widest path re-chosen on every monitoring refresh."""

    label = "ShortestPath-dynamic"

    def __init__(
        self, config: ShortestPathConfig | dict | None = None, **legacy
    ) -> None:
        cfg = resolve_config(
            ShortestPathConfig, config, legacy,
            "DynamicShortestPath(n_nodes=..., replan_interval=...)",
            "DynamicShortestPath(ShortestPathConfig(...))",
        )
        super().__init__(cfg)
        self.replan_interval = cfg.replan_interval

    def run(
        self, engine: SageEngine, src_region: str, dst_region: str, size: float
    ) -> BaselineResult:
        before = engine.env.meter.snapshot()
        state = {"session": None, "remaining": size, "vm_seconds": 0.0}

        def _launch(done) -> None:
            path = self.choose_path(engine, src_region, dst_region)
            plan = _materialise_path(
                engine,
                path,
                _instances_for_budget(path, self.n_nodes),
                self.streams,
            )
            t_start = engine.sim.now

            def _finished(session) -> None:
                state["vm_seconds"] += plan.vm_count() * (engine.sim.now - t_start)
                state["session"] = None
                done()

            state["session"] = engine.transfers.execute(
                plan, state["remaining"], on_complete=_finished
            )

            def _replan() -> None:
                session = state["session"]
                if session is None or session.done:
                    return
                fresh = self.choose_path(engine, src_region, dst_region)
                if fresh != path:
                    remaining = session.cancel()
                    state["vm_seconds"] += plan.vm_count() * (
                        engine.sim.now - t_start
                    )
                    if remaining > 0:
                        state["remaining"] = remaining
                        _launch(done)
                    else:
                        done()
                else:
                    engine.sim.schedule(self.replan_interval, _replan)

            engine.sim.schedule(self.replan_interval, _replan)

        seconds = run_transfer_to_completion(engine, _launch)
        spent = engine.env.meter.snapshot() - before
        return BaselineResult(
            label=self.label,
            seconds=seconds,
            egress_usd=spent.egress_usd,
            vm_seconds_busy=state["vm_seconds"],
        )
