"""Environment-unaware parallel transfer.

The strategy everyone reaches for first: split the payload evenly over a
fixed set of source-site VMs chosen at launch, each shipping its share in
parallel. No monitoring, no re-planning — when one of the chosen VMs (or
its network share) degrades mid-transfer, the whole transfer waits for the
straggler. This is the comparator the environment-aware manager beats by
up to ~20 % on long transfers (experiment E5).
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, run_transfer_to_completion
from repro.core.engine import SageEngine
from repro.config import ParallelStaticConfig, resolve_config
from repro.transfer.plan import RouteAssignment, TransferPlan


class StaticParallel:
    """Fixed-node, equal-share parallel transfer."""

    label = "StaticParallel"

    def __init__(
        self, config: ParallelStaticConfig | dict | None = None, **legacy
    ) -> None:
        cfg = resolve_config(
            ParallelStaticConfig, config, legacy,
            "StaticParallel(n_nodes=..., streams=...)",
            "StaticParallel(ParallelStaticConfig(...))",
        )
        self.config = cfg
        self.n_nodes = cfg.n_nodes
        self.streams = cfg.streams

    def build_plan(
        self, engine: SageEngine, src_region: str, dst_region: str
    ) -> TransferPlan:
        senders = engine.deployment.vms(src_region)[: self.n_nodes]
        receivers = engine.deployment.vms(dst_region)
        if not senders or not receivers:
            raise ValueError("deployment lacks VMs for static parallel transfer")
        # The dataset is distributed within the source site (the local
        # storage layer replicates it across the deployment), so every
        # sender streams its share from its own VM. Equal shares over a
        # fixed sender set are the strategy's defining weakness.
        routes = [
            RouteAssignment(
                [sender, receivers[i % len(receivers)]],
                weight=1.0,
                streams=self.streams,
            )
            for i, sender in enumerate(senders)
        ]
        return TransferPlan(routes, label="static-parallel")

    def run(
        self,
        engine: SageEngine,
        src_region: str,
        dst_region: str,
        size: float,
    ) -> BaselineResult:
        plan = self.build_plan(engine, src_region, dst_region)
        before = engine.env.meter.snapshot()

        def _start(done) -> None:
            engine.transfers.execute(plan, size, on_complete=lambda _s: done())

        seconds = run_transfer_to_completion(engine, _start)
        spent = engine.env.meter.snapshot() - before
        return BaselineResult(
            label=self.label,
            seconds=seconds,
            egress_usd=spent.egress_usd,
            vm_seconds_busy=plan.vm_count() * seconds,
        )
