"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

The injector schedules every plan event on the simulation clock and
applies it to the live environment: crashing/restoring VMs, taking WAN
links down/up, scaling link capacity, and arming batch drop/duplicate
windows that the reliable shipping layer consults through
:meth:`FaultInjector.intercept_batch`. Every applied fault lands in an
ordered :attr:`log` — with a fixed seed the log is bit-identical across
runs, which is the reproducibility contract of ``repro chaos``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.obs import NULL_OBSERVER


@dataclass(frozen=True)
class AppliedFault:
    """One fault as actually applied (the event-log record)."""

    time: float
    kind: str
    target: str
    param: float = 0.0


@dataclass
class _BatchWindow:
    kind: str
    origin: str
    until: float
    probability: float
    applied: int = 0


@dataclass
class RecoveryReport:
    """Roll-up the chaos CLI prints after a scenario run."""

    faults: list[AppliedFault] = field(default_factory=list)
    batches_dropped: int = 0
    batches_duplicated: int = 0

    def describe(self) -> str:
        lines = [f"faults applied: {len(self.faults)}"]
        for f in self.faults:
            extra = f" ({f.param:.0f})" if f.param else ""
            lines.append(f"  t={f.time:8.1f}s  {f.kind:<15} {f.target}{extra}")
        lines.append(
            f"batches dropped in flight: {self.batches_dropped}, "
            f"duplicated: {self.batches_duplicated}"
        )
        return "\n".join(lines)


class FaultInjector:
    """Applies a fault plan to a running engine's environment."""

    def __init__(self, engine, plan: FaultPlan, observer=None) -> None:
        self.engine = engine
        self.env = engine.env
        self.sim = engine.env.sim
        self.plan = plan
        self.observer = (
            observer if observer is not None
            else getattr(engine, "observer", NULL_OBSERVER)
        )
        #: Ordered log of applied faults (including batch interceptions).
        self.log: list[AppliedFault] = []
        self._windows: list[_BatchWindow] = []
        self._rng = self.sim.rngs.get("faults/batch")
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every plan event and register with the engine.

        Plan times are *relative to arming*: arming at t₀ applies an
        event with ``time=60`` at t₀+60. A scenario therefore means the
        same thing whether the engine warmed up for two minutes or an
        hour before the chaos starts.
        """
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        for event in self.plan:
            self.sim.schedule(event.time, self._apply, event)
        if hasattr(self.engine, "attach_faults"):
            self.engine.attach_faults(self)
        return self

    # ------------------------------------------------------------------
    def _record(self, kind: str, target: str, param: float = 0.0) -> None:
        self.log.append(AppliedFault(self.sim.now, kind, target, param))
        if self.observer.enabled:
            self.observer.counter("faults_injected_total", kind=kind).inc()

    def _emit(self, event: FaultEvent) -> None:
        emit = getattr(self.engine, "emit_fault", None)
        if emit is not None:
            emit(event.kind, event.target)

    def _find_vm(self, vm_id: str):
        for vm in self.env.deployment.vms():
            if vm.vm_id == vm_id:
                return vm
        raise KeyError(f"no deployed VM {vm_id!r}")

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == FaultKind.VM_CRASH:
            self._find_vm(event.target).fail()
            self.env.network.notify_change()
        elif kind == FaultKind.VM_RESTART:
            self._find_vm(event.target).restore()
            self.env.network.notify_change()
        elif kind == FaultKind.LINK_DOWN:
            src, dst = event.target.split("->")
            self.env.topology.link(src, dst).set_down()
            self.env.network.notify_change()
        elif kind == FaultKind.LINK_UP:
            src, dst = event.target.split("->")
            self.env.topology.link(src, dst).set_up()
            self.env.network.notify_change()
        elif kind == FaultKind.LINK_FLAP:
            src, dst = event.target.split("->")
            link = self.env.topology.link(src, dst)
            link.scale_capacity(event.param2)
            self.env.network.notify_change()
            self.sim.schedule(event.param, self._unflap, link)
        elif kind in (FaultKind.PARTITION, FaultKind.PARTITION_HEAL):
            group_a, group_b = (g.split(",") for g in event.target.split("|"))
            down = kind == FaultKind.PARTITION
            for a in group_a:
                for b in group_b:
                    for src, dst in ((a, b), (b, a)):
                        link = self.env.topology.link(src, dst)
                        link.set_down() if down else link.set_up()
            self.env.network.notify_change()
        elif kind in (FaultKind.BATCH_DROP, FaultKind.BATCH_DUP):
            self._windows.append(
                _BatchWindow(
                    kind,
                    event.target,
                    self.sim.now + event.param,
                    event.param2 or 1.0,
                )
            )
        elif kind == FaultKind.LEADER_KILL:
            # No direct environment mutation: the emit below carries the
            # event onto the fault bus, where an armed ControlPlane kills
            # whichever replica currently holds the lease and drives the
            # standby promotion. Without a control plane the event is a
            # recorded no-op by design.
            pass
        self._record(kind, event.target, event.param)
        self._emit(event)

    def _unflap(self, link) -> None:
        link.scale_capacity(1.0)
        self.env.network.notify_change()
        self._record(FaultKind.LINK_UP, f"{link.src}->{link.dst}")
        self._emit(FaultEvent(self.sim.now, FaultKind.LINK_UP,
                              f"{link.src}->{link.dst}"))

    # ------------------------------------------------------------------
    # Batch interception (consulted by ReliableShipping per attempt)
    # ------------------------------------------------------------------
    def intercept_batch(self, origin: str, seq: int) -> str:
        """Verdict for one shipped batch: deliver, drop, or duplicate."""
        now = self.sim.now
        for window in self._windows:
            if now > window.until:
                continue
            if window.origin not in ("*", origin):
                continue
            if (
                window.probability < 1.0
                and self._rng.random() >= window.probability
            ):
                continue
            window.applied += 1
            self._record(window.kind, f"{origin}:{seq}")
            return (
                "drop" if window.kind == FaultKind.BATCH_DROP else "duplicate"
            )
        return "deliver"

    # ------------------------------------------------------------------
    @property
    def batches_dropped(self) -> int:
        return sum(1 for f in self.log if f.kind == FaultKind.BATCH_DROP
                   and ":" in f.target)

    @property
    def batches_duplicated(self) -> int:
        return sum(1 for f in self.log if f.kind == FaultKind.BATCH_DUP
                   and ":" in f.target)

    def report(self) -> RecoveryReport:
        return RecoveryReport(
            faults=list(self.log),
            batches_dropped=self.batches_dropped,
            batches_duplicated=self.batches_duplicated,
        )
