"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` s on the
virtual-time axis. Plans are built either explicitly (scripted chaos
scenarios, unit tests) or generated from a seed with :meth:`FaultPlan.random`
— both are fully deterministic, which is what makes fault-recovery
experiments reproducible and A/B-comparable across strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class FaultKind:
    """Namespace of fault-event kinds (plain strings for easy logging)."""

    VM_CRASH = "vm.crash"
    VM_RESTART = "vm.restart"
    LINK_DOWN = "link.down"
    LINK_UP = "link.up"
    LINK_FLAP = "link.flap"
    PARTITION = "partition"
    PARTITION_HEAL = "partition.heal"
    BATCH_DROP = "batch.drop"
    BATCH_DUP = "batch.dup"
    LEADER_KILL = "leader.kill"

    ALL = (
        VM_CRASH, VM_RESTART, LINK_DOWN, LINK_UP, LINK_FLAP,
        PARTITION, PARTITION_HEAL, BATCH_DROP, BATCH_DUP, LEADER_KILL,
    )


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is a VM id for VM faults, ``"SRC->DST"`` for link faults,
    ``"A,B|C,D"`` (two comma-separated region groups) for partitions, and
    an origin-region filter (or ``"*"``) for batch faults. ``param`` is
    the duration of windowed faults (link flap, batch drop/dup windows)
    or the capacity factor for :data:`FaultKind.LINK_FLAP` (see
    ``param2``).
    """

    time: float
    kind: str
    target: str
    param: float = 0.0
    param2: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class FaultPlan:
    """An ordered, deterministic schedule of fault events."""

    events: list[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort()
        return self

    # -- dict form (config surface / sweep cache keys) -----------------
    def to_dict(self) -> dict:
        return {
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "target": e.target,
                    "param": e.param,
                    "param2": e.param2,
                }
                for e in self.events
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        plan = cls()
        for entry in data.get("events", []):
            plan.add(FaultEvent(**entry))
        return plan

    # -- builders ------------------------------------------------------
    def crash_vm(
        self, time: float, vm_id: str, restart_after: float | None = None
    ) -> "FaultPlan":
        """Hard-crash ``vm_id``; optionally restart it after a delay."""
        self.add(FaultEvent(time, FaultKind.VM_CRASH, vm_id))
        if restart_after is not None:
            if restart_after <= 0:
                raise ValueError("restart_after must be positive")
            self.add(
                FaultEvent(time + restart_after, FaultKind.VM_RESTART, vm_id)
            )
        return self

    def restart_vm(self, time: float, vm_id: str) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.VM_RESTART, vm_id))

    def link_down(
        self, time: float, src: str, dst: str, duration: float | None = None
    ) -> "FaultPlan":
        """Blackhole the directed WAN link; optionally restore later."""
        target = f"{src}->{dst}"
        self.add(FaultEvent(time, FaultKind.LINK_DOWN, target))
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be positive")
            self.add(FaultEvent(time + duration, FaultKind.LINK_UP, target))
        return self

    def link_up(self, time: float, src: str, dst: str) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.LINK_UP, f"{src}->{dst}"))

    def flap_link(
        self, time: float, src: str, dst: str, scale: float, duration: float
    ) -> "FaultPlan":
        """Scale the link's capacity by ``scale`` for ``duration`` seconds."""
        if scale < 0:
            raise ValueError("scale must be >= 0")
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.add(
            FaultEvent(time, FaultKind.LINK_FLAP, f"{src}->{dst}", duration, scale)
        )

    def partition(
        self,
        time: float,
        group_a: list[str],
        group_b: list[str],
        duration: float | None = None,
    ) -> "FaultPlan":
        """Take down every directed link between the two region groups."""
        if not group_a or not group_b:
            raise ValueError("both partition groups must be non-empty")
        target = ",".join(group_a) + "|" + ",".join(group_b)
        self.add(FaultEvent(time, FaultKind.PARTITION, target))
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be positive")
            self.add(
                FaultEvent(time + duration, FaultKind.PARTITION_HEAL, target)
            )
        return self

    def drop_batches(
        self,
        time: float,
        duration: float,
        origin: str = "*",
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Drop shipped batches from ``origin`` during a time window."""
        return self._batch_window(
            FaultKind.BATCH_DROP, time, duration, origin, probability
        )

    def duplicate_batches(
        self,
        time: float,
        duration: float,
        origin: str = "*",
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Duplicate shipped batches from ``origin`` during a time window."""
        return self._batch_window(
            FaultKind.BATCH_DUP, time, duration, origin, probability
        )

    def kill_leader(self, time: float, recovery: float = 0.0) -> "FaultPlan":
        """Kill whichever aggregator currently holds the leader lease.

        The injector records and emits the event on the fault bus; an
        armed :class:`repro.control.ControlPlane` performs the actual
        kill and the subsequent standby promotion. ``recovery`` is the
        expected kill-to-respawn window (MTTR bound + respawn delay) —
        it widens :meth:`horizon` so runners drain after the plane has
        fully recovered, exactly like other windowed faults.
        """
        if recovery < 0:
            raise ValueError("recovery must be >= 0")
        return self.add(
            FaultEvent(time, FaultKind.LEADER_KILL, "leader", recovery)
        )

    def _batch_window(
        self, kind: str, time: float, duration: float, origin: str, p: float
    ) -> "FaultPlan":
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 < p <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        return self.add(FaultEvent(time, kind, origin, duration, p))

    # -- generation ----------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        vm_ids: list[str],
        links: list[tuple[str, str]],
        horizon: float,
        crash_rate: float = 2.0,
        blackhole_rate: float = 1.0,
        flap_rate: float = 1.0,
        mean_outage: float = 60.0,
    ) -> "FaultPlan":
        """Generate a seeded schedule over ``horizon`` seconds.

        ``*_rate`` are expected event counts over the horizon (Poisson).
        The same seed with the same arguments always produces the same
        plan — the determinism tests rely on it.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.Generator(np.random.PCG64(seed))
        plan = cls()
        if vm_ids:
            for _ in range(rng.poisson(crash_rate)):
                vm = vm_ids[int(rng.integers(len(vm_ids)))]
                t = float(rng.uniform(0, horizon))
                outage = float(rng.exponential(mean_outage)) + 1.0
                plan.crash_vm(t, vm, restart_after=outage)
        if links:
            for _ in range(rng.poisson(blackhole_rate)):
                src, dst = links[int(rng.integers(len(links)))]
                t = float(rng.uniform(0, horizon))
                outage = float(rng.exponential(mean_outage)) + 1.0
                plan.link_down(t, src, dst, duration=outage)
            for _ in range(rng.poisson(flap_rate)):
                src, dst = links[int(rng.integers(len(links)))]
                t = float(rng.uniform(0, horizon))
                outage = float(rng.exponential(mean_outage)) + 1.0
                scale = float(rng.uniform(0.05, 0.5))
                plan.flap_link(t, src, dst, scale, outage)
        return plan

    # -- views ---------------------------------------------------------
    def horizon(self) -> float:
        """Virtual time (relative to arming) when the plan is fully over.

        Windowed faults (link flaps, batch drop/dup windows) carry their
        duration in ``param``; their effect ends at ``time + param``, not
        at ``time``. A runner that wants a quiescent tail must keep the
        simulation alive past this point before draining.
        """
        end = 0.0
        windowed = (FaultKind.LINK_FLAP, FaultKind.BATCH_DROP,
                    FaultKind.BATCH_DUP, FaultKind.LEADER_KILL)
        for e in self.events:
            e_end = e.time + (e.param if e.kind in windowed else 0.0)
            end = max(end, e_end)
        return end

    def counts_by_kind(self) -> dict[str, int]:
        """Event counts keyed by :class:`FaultKind`, sorted by kind."""
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        lines = [
            f"t={e.time:8.1f}s  {e.kind:<15} {e.target}"
            + (f"  ({e.param:.0f}s)" if e.param else "")
            for e in self.events
        ]
        return "\n".join(lines) if lines else "(empty fault plan)"


def chaos_scenario(
    sender_vm_ids: list[str],
    link: tuple[str, str],
    t_crash: float = 60.0,
    crash_outage: float = 90.0,
    t_blackhole: float = 90.0,
    blackhole_outage: float = 60.0,
    dup_window: tuple[float, float] | None = (30.0, 60.0),
) -> FaultPlan:
    """The scripted ``repro chaos`` scenario.

    Crashes two sender VMs mid-run, blackholes one inter-region link,
    and (optionally) duplicates shipped batches for a while — the three
    failure classes the recovery machinery must absorb with zero loss
    and zero double-counting.
    """
    if len(sender_vm_ids) < 2:
        raise ValueError("chaos scenario needs at least two sender VMs")
    plan = FaultPlan()
    plan.crash_vm(t_crash, sender_vm_ids[0], restart_after=crash_outage)
    plan.crash_vm(t_crash + 5.0, sender_vm_ids[1], restart_after=crash_outage)
    plan.link_down(t_blackhole, link[0], link[1], duration=blackhole_outage)
    if dup_window is not None:
        plan.duplicate_batches(dup_window[0], dup_window[1])
    return plan
