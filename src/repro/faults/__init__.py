"""Deterministic fault injection for hard-failure experiments.

The cloud layer models *soft* degradation (AR(1) weather, glitches,
``VM.degrade``); this package injects *hard* faults on the simulation
clock — VM crashes/restarts, link blackholes and partitions, capacity
flaps, and dropped/duplicated shipped batches — from a declarative,
seeded :class:`FaultPlan`, so two runs with the same seed replay the
identical fault schedule. The :class:`FaultInjector` applies the plan,
keeps an ordered event log (the determinism contract of ``repro chaos``),
and exposes the batch-interception hook the reliable shipping layer
consults.
"""

from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, chaos_scenario
from repro.faults.scenario import ChaosResult, run_chaos

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "AppliedFault",
    "chaos_scenario",
    "ChaosResult",
    "run_chaos",
]
