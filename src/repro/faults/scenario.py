"""The scripted fault-recovery scenario behind ``repro chaos``.

One function, :func:`run_chaos`, builds a deterministic geo-streaming run
(two producing sites, one aggregation site, reliable shipping over the
managed substrate), arms the scripted :func:`~repro.faults.plan.chaos_scenario`
— two sender VMs crash, one inter-region link blackholes, shipped batches
are duplicated for a while — and drains the job cleanly so the recovery
contract can be checked *exactly*:

* **zero lost records** — every ingested record is counted in exactly one
  emitted global window result;
* **zero double-counted records** — injected duplicates and at-least-once
  re-sends are removed by the aggregator's dedup;
* **bounded recovery** — crash detection latency stays within the
  detector's bound and the drain completes within the finalize grace;
* **honest accounting** — retried batches pay wide-area egress like any
  other bytes.

The same seed always produces the same fault log, retry counts, and
result set; the chaos test and the E11 benchmark both call this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cloud.deployment import CloudEnvironment
from repro.config import ChaosConfig, resolve_config
from repro.report import ScenarioReport, metrics_snapshot
from repro.core.engine import SageEngine
from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.plan import FaultPlan, chaos_scenario
from repro.obs.audit import SLOAuditor
from repro.simulation.units import format_bytes
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import ReliableShipping, SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


@dataclass
class ChaosResult:
    """Everything the recovery report needs, in plain numbers."""

    seed: int
    duration: float
    ingested: int
    counted: int
    results: int
    faults: list[AppliedFault] = field(default_factory=list)
    retries: int = 0
    abandoned: int = 0
    duplicates_delivered: int = 0
    duplicates_dropped: int = 0
    suspicions: int = 0
    recoveries: int = 0
    detection_latencies: list[float] = field(default_factory=list)
    detection_bound: float = 0.0
    drain_seconds: float = 0.0
    wan_bytes: float = 0.0
    egress_bytes: float = 0.0
    egress_usd: float = 0.0
    #: Continuous-auditor outcome (:class:`repro.obs.audit.AuditReport`
    #: dict form) and attributed cost rollup.
    audit: dict = field(default_factory=dict)
    cost: dict = field(default_factory=dict)
    slo_violations: int = 0
    strict_slo: bool = False

    @property
    def lost(self) -> int:
        return max(0, self.ingested - self.counted)

    @property
    def double_counted(self) -> int:
        return max(0, self.counted - self.ingested)

    @property
    def clean(self) -> bool:
        """The recovery contract held: nothing lost, nothing doubled
        (and, under ``strict_slo``, zero auditor violations)."""
        ok = self.lost == 0 and self.double_counted == 0
        if self.strict_slo:
            ok = ok and self.slo_violations == 0
        return ok

    def describe(self) -> str:
        lines = [
            f"chaos run: seed={self.seed} duration={self.duration:.0f}s",
            "",
            f"faults applied: {len(self.faults)}",
        ]
        for f in self.faults:
            extra = f" ({f.param:.0f}s)" if f.param else ""
            lines.append(f"  t={f.time:7.1f}s  {f.kind:<12} {f.target}{extra}")
        max_lat = max(self.detection_latencies, default=0.0)
        lines += [
            "",
            f"failure detector: {self.suspicions} suspicions, "
            f"{self.recoveries} recoveries, worst detection latency "
            f"{max_lat:.1f}s (bound {self.detection_bound:.1f}s)",
            f"shipping: {self.retries} retries, {self.abandoned} abandoned, "
            f"{self.duplicates_delivered} duplicate deliveries",
            f"aggregator: {self.duplicates_dropped} duplicate batches dropped",
            f"drain after sources stopped: {self.drain_seconds:.1f}s",
            "",
            f"records ingested: {self.ingested}",
            f"records counted:  {self.counted} "
            f"in {self.results} window results",
            f"lost: {self.lost}, double-counted: {self.double_counted}",
            f"wide-area bytes (incl. retries): {format_bytes(self.wan_bytes)}, "
            f"egress ${self.egress_usd:.4f}",
            f"auditor: {self.audit.get('checks', 0)} checks, "
            f"{self.slo_violations} violations"
            + (" (strict)" if self.strict_slo else ""),
            "",
            "verdict: " + ("CLEAN — zero loss, zero double-counting"
                           if self.clean else "DATA INTEGRITY VIOLATED"),
        ]
        return "\n".join(lines)


def run_chaos(
    config: ChaosConfig | dict | None = None,
    *,
    plan: FaultPlan | dict | None = None,
    observer=None,
    **legacy,
) -> ScenarioReport:
    """Run the scripted chaos scenario to completion (virtual time).

    Takes a :class:`~repro.config.ChaosConfig` (or its dict form); the
    pre-dataclass keyword surface (``seed=``, ``duration=``, ...) still
    works but emits :class:`DeprecationWarning`. Returns a
    :class:`~repro.report.ScenarioReport` whose ``details`` is the
    :class:`ChaosResult` payload (attribute access falls through).

    ``plan=None`` arms the canonical scenario: the first site's first two
    sender VMs crash at t≈60s (restarting 90s later) and the first
    site → aggregation link blackholes for 60s at t=90s, with a batch
    duplication window early on. ``inject=False`` runs the identical
    workload fault-free — the baseline arm of experiment E11.
    """
    if isinstance(config, int):  # pre-dataclass positional seed
        legacy["seed"] = config
        config = None
    cfg = resolve_config(
        ChaosConfig, config, legacy,
        "run_chaos(seed=..., duration=..., ...)",
        "run_chaos(ChaosConfig(...))",
    )
    if isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    wall0 = time.perf_counter()
    seed = cfg.seed
    duration = cfg.duration
    site_regions = cfg.site_regions
    aggregation_region = cfg.aggregation_region
    records_per_s = cfg.records_per_s
    inject = cfg.inject
    delivery_timeout = cfg.delivery_timeout
    max_retries = cfg.max_retries

    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    spec = {site_regions[0]: 4, site_regions[1]: 3, aggregation_region: 4}
    engine = SageEngine(env, deployment_spec=spec, observer=observer)
    engine.start(learning_phase=120.0)

    job = StreamJob(
        name="chaos",
        sites=[
            SiteSpec(
                region,
                [PoissonSource(f"src-{region}", rate=records_per_s,
                               keys=["k1", "k2"])],
            )
            for region in site_regions
        ],
        aggregation_region=aggregation_region,
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        # The grace must cover a batch's worst recovery path: detection
        # (≤ 20s) or stall (≤ 30s), then timed-out retries with backoff
        # until the route heals (~45s for the 60s blackhole, because the
        # stall feedback reroutes around the dead link). 90s holds all
        # of it with margin.
        finalize_grace=90.0,
    )
    factory = ReliableShipping.factory(
        SageShipping.factory(n_nodes=2, plan_ttl=30.0),
        delivery_timeout=delivery_timeout,
        max_retries=max_retries,
    )
    runtime = GeoStreamRuntime(engine, job, factory)
    auditor = SLOAuditor(
        engine,
        runtime,
        max_latency_s=cfg.slo_max_latency_s,
        max_usd_per_1k=cfg.slo_max_usd_per_1k,
    ).start()

    injector: FaultInjector | None = None
    if inject:
        if plan is None:
            senders = [vm.vm_id for vm in engine.deployment.vms(site_regions[0])]
            plan = chaos_scenario(
                senders, (site_regions[0], aggregation_region)
            )
        injector = FaultInjector(engine, plan).arm()

    t0 = engine.sim.now
    runtime.start()
    engine.run_until(t0 + duration)
    # Quiet the sources but keep ticking: watermarks advance past every
    # open window, the batchers flush, and retries drain.
    for site in runtime.sites.values():
        site.stop_sources()
    drain_start = engine.sim.now
    engine.run_until(drain_start + job.watermark_lag + 15.0)
    runtime.stop()
    engine.run_until(engine.sim.now + job.finalize_grace + 60.0)
    engine.env.finalize()

    audit_report = auditor.finish()
    ingested = runtime.records_ingested()
    counted = sum(r.record_count for r in runtime.results)
    cost = engine.ledger.summary(
        windows=len(runtime.results) or None, records=ingested or None
    )
    last_emit = max((r.emitted_at for r in runtime.results), default=drain_start)
    detector = engine.detector
    meter = engine.env.meter.snapshot()
    backends = [site.shipping for site in runtime.sites.values()]
    result = ChaosResult(
        seed=seed,
        duration=duration,
        ingested=ingested,
        counted=counted,
        results=len(runtime.results),
        faults=list(injector.log) if injector is not None else [],
        retries=sum(b.retries for b in backends),
        abandoned=sum(b.abandoned for b in backends),
        duplicates_delivered=sum(b.duplicates_delivered for b in backends),
        duplicates_dropped=runtime.aggregator.duplicates_dropped,
        suspicions=detector.suspicions if detector else 0,
        recoveries=detector.recoveries if detector else 0,
        detection_latencies=(
            list(detector.detection_latencies) if detector else []
        ),
        detection_bound=(
            detector.detection_latency_bound() if detector else 0.0
        ),
        drain_seconds=max(0.0, last_emit - drain_start),
        wan_bytes=runtime.wan_bytes(),
        egress_bytes=meter.egress_bytes,
        egress_usd=meter.egress_usd,
        audit=audit_report.to_dict(),
        cost=cost.to_dict(),
        slo_violations=len(audit_report.violations),
        strict_slo=cfg.strict_slo,
    )
    return ScenarioReport(
        scenario="chaos",
        config=cfg.to_dict(),
        seed=seed,
        virtual_seconds=engine.sim.now,
        wall_seconds=time.perf_counter() - wall0,
        details=result,
        metrics=metrics_snapshot(observer),
    )


__all__ = ["ChaosResult", "run_chaos"]
