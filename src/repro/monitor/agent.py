"""The Monitoring Agent.

One agent runs per deployment. It schedules every registered sampler at a
configurable interval, routes link measurements into the
:class:`~repro.monitor.linkmap.LinkPerformanceMap`, appends everything to
per-metric histories, and enforces two non-intrusiveness rules from the
system design:

* sampling of a link is *suspended* while the deployment is running an
  application transfer on that link (the transfer itself is the best
  sample — the agent ingests achieved transfer throughput for free);
* a VM whose CPU load is above the intrusiveness threshold is not asked
  to run measurement work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ConfigBase
from repro.cloud.deployment import Deployment
from repro.cloud.network import FluidNetwork
from repro.cloud.vm import VM
from repro.monitor.estimators import Estimator, make_estimator
from repro.obs import NULL_OBSERVER
from repro.monitor.history import MetricHistory
from repro.monitor.linkmap import LinkPerformanceMap
from repro.monitor.samplers import ActiveProbeSampler, PassiveLinkSampler, Sampler
from repro.simulation.engine import PeriodicTask
from repro.simulation.units import MB, MINUTE


@dataclass
class MonitorConfig(ConfigBase):
    """Tunable knobs of the Monitoring Agent."""

    #: Seconds between sampling rounds.
    interval: float = MINUTE
    #: Estimator strategy for link throughput ("WSI", "LSI", "Monitor", "EWMA").
    strategy: str = "WSI"
    #: Extra keyword arguments for the estimator factory.
    strategy_kwargs: dict = field(default_factory=dict)
    #: Use active probe transfers instead of passive estimates.
    active_probing: bool = False
    #: Probe payload for active probing.
    probe_size: float = 4 * MB
    #: Parallel streams used when measuring a link. Keep equal to the
    #: decision engine's per-route stream count so the link model predicts
    #: what a transfer route will actually achieve.
    probe_streams: int = 4
    #: Suspend a VM's measurements above this CPU load.
    cpu_threshold: float = 0.85
    #: Suspend link probing while an application transfer uses the link.
    suspend_during_transfers: bool = True
    #: Run the heartbeat failure detector alongside sampling.
    failure_detection: bool = True
    #: Heartbeat period of the failure detector.
    heartbeat_interval: float = 5.0
    #: Heartbeat silence after which a VM is suspected dead.
    failure_timeout: float = 15.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.probe_size <= 0:
            raise ValueError("probe_size must be positive")
        if self.probe_streams < 1:
            raise ValueError("probe_streams must be >= 1")
        if not 0.0 < self.cpu_threshold <= 1.0:
            raise ValueError("cpu_threshold must be in (0, 1]")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.failure_timeout < self.heartbeat_interval:
            raise ValueError(
                "failure_timeout must be >= heartbeat_interval — a timeout "
                "shorter than one heartbeat period suspects every VM"
            )

    @property
    def detection_bound(self) -> float:
        """Worst-case failure-detection latency: a VM that dies right
        after heartbeating is suspected at most one heartbeat period
        plus the timeout later. Failover MTTR experiments sweep this."""
        return self.failure_timeout + self.heartbeat_interval


class MonitoringAgent:
    """Periodically samples the environment and maintains the link map."""

    def __init__(
        self,
        network: FluidNetwork,
        deployment: Deployment,
        config: MonitorConfig | None = None,
        observer=None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.deployment = deployment
        self.config = config or MonitorConfig()
        self.observer = observer if observer is not None else NULL_OBSERVER
        obs = self.observer
        self._m_samples = obs.counter("monitor_samples_total")
        self._m_suspended = obs.counter("monitor_samples_suspended_total")
        #: |estimate - sample| / sample per link sample — the live view of
        #: how well the estimator strategy tracks the link's weather.
        self._m_est_err = obs.histogram("monitor_estimator_relative_error")
        self.link_map = LinkPerformanceMap()
        #: Learned aggregate capacity per directed link (bytes/s): the
        #: running peak of observed utilisation, with slow decay so stale
        #: highs fade. Only transfers that actually load a link teach it.
        self.capacity_estimates: dict[tuple[str, str], float] = {}
        self.histories: dict[str, MetricHistory] = {}
        self.samples_taken = 0
        self.samples_suspended = 0
        self._link_samplers: dict[tuple[str, str], Sampler] = {}
        self._link_vms: dict[tuple[str, str], tuple[VM, VM]] = {}
        self._extra_samplers: list[Sampler] = []
        self._task: PeriodicTask | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def watch_all_links(self) -> None:
        """Monitor every directed pair of regions the deployment spans."""
        regions = self.deployment.regions()
        for src in regions:
            for dst in regions:
                if src != dst:
                    self.watch_link(src, dst)

    def watch_link(self, src: str, dst: str) -> None:
        """Start monitoring one directed region pair."""
        key = (src, dst)
        if key in self._link_samplers:
            return
        src_vms = self.deployment.vms(src)
        dst_vms = self.deployment.vms(dst)
        if not src_vms or not dst_vms:
            raise ValueError(
                f"deployment has no VMs to monitor {src}->{dst}"
            )
        src_vm, dst_vm = src_vms[0], dst_vms[0]
        cfg = self.config
        sampler: Sampler
        if cfg.active_probing:
            sampler = ActiveProbeSampler(
                self.network,
                src_vm,
                dst_vm,
                probe_size=cfg.probe_size,
                streams=cfg.probe_streams,
            )
        else:
            sampler = PassiveLinkSampler(
                self.network, src_vm, dst_vm, streams=cfg.probe_streams
            )
        self._link_samplers[key] = sampler
        self._link_vms[key] = (src_vm, dst_vm)
        self.link_map.register(
            src, dst, make_estimator(cfg.strategy, **cfg.strategy_kwargs)
        )

    def add_sampler(self, sampler: Sampler) -> None:
        """Register an additional pluggable sampler (CPU, memory, ...)."""
        self._extra_samplers.append(sampler)

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def start(self, initial_round: bool = True) -> None:
        """Begin periodic sampling (optionally with an immediate round)."""
        if self._task is not None:
            raise RuntimeError("agent already started")
        self._task = self.sim.add_periodic(
            self.config.interval,
            self._round,
            start_delay=0.0 if initial_round else None,
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def ingest(self, src: str, dst: str, time: float, value: float) -> None:
        """Feed an externally observed throughput sample (e.g. from a live
        application transfer) into the link model — free monitoring."""
        self.link_map.observe(src, dst, time, value)
        self._record(f"thr/{src}->{dst}", time, value)

    def note_utilization(
        self,
        src: str,
        dst: str,
        aggregate_rate: float,
        saturated: bool = True,
    ) -> None:
        """Record an observed *aggregate* rate on a link.

        Only observations taken while the link was *saturated* (our own
        flows demanded more than they achieved) teach capacity — an
        underloaded link's utilisation is a floor, not a capacity, and
        treating it as one would wrongly throttle future path growth.
        """
        if aggregate_rate <= 0 or not saturated:
            return
        key = (src, dst)
        current = self.capacity_estimates.get(key, 0.0)
        # Decay the old peak slightly so a stale high from better weather
        # does not pin the estimate forever.
        self.capacity_estimates[key] = max(aggregate_rate, current * 0.99)

    def capacity_estimate(self, src: str, dst: str) -> float | None:
        """Learned aggregate capacity of a link, or None if never loaded."""
        return self.capacity_estimates.get((src, dst))

    def _round(self) -> None:
        for key, sampler in self._link_samplers.items():
            if self._suspended(key):
                self.samples_suspended += 1
                self._m_suspended.inc()
                continue
            src, dst = key
            sampler.sample(
                lambda t, v, s=src, d=dst: self._on_link_sample(s, d, t, v)
            )
        for sampler in self._extra_samplers:
            sampler.sample(
                lambda t, v, m=sampler.metric: self._record(m, t, v)
            )

    def _suspended(self, key: tuple[str, str]) -> bool:
        cfg = self.config
        if cfg.suspend_during_transfers:
            # Any non-probe application flow currently on this link?
            for flow in self.network.flows:
                if key in flow.wan_hops() and not flow.label.startswith("probe:"):
                    return True
        src_vm, dst_vm = self._link_vms[key]
        if max(src_vm.cpu_load, dst_vm.cpu_load) > cfg.cpu_threshold:
            return True
        return False

    def _on_link_sample(self, src: str, dst: str, time: float, value: float) -> None:
        self.samples_taken += 1
        self._m_samples.inc()
        if self.observer.enabled and value > 0:
            # Error of the pre-sample estimate against the fresh sample.
            est = self.link_map.estimate(src, dst)
            if est.known:
                self._m_est_err.observe(abs(est.mean - value) / value)
        self.link_map.observe(src, dst, time, value)
        self._record(f"thr/{src}->{dst}", time, value)

    def _record(self, metric: str, time: float, value: float) -> None:
        hist = self.histories.get(metric)
        if hist is None:
            hist = self.histories[metric] = MetricHistory()
        hist.record(time, value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def history(self, metric: str) -> MetricHistory:
        return self.histories[metric]

    def estimated_throughput(self, src: str, dst: str) -> float:
        return self.link_map.throughput(src, dst)

    def node_health(self, vm: VM) -> float:
        """Measured health of one VM (CPU benchmark + NIC self-test).

        A point-in-time observation with small measurement noise — the
        decision manager uses it to detect and avoid degraded nodes.
        A crashed VM answers no probe at all: its measured health is 0.
        """
        if vm.failed:
            return 0.0
        rng = self.sim.rngs.get(f"health/{vm.vm_id}")
        return min(1.0, vm.health * rng.lognormal(0.0, 0.02))
