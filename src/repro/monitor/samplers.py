"""Pluggable samplers feeding the Monitoring Agent.

A sampler measures one metric once per invocation. Two measurement styles
exist for link throughput, with the trade-off experiment E3 quantifies:

* :class:`PassiveLinkSampler` — an iperf-style estimate of the currently
  achievable single-flow rate. Cheap (no payload) but noisy.
* :class:`ActiveProbeSampler` — ships a real probe payload through the
  fluid network and reports achieved throughput. Accurate, but the probe
  genuinely consumes NIC/link bandwidth, so it is visible to concurrent
  application transfers (intrusiveness).
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.cloud.network import FluidNetwork, Flow
from repro.cloud.vm import VM
from repro.simulation.units import MB


class Sampler(Protocol):
    """One measurable metric."""

    metric: str

    def sample(self, on_value: Callable[[float, float], None]) -> None:
        """Take one measurement; report via ``on_value(time, value)``.

        Reporting is callback-based because active samplers complete
        asynchronously in simulated time.
        """
        ...  # pragma: no cover - protocol


class PassiveLinkSampler:
    """Noisy observation of the currently achievable single-flow rate.

    The default dispersion (15 %) matches what short iperf-style probes
    actually show on wide-area paths; it is the reason integrating
    samples (LSI/WSI) beats trusting the latest one.
    """

    def __init__(
        self,
        network: FluidNetwork,
        src: VM,
        dst: VM,
        streams: int = 1,
        noise_cv: float = 0.15,
    ) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.streams = streams
        self.noise_cv = noise_cv
        self.metric = f"thr/{src.region_code}->{dst.region_code}"
        self._rng = network.sim.rngs.get(f"sampler/{self.metric}/{src.vm_id}")

    def sample(self, on_value: Callable[[float, float], None]) -> None:
        truth = self.network.isolated_rate([self.src, self.dst], self.streams)
        noise = self._rng.lognormal(mean=0.0, sigma=self.noise_cv)
        on_value(self.network.sim.now, truth * noise)


class ActiveProbeSampler:
    """Measure throughput by actually transferring a probe payload."""

    def __init__(
        self,
        network: FluidNetwork,
        src: VM,
        dst: VM,
        probe_size: float = 8 * MB,
        streams: int = 1,
        intrusiveness: float = 1.0,
    ) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.probe_size = probe_size
        self.streams = streams
        self.intrusiveness = intrusiveness
        self.metric = f"thr/{src.region_code}->{dst.region_code}"
        self.probes_sent = 0
        self.bytes_probed = 0.0
        self._in_flight = False

    def sample(self, on_value: Callable[[float, float], None]) -> None:
        if self._in_flight:
            # Never stack probes on the same link — that would measure
            # self-interference, not the link.
            return
        self._in_flight = True
        started = self.network.sim.now

        def _done(flow: Flow) -> None:
            self._in_flight = False
            elapsed = self.network.sim.now - started
            if elapsed > 0:
                on_value(self.network.sim.now, flow.size / elapsed)

        self.probes_sent += 1
        self.bytes_probed += self.probe_size
        self.network.start_flow(
            Flow(
                [self.src, self.dst],
                self.probe_size,
                streams=self.streams,
                intrusiveness=self.intrusiveness,
                on_complete=_done,
                label=f"probe:{self.metric}",
            )
        )


class CpuSampler:
    """Observed spare CPU fraction of a VM (benchmark-style measurement)."""

    def __init__(self, vm: VM, network: FluidNetwork, noise_cv: float = 0.03) -> None:
        self.vm = vm
        self.network = network
        self.noise_cv = noise_cv
        self.metric = f"cpu/{vm.vm_id}"
        self._rng = network.sim.rngs.get(f"sampler/{self.metric}")

    def sample(self, on_value: Callable[[float, float], None]) -> None:
        spare = max(0.0, 1.0 - self.vm.cpu_load) * self.vm.health
        noise = self._rng.lognormal(mean=0.0, sigma=self.noise_cv)
        on_value(self.network.sim.now, min(1.0, spare * noise))
