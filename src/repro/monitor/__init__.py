"""Environment monitoring: samplers, history, and online estimators.

The Monitoring Agent keeps a continuously updated map of what the cloud is
*actually* delivering — per-link throughput, latency, VM CPU — by sampling
at a configurable, intrusiveness-capped frequency and folding each sample
into an online estimator. The estimator family reproduces the three sample
integration strategies compared in the evaluation:

* ``Monitor`` (:class:`LastSampleEstimator`) — trust the latest sample;
* ``LSI`` (:class:`SlidingMeanEstimator`) — linear sliding-window average;
* ``WSI`` (:class:`WeightedSampleEstimator`) — weighted integration where a
  sample's trust combines its Gaussian plausibility under the current model
  with its temporal rarity.
"""

from repro.monitor.agent import MonitoringAgent, MonitorConfig
from repro.monitor.estimators import (
    Estimator,
    EwmaEstimator,
    LastSampleEstimator,
    SlidingMeanEstimator,
    WeightedSampleEstimator,
    make_estimator,
)
from repro.monitor.history import MetricHistory, MetricPoint
from repro.monitor.linkmap import LinkEstimate, LinkPerformanceMap
from repro.monitor.profiler import Anomaly, HistoryProfiler, MetricProfile
from repro.monitor.samplers import (
    ActiveProbeSampler,
    CpuSampler,
    PassiveLinkSampler,
    Sampler,
)

__all__ = [
    "MonitoringAgent",
    "MonitorConfig",
    "Estimator",
    "LastSampleEstimator",
    "SlidingMeanEstimator",
    "EwmaEstimator",
    "WeightedSampleEstimator",
    "make_estimator",
    "MetricHistory",
    "MetricPoint",
    "HistoryProfiler",
    "MetricProfile",
    "Anomaly",
    "LinkPerformanceMap",
    "LinkEstimate",
    "Sampler",
    "PassiveLinkSampler",
    "ActiveProbeSampler",
    "CpuSampler",
]
