"""Offline profiling and anomaly detection over the monitoring history.

The tracked logs serve two audiences: scientists profiling their cloud
application after the run, and the self-healing loop looking for
*sustained* deviations (a link that has genuinely deteriorated, a VM
whose delivered performance no longer matches its class) as opposed to
the transient glitches the estimators are built to ride out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitor.history import MetricHistory


@dataclass(frozen=True)
class Anomaly:
    """One detected sustained deviation."""

    metric: str
    kind: str  # "level-drop" | "level-rise" | "high-variance"
    start_time: float
    magnitude: float
    description: str


@dataclass(frozen=True)
class MetricProfile:
    """Summary of one metric's behaviour over the recorded period."""

    metric: str
    samples: int
    mean: float
    std: float
    cv: float
    p05: float
    p95: float
    trend_per_hour: float

    def is_stable(self, cv_threshold: float = 0.25) -> bool:
        return self.cv < cv_threshold


class HistoryProfiler:
    """Analyses recorded metric histories."""

    def __init__(
        self,
        window: int = 30,
        drop_threshold: float = 0.65,
        rise_threshold: float = 1.5,
        variance_threshold: float = 0.5,
    ) -> None:
        if window < 4:
            raise ValueError("window must be >= 4")
        if not 0.0 < drop_threshold < rise_threshold:
            raise ValueError(
                "thresholds must satisfy 0 < drop_threshold < "
                f"rise_threshold, got drop={drop_threshold!r} "
                f"rise={rise_threshold!r}"
            )
        if variance_threshold <= 0.0:
            raise ValueError("variance_threshold must be positive")
        self.window = window
        self.drop_threshold = drop_threshold
        self.rise_threshold = rise_threshold
        self.variance_threshold = variance_threshold

    # ------------------------------------------------------------------
    def profile(self, metric: str, history: MetricHistory) -> MetricProfile:
        values = history.values()
        times = history.times()
        if values.size == 0:
            raise ValueError(f"no samples recorded for {metric}")
        if values.size >= 2 and times[-1] > times[0]:
            slope = np.polyfit(times, values, 1)[0] * 3600.0
        else:
            slope = 0.0
        return MetricProfile(
            metric=metric,
            samples=int(values.size),
            mean=float(values.mean()),
            std=float(values.std()),
            cv=float(values.std() / values.mean()) if values.mean() else float("nan"),
            p05=float(np.percentile(values, 5)),
            p95=float(np.percentile(values, 95)),
            trend_per_hour=float(slope),
        )

    # ------------------------------------------------------------------
    def detect_anomalies(
        self, metric: str, history: MetricHistory
    ) -> list[Anomaly]:
        """Find sustained level shifts and variance blow-ups.

        A *sustained* deviation is a full window whose mean departs from
        the preceding baseline — single-sample glitches never span a
        window and are ignored by construction.
        """
        values = history.values()
        times = history.times()
        w = self.window
        if values.size < 2 * w:
            return []
        anomalies: list[Anomaly] = []
        baseline_mean = values[:w].mean()
        baseline_std = max(values[:w].std(), 1e-12)
        in_anomaly = False
        for i in range(w, values.size - w + 1, w):
            chunk = values[i : i + w]
            ratio = chunk.mean() / baseline_mean if baseline_mean else 1.0
            if ratio < self.drop_threshold and not in_anomaly:
                anomalies.append(
                    Anomaly(
                        metric,
                        "level-drop",
                        float(times[i]),
                        ratio,
                        f"mean fell to {ratio:.0%} of baseline",
                    )
                )
                in_anomaly = True
            elif ratio > self.rise_threshold and not in_anomaly:
                anomalies.append(
                    Anomaly(
                        metric,
                        "level-rise",
                        float(times[i]),
                        ratio,
                        f"mean rose to {ratio:.0%} of baseline",
                    )
                )
                in_anomaly = True
            elif (
                self.drop_threshold <= ratio <= self.rise_threshold and in_anomaly
            ):
                in_anomaly = False
                # Recovered: fold the chunk into a fresh baseline.
                baseline_mean = chunk.mean()
                baseline_std = max(chunk.std(), 1e-12)
            if chunk.std() > self.variance_threshold * chunk.mean() > 0:
                anomalies.append(
                    Anomaly(
                        metric,
                        "high-variance",
                        float(times[i]),
                        float(chunk.std() / chunk.mean()),
                        f"CV {chunk.std() / chunk.mean():.0%} within window",
                    )
                )
        return anomalies

    # ------------------------------------------------------------------
    def report(self, histories: dict[str, MetricHistory]) -> str:
        """Human-readable profile of every recorded metric."""
        lines = ["metric profile report", "=" * 21]
        for metric in sorted(histories):
            history = histories[metric]
            if len(history) == 0:
                continue
            p = self.profile(metric, history)
            anomalies = self.detect_anomalies(metric, history)
            stability = "stable" if p.is_stable() else "volatile"
            lines.append(
                f"{metric}: n={p.samples} mean={p.mean:.3g} cv={p.cv:.0%} "
                f"[{p.p05:.3g}, {p.p95:.3g}] trend={p.trend_per_hour:+.3g}/h "
                f"({stability}, {len(anomalies)} anomalies)"
            )
            for a in anomalies[:5]:
                lines.append(f"  - {a.kind} @t={a.start_time:.0f}: {a.description}")
        return "\n".join(lines)
