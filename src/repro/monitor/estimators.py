"""Online estimators: the sample-integration strategies under evaluation.

All estimators consume a timestamped stream of samples of one metric and
expose a current prediction ``mean`` plus an uncertainty ``std``. Memory is
O(1): the variability recurrence carries a second moment instead of storing
the window, exactly so a monitoring agent can track dozens of links in a
small VM.

The weighted strategy (WSI) encodes three observations about cloud
telemetry:

* in a *stable* environment an outlier sample is most likely a glitch and
  should be trusted little → Gaussian plausibility term;
* when the environment is genuinely *volatile* (large σ), far-off samples
  must still be accepted or the model can never follow a level shift → the
  same Gaussian term, which flattens as σ grows;
* a sample arriving after a long silence carries more information than one
  of a dense burst → temporal-rarity term.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Protocol


class Estimator(Protocol):
    """Common protocol of all sample-integration strategies."""

    name: str

    def update(self, time: float, sample: float) -> None:  # pragma: no cover
        ...

    @property
    def mean(self) -> float:  # pragma: no cover - protocol
        ...

    @property
    def std(self) -> float:  # pragma: no cover - protocol
        ...


class _Base:
    """Shared bookkeeping: sample count and last-update time."""

    name = "base"

    def __init__(self) -> None:
        self.samples_seen = 0
        self.last_time: float | None = None

    def _tick(self, time: float) -> float:
        """Record the sample time; returns seconds since previous sample."""
        dt = float("inf") if self.last_time is None else time - self.last_time
        if dt < 0:
            raise ValueError("samples must arrive in time order")
        self.last_time = time
        self.samples_seen += 1
        return dt

    @property
    def ready(self) -> bool:
        return self.samples_seen > 0


class LastSampleEstimator(_Base):
    """"Monitor" strategy: the latest sample *is* the prediction.

    Cheapest possible model and what most deployed systems do — and the
    worst tracker under cloud variability, as experiment E2 shows.
    """

    name = "Monitor"

    def __init__(self) -> None:
        super().__init__()
        self._value = float("nan")

    def update(self, time: float, sample: float) -> None:
        self._tick(time)
        self._value = float(sample)

    @property
    def mean(self) -> float:
        return self._value

    @property
    def std(self) -> float:
        return 0.0


class SlidingMeanEstimator(_Base):
    """"LSI" strategy: plain average of the last ``window`` samples."""

    name = "LSI"

    def __init__(self, window: int = 30) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        self._buf: deque[float] = deque(maxlen=window)

    def update(self, time: float, sample: float) -> None:
        self._tick(time)
        self._buf.append(float(sample))

    @property
    def mean(self) -> float:
        if not self._buf:
            return float("nan")
        return sum(self._buf) / len(self._buf)

    @property
    def std(self) -> float:
        n = len(self._buf)
        if n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((x - m) ** 2 for x in self._buf) / n)


class EwmaEstimator(_Base):
    """Exponentially weighted moving average (ablation arm for WSI).

    Fixed-gain smoothing: every sample gets the same weight ``alpha``
    regardless of how plausible or how rare it is.
    """

    name = "EWMA"

    def __init__(self, alpha: float = 0.15) -> None:
        super().__init__()
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._mean = float("nan")
        self._var = 0.0

    def update(self, time: float, sample: float) -> None:
        self._tick(time)
        s = float(sample)
        if math.isnan(self._mean):
            self._mean = s
            self._var = 0.0
            return
        delta = s - self._mean
        self._mean += self.alpha * delta
        # Standard EWM variance recurrence.
        self._var = (1 - self.alpha) * (self._var + self.alpha * delta * delta)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return math.sqrt(max(self._var, 0.0))


class WeightedSampleEstimator(_Base):
    """"WSI" strategy: per-sample trust weighting, O(1) memory.

    Each sample ``S`` receives a weight in (0, 1)::

        w = ( exp(-(mean - S)^2 / (2 sigma^2)) + min(dt, T) / T ) / 2

    combining Gaussian plausibility under the current model with temporal
    rarity (samples arriving after a long gap are more valuable). The mean
    and the second moment are then damped over an effective history of
    ``history`` samples::

        mean' = mean + (w / history) * (S - mean)
        m2'   = m2   + (w / history) * (S^2 - m2)
        sigma = sqrt(max(m2 - mean^2, 0))

    which is the constant-memory rewriting of a weighted sliding-window
    average: no window buffer, yet the update rate adapts per sample.
    """

    name = "WSI"

    def __init__(
        self,
        history: int = 12,
        time_reference: float = 600.0,
        sigma_floor_frac: float = 0.02,
    ) -> None:
        super().__init__()
        if history < 1:
            raise ValueError("history must be >= 1")
        if time_reference <= 0:
            raise ValueError("time_reference must be positive")
        self.history = history
        self.time_reference = time_reference
        self.sigma_floor_frac = sigma_floor_frac
        self._mean = float("nan")
        self._m2 = float("nan")

    def weight(self, time: float, sample: float, dt: float) -> float:
        """Trust assigned to a sample before integrating it."""
        sigma = self.std
        floor = abs(self._mean) * self.sigma_floor_frac
        sigma = max(sigma, floor, 1e-12)
        gauss = math.exp(-((self._mean - sample) ** 2) / (2.0 * sigma * sigma))
        # Rarity: dt >= time_reference → fully rare (1); dense burst → ~0.
        rarity = min(dt, self.time_reference) / self.time_reference
        return (gauss + rarity) / 2.0

    def update(self, time: float, sample: float) -> None:
        dt = self._tick(time)
        s = float(sample)
        if math.isnan(self._mean):
            self._mean = s
            # Seed the uncertainty so early Gaussian terms are permissive.
            seed_sigma = max(abs(s) * 0.2, 1e-12)
            self._m2 = s * s + seed_sigma * seed_sigma
            return
        w = self.weight(time, s, dt)
        gain = w / self.history
        self._mean += gain * (s - self._mean)
        self._m2 += gain * (s * s - self._m2)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        if math.isnan(self._m2):
            return 0.0
        return math.sqrt(max(self._m2 - self._mean * self._mean, 0.0))


_FACTORIES = {
    "Monitor": LastSampleEstimator,
    "LSI": SlidingMeanEstimator,
    "EWMA": EwmaEstimator,
    "WSI": WeightedSampleEstimator,
}


def make_estimator(strategy: str, **kwargs) -> Estimator:
    """Instantiate an estimator by strategy name ("Monitor"/"LSI"/"EWMA"/"WSI")."""
    try:
        factory = _FACTORIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)
