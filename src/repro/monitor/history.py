"""Bounded metric history with summary statistics.

Each monitored metric keeps its recent samples in a ring buffer. The
history serves two purposes the system description calls out: scientists
profile their application against it after the run, and the decision
engine's self-healing checks look for sustained deviations in it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class MetricPoint:
    """One timestamped observation."""

    time: float
    value: float


class MetricHistory:
    """Ring buffer of :class:`MetricPoint` with windowed statistics."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._points: deque[MetricPoint] = deque(maxlen=maxlen)

    def record(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1].time:
            raise ValueError("history must be recorded in time order")
        self._points.append(MetricPoint(time, value))

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterable[MetricPoint]:
        return iter(self._points)

    @property
    def last(self) -> MetricPoint | None:
        return self._points[-1] if self._points else None

    def values(self, since: float | None = None) -> np.ndarray:
        """Sample values, optionally restricted to ``time >= since``."""
        if since is None:
            return np.array([p.value for p in self._points])
        return np.array([p.value for p in self._points if p.time >= since])

    def times(self, since: float | None = None) -> np.ndarray:
        if since is None:
            return np.array([p.time for p in self._points])
        return np.array([p.time for p in self._points if p.time >= since])

    def mean(self, since: float | None = None) -> float:
        vals = self.values(since)
        return float(vals.mean()) if vals.size else float("nan")

    def std(self, since: float | None = None) -> float:
        vals = self.values(since)
        return float(vals.std()) if vals.size else float("nan")

    def coefficient_of_variation(self, since: float | None = None) -> float:
        """σ/µ — the headline variability number of the E1 experiments."""
        vals = self.values(since)
        if vals.size == 0 or vals.mean() == 0:
            return float("nan")
        return float(vals.std() / vals.mean())

    def percentile(self, q: float, since: float | None = None) -> float:
        vals = self.values(since)
        return float(np.percentile(vals, q)) if vals.size else float("nan")

    def resample_hourly(self) -> list[tuple[float, float, float]]:
        """Aggregate to (hour_start, mean, std) rows — the shape of the
        weekly variability figures."""
        if not self._points:
            return []
        rows: list[tuple[float, float, float]] = []
        bucket: list[float] = []
        hour = int(self._points[0].time // 3600)
        for p in self._points:
            h = int(p.time // 3600)
            if h != hour:
                if bucket:
                    arr = np.array(bucket)
                    rows.append((hour * 3600.0, float(arr.mean()), float(arr.std())))
                bucket = []
                hour = h
            bucket.append(p.value)
        if bucket:
            arr = np.array(bucket)
            rows.append((hour * 3600.0, float(arr.mean()), float(arr.std())))
        return rows
