"""The real-time map of inter-datacenter link performance.

This is the "online map of the cloud network" that the decision engine
plans against: for every ordered region pair it holds an estimator fed by
that link's sampler, exposes the current estimate with uncertainty, and can
render the full throughput matrix (the E1a snapshot figure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitor.estimators import Estimator
from repro.simulation.units import MB


@dataclass(frozen=True)
class LinkEstimate:
    """Estimated single-flow throughput of one directed region pair."""

    src: str
    dst: str
    mean: float
    std: float
    samples: int

    @property
    def known(self) -> bool:
        return self.samples > 0 and self.mean == self.mean  # not NaN


class LinkPerformanceMap:
    """Estimators for all monitored directed region pairs."""

    def __init__(self) -> None:
        self._estimators: dict[tuple[str, str], Estimator] = {}

    def register(self, src: str, dst: str, estimator: Estimator) -> None:
        self._estimators[(src, dst)] = estimator

    def observe(self, src: str, dst: str, time: float, value: float) -> None:
        try:
            est = self._estimators[(src, dst)]
        except KeyError:
            raise KeyError(f"link {src}->{dst} is not monitored") from None
        est.update(time, value)

    def estimator(self, src: str, dst: str) -> Estimator:
        return self._estimators[(src, dst)]

    def estimate(self, src: str, dst: str) -> LinkEstimate:
        est = self._estimators.get((src, dst))
        if est is None:
            return LinkEstimate(src, dst, float("nan"), float("nan"), 0)
        return LinkEstimate(src, dst, est.mean, est.std, est.samples_seen)

    def throughput(self, src: str, dst: str, default: float = float("nan")) -> float:
        """Convenience scalar lookup used by path algorithms."""
        e = self.estimate(src, dst)
        return e.mean if e.known else default

    def pairs(self) -> list[tuple[str, str]]:
        return sorted(self._estimators)

    def regions(self) -> list[str]:
        codes: set[str] = set()
        for s, d in self._estimators:
            codes.add(s)
            codes.add(d)
        return sorted(codes)

    def matrix_rows(self) -> list[list[str]]:
        """Render the throughput matrix in MB/s (E1a snapshot figure)."""
        regions = self.regions()
        header = ["from\\to"] + regions
        rows = [header]
        for src in regions:
            row = [src]
            for dst in regions:
                if src == dst:
                    row.append("-")
                    continue
                e = self.estimate(src, dst)
                row.append(f"{e.mean / MB:.1f}" if e.known else "?")
            rows.append(row)
        return rows
