"""Heartbeat-based failure detection.

Each deployed VM emits a heartbeat every ``heartbeat_interval`` seconds
(a crashed VM emits none — :attr:`~repro.cloud.vm.VM.failed` is the
ground truth the simulated heartbeat channel reads). The detector checks
for silence every interval and *suspects* a VM once its last heartbeat is
older than ``timeout``; detection latency is therefore bounded by
``timeout + heartbeat_interval``. When a suspected VM heartbeats again it
rejoins the healthy pool and listeners are notified, so the Decision
Manager can re-admit it to plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.deployment import Deployment
from repro.cloud.vm import VM
from repro.obs import NULL_OBSERVER
from repro.simulation.engine import PeriodicTask, Simulator


@dataclass
class FailureDetectorConfig:
    """Tunables of the heartbeat failure detector."""

    #: Seconds between heartbeats (and between silence checks).
    heartbeat_interval: float = 5.0
    #: Suspect a VM after this much heartbeat silence.
    timeout: float = 15.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.timeout < self.heartbeat_interval:
            raise ValueError(
                "timeout must be >= heartbeat_interval "
                f"({self.timeout} < {self.heartbeat_interval})"
            )

    @property
    def detection_bound(self) -> float:
        """Worst-case crash → suspicion latency."""
        return self.timeout + self.heartbeat_interval


class FailureDetector:
    """Tracks heartbeat liveness of every VM in a deployment."""

    def __init__(
        self,
        sim: Simulator,
        deployment: Deployment,
        config: FailureDetectorConfig | None = None,
        observer=None,
    ) -> None:
        self.sim = sim
        self.deployment = deployment
        self.config = config or FailureDetectorConfig()
        self.observer = observer if observer is not None else NULL_OBSERVER
        obs = self.observer
        self._m_suspects = obs.counter("failure_detector_suspects_total")
        self._m_recoveries = obs.counter("failure_detector_recoveries_total")
        self._m_latency = obs.histogram("failure_detection_latency_seconds")
        self.last_heartbeat: dict[str, float] = {}
        self.suspected: set[str] = set()
        #: When each currently-suspected VM went silent (for latency spans).
        self._silent_since: dict[str, float] = {}
        self.suspicions = 0
        self.recoveries = 0
        #: Observed crash→suspicion latencies (each ≤ the config bound).
        self.detection_latencies: list[float] = []
        self._on_suspect: list[Callable[[VM], None]] = []
        self._on_recover: list[Callable[[VM], None]] = []
        self._task: PeriodicTask | None = None

    # ------------------------------------------------------------------
    def on_suspect(self, callback: Callable[[VM], None]) -> None:
        self._on_suspect.append(callback)

    def on_recover(self, callback: Callable[[VM], None]) -> None:
        self._on_recover.append(callback)

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("detector already started")
        now = self.sim.now
        for vm in self.deployment.vms():
            self.last_heartbeat[vm.vm_id] = now
        self._task = self.sim.add_periodic(
            self.config.heartbeat_interval, self._beat
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    def _beat(self) -> None:
        now = self.sim.now
        timeout = self.config.timeout
        for vm in self.deployment.vms():
            last = self.last_heartbeat.setdefault(vm.vm_id, now)
            if vm.alive:
                self.last_heartbeat[vm.vm_id] = now
                if vm.vm_id in self.suspected:
                    self._recover(vm, now)
            elif vm.vm_id not in self.suspected and now - last > timeout:
                self._suspect(vm, last, now)

    def _suspect(self, vm: VM, last: float, now: float) -> None:
        self.suspected.add(vm.vm_id)
        self._silent_since[vm.vm_id] = last
        self.suspicions += 1
        self._m_suspects.inc()
        # Detection latency: silence began one interval after the last
        # heartbeat at the latest; measure from the last heartbeat, the
        # conservative (larger) figure, which the bound still covers.
        self.detection_latencies.append(now - last)
        self._m_latency.observe(now - last)
        for cb in self._on_suspect:
            cb(vm)

    def _recover(self, vm: VM, now: float) -> None:
        self.suspected.discard(vm.vm_id)
        silent_since = self._silent_since.pop(vm.vm_id, now)
        self.recoveries += 1
        self._m_recoveries.inc()
        if self.observer.enabled:
            self.observer.record_span(
                "recovery.vm",
                silent_since,
                now,
                vm=vm.vm_id,
                region=vm.region_code,
            )
        for cb in self._on_recover:
            cb(vm)

    # ------------------------------------------------------------------
    def is_suspected(self, vm_id: str) -> bool:
        return vm_id in self.suspected

    def healthy(self, vm: VM) -> bool:
        """Detector's view: not currently suspected."""
        return vm.vm_id not in self.suspected

    def detection_latency_bound(self) -> float:
        return self.config.detection_bound
