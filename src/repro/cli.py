"""Command-line interface to the simulated SAGE service.

The Transfer Agent of the real system exposes FTP-like commands next to
its API; this CLI plays that role for the reproduction — every major
capability is drivable from a shell against a freshly provisioned
simulated cloud:

.. code-block:: console

   $ sage map                                  # live link throughput map
   $ sage transfer NEU NUS 2GB --budget 0.30   # managed transfer
   $ sage plan NEU NUS 4GB                     # cost/time curve + knee
   $ sage disseminate NEU WEU,EUS,NUS 500MB    # multicast replication
   $ sage introspect --hours 2                 # delivered-SLA report
   $ sage stream --workload sensors --duration 300
   $ sage chaos --seed 7 --duration 240        # fault-recovery report
   $ sage overload --policy shed               # overload-recovery report
   $ sage audit --jsonl violations.jsonl       # strict SLO/invariant audit
   $ sage soak --hours 48 --seed 7             # generated adversarial soak
   $ sage soak --hours 2 --failovers 5         # leader-failover chaos soak
   $ sage serve --kill-leader-every 420        # resident service + failover

(entry point: ``python -m repro.cli`` or the ``sage`` console script).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

from repro.analysis.introspection import introspection_report, streaming_report
from repro.analysis.tables import render_table
from repro.core.dissemination import Disseminator
from repro.obs import NULL_OBSERVER, Observer
from repro.simulation.units import GB, KB, MB, TB, format_bytes, format_duration
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import SageShipping
from repro.workloads.clickstream import clickstream_job
from repro.workloads.sensors import sensor_fusion_job
from repro.workloads.synthetic import fresh_engine, standard_deployment

_SIZE_UNITS = {"B": 1.0, "KB": KB, "MB": MB, "GB": GB, "TB": TB}


def parse_size(text: str) -> float:
    """Parse '500MB', '2.5GB', '1024' (bytes) into a byte count."""
    m = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*([KMGT]?B)?\s*", text, re.I)
    if not m:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}")
    value = float(m.group(1))
    unit = (m.group(2) or "B").upper()
    return value * _SIZE_UNITS[unit]


def parse_spec(text: str | None) -> dict[str, int]:
    """Parse 'NEU:5,NUS:5' into a deployment spec."""
    if not text:
        return standard_deployment()
    spec: dict[str, int] = {}
    for part in text.split(","):
        try:
            region, count = part.split(":")
            spec[region.strip().upper()] = int(count)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"cannot parse deployment {text!r}; expected REGION:N,..."
            ) from None
    return spec


def _observer(args):
    """Build (once) the run's observer from the --trace/--metrics/
    --flight-record flags."""
    obs = getattr(args, "_observer", None)
    if obs is None:
        wants = (
            getattr(args, "trace", None)
            or getattr(args, "metrics", None)
            or getattr(args, "flight_record", None)
        )
        obs = Observer() if wants else NULL_OBSERVER
        args._observer = obs
    return obs


def _force_observer(args) -> Observer:
    """Commands that *are* observability (perf, dashboard) always record."""
    if not _observer(args).enabled:
        args._observer = Observer()
    return args._observer


def _scenario_observer(args) -> Observer:
    """Chaos-class commands always fly with the black box armed.

    Even without ``--trace``/``--metrics``/``--flight-record`` the run
    keeps a flight-recorder ring, so a failing (or crashing) scenario
    can dump what broke. The instance is cached on ``args`` — the
    post-mortem dump in :func:`main` must read the very observer the
    engine recorded into; a fresh one would be empty.
    """
    return _force_observer(args)


def _dump_flight(args, rc) -> None:
    """Dump the engine-bound flight ring after a failed/crashed command."""
    obs = getattr(args, "_observer", None)
    if obs is None or not obs.enabled or not len(obs.recorder):
        return
    path = getattr(args, "flight_record", None) or f"flight-{args.command}.jsonl"
    count = obs.recorder.dump(path)
    print(
        f"flight: command failed ({rc}); "
        f"dumped last {count} events -> {path}",
        file=sys.stderr,
    )


def _engine(args):
    return fresh_engine(
        seed=args.seed,
        spec=parse_spec(getattr(args, "deploy", None)),
        learning_phase=args.learning,
        observer=_observer(args),
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_map(args) -> int:
    engine = _engine(args)
    rows = engine.monitor.link_map.matrix_rows()
    print(render_table(rows[0], rows[1:], title="Inter-datacenter throughput map (MB/s)"))
    return 0


def cmd_transfer(args) -> int:
    engine = _engine(args)
    size = parse_size(args.size)
    before = engine.env.meter.snapshot()
    mt = engine.decisions.transfer(
        args.src.upper(),
        args.dst.upper(),
        size,
        budget_usd=args.budget,
        deadline_s=args.deadline,
        n_nodes=args.nodes,
    )
    while not mt.done:
        engine.run_until(engine.sim.now + 10)
    spent = engine.env.meter.snapshot() - before
    print(
        f"transferred {format_bytes(size)} {args.src.upper()}->{args.dst.upper()} "
        f"in {format_duration(mt.elapsed)} "
        f"({size / mt.elapsed / MB:.1f} MB/s), egress ${spent.egress_usd:.3f}, "
        f"replans {mt.replans}"
    )
    print(f"schema: {mt.schema_history[-1]}")
    return 0


def cmd_plan(args) -> int:
    engine = _engine(args)
    size = parse_size(args.size)
    thr = engine.monitor.estimated_throughput(args.src.upper(), args.dst.upper())
    options = engine.decisions.tradeoff.options(size, thr, max_nodes=args.max_nodes)
    knee = engine.decisions.tradeoff.knee(options)
    front = engine.decisions.tradeoff.pareto_front(options)
    rows = [
        [
            o.n_nodes,
            format_duration(o.predicted_time),
            f"${o.usd:.3f}",
            "*" if o in front else "",
            "<- knee" if o is knee else "",
        ]
        for o in options
    ]
    print(
        render_table(
            ["nodes", "time", "cost", "pareto", ""],
            rows,
            title=f"Cost/time options for {format_bytes(size)} "
            f"{args.src.upper()}->{args.dst.upper()} "
            f"(link ≈ {thr / MB:.1f} MB/s)",
        )
    )
    return 0


def cmd_disseminate(args) -> int:
    engine = _engine(args)
    size = parse_size(args.size)
    destinations = [d.strip().upper() for d in args.destinations.split(",")]
    diss = Disseminator(engine, n_nodes_per_edge=args.nodes or 3)
    plan = diss.plan(args.src.upper(), destinations)
    print(f"tree: {plan.describe()} (depth {plan.depth()})")
    report = diss.run(size, plan)
    rows = [
        [dst, format_duration(report.arrival(dst))] for dst in destinations
    ]
    print(render_table(["site", "arrival"], rows, title="Dissemination"))
    print(f"makespan {format_duration(report.makespan)}")
    return 0


def cmd_introspect(args) -> int:
    engine = _engine(args)
    engine.run_until(engine.sim.now + args.hours * 3600.0)
    print(introspection_report(engine.monitor, observer=engine.observer))
    return 0


def _stream_runtime(engine, args) -> GeoStreamRuntime:
    """Build the CLI's standard streaming runtime from --workload flags."""
    if args.workload == "sensors":
        regions = [r for r in engine.deployment.regions() if r != "NUS"][:3]
        job = sensor_fusion_job(site_regions=regions, aggregation_region="NUS")
    else:
        regions = [r for r in engine.deployment.regions() if r != "WUS"][:3]
        job = clickstream_job(site_regions=regions, aggregation_region="WUS")
    flow = None
    if getattr(args, "policy", None):
        from repro.flow import FlowConfig

        flow = FlowConfig(policy=args.policy, max_backlog=args.max_backlog)
    return GeoStreamRuntime(
        engine, job, SageShipping.factory(n_nodes=2), flow=flow
    )


def cmd_stream(args) -> int:
    engine = _engine(args)
    runtime = _stream_runtime(engine, args)
    flow = runtime.flow
    runtime.run_for(args.duration)
    stats = runtime.latency_stats()
    print(
        f"{args.workload}: ingested {runtime.records_ingested()} records, "
        f"{len(runtime.results)} global results, "
        f"WAN {format_bytes(runtime.wan_bytes())}"
    )
    print(stats.describe())
    if flow is not None:
        print(streaming_report(runtime))
    return 0


def cmd_chaos(args) -> int:
    from repro.config import ChaosConfig
    from repro.faults import run_chaos

    report = run_chaos(
        ChaosConfig(
            seed=args.seed,
            duration=args.duration,
            inject=not args.no_faults,
        ),
        observer=_scenario_observer(args),
    )
    print(report.describe())
    return 0 if report.clean else 1


def cmd_overload(args) -> int:
    from repro.config import OverloadConfig
    from repro.flow import run_overload

    report = run_overload(
        OverloadConfig(
            policy=args.policy,
            seed=args.seed,
            duration=args.duration,
            max_backlog=args.max_backlog,
            brownout=None if args.no_brownout else (70.0, 40.0, 0.0),
            crash_at=None if args.no_crash else 150.0,
        ),
        observer=_scenario_observer(args),
    )
    print(report.describe())
    return 0 if report.clean else 1


def cmd_audit(args) -> int:
    """Run scenarios under the continuous SLO auditor, strictly."""
    import json

    from repro.config import ChaosConfig, OverloadConfig
    from repro.faults import run_chaos
    from repro.flow import run_overload

    obs = _scenario_observer(args)
    reports = []
    if args.scenario in ("chaos", "all"):
        reports.append(
            run_chaos(
                ChaosConfig(
                    seed=args.seed,
                    duration=args.duration,
                    strict_slo=True,
                    slo_max_latency_s=args.max_latency,
                    slo_max_usd_per_1k=args.max_usd_per_1k,
                ),
                observer=obs,
            )
        )
    if args.scenario in ("overload", "all"):
        reports.append(
            run_overload(
                OverloadConfig(
                    policy=args.policy,
                    seed=args.seed,
                    duration=args.duration,
                    strict_slo=True,
                    slo_max_latency_s=args.max_latency,
                    slo_max_usd_per_1k=args.max_usd_per_1k,
                ),
                observer=obs,
            )
        )
    violations: list[dict] = []
    for report in reports:
        audit = report.audit
        cost = report.cost
        for v in audit["violations"]:
            violations.append({"scenario": report.scenario, **v})
        print(
            f"{report.scenario}: {audit['checks']} checks, "
            f"{audit['violation_count']} violations, "
            f"${cost.get('total_usd', 0.0):.4f} total "
            f"({'clean' if report.clean else 'VIOLATED'})"
        )
    if args.jsonl:
        # Empty file on green — CI uploads it either way, so a missing
        # artifact never aliases a clean run.
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            for v in violations:
                fh.write(json.dumps(v, sort_keys=True) + "\n")
        print(f"violations: {len(violations)} -> {args.jsonl}")
    return 0 if all(r.clean for r in reports) and not violations else 1


def cmd_soak(args) -> int:
    """Run a seeded generated scenario for simulated hours, audited."""
    import json

    from repro.config import SoakConfig
    from repro.gen.soak import run_soak

    report = run_soak(
        SoakConfig(
            seed=args.seed,
            hours=args.hours,
            profile=args.profile,
            failovers=args.failovers,
            check_interval=args.check_interval,
            phase_hours=args.phase_hours,
            strict_slo=not args.no_strict,
            slo_max_latency_s=args.max_latency,
            slo_max_usd_per_1k=args.max_usd_per_1k,
        ),
        observer=_scenario_observer(args),
    )
    print(report.describe())
    if args.jsonl:
        # Empty file on green — CI uploads it either way, so a missing
        # artifact never aliases a clean run.
        violations = report.audit.get("violations", [])
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            for v in violations:
                fh.write(
                    json.dumps({"scenario": "soak", **v}, sort_keys=True)
                    + "\n"
                )
        print(f"violations: {len(violations)} -> {args.jsonl}")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            fh.write(report.canonical_json() + "\n")
        print(f"report: -> {args.report_json}")
    if args.digest:
        # Bare digest on its own line: CI greps it to compare runs.
        print(report.digest)
    return 0 if report.clean else 1


def cmd_serve(args) -> int:
    """Run the resident-service scenario: lease failover + live config."""
    import json

    from repro.config import ServeConfig
    from repro.control.scenario import run_serve

    report = run_serve(
        ServeConfig(
            seed=args.seed,
            duration=args.duration,
            standby_regions=tuple(args.standbys.split(",")),
            policy=args.policy,
            kill_leader_every=args.kill_leader_every,
            max_kills=args.max_kills,
            reconfigure_at=args.reconfigure_at,
            admission_rate=args.admission_rate,
            lease_ttl=args.lease_ttl,
            retry_budget=args.retry_budget,
            strict_slo=not args.no_strict,
            slo_max_latency_s=args.max_latency,
            slo_max_usd_per_1k=args.max_usd_per_1k,
        ),
        observer=_scenario_observer(args),
    )
    print(report.describe())
    if args.jsonl:
        # Empty file on green — CI uploads it either way, so a missing
        # artifact never aliases a clean run.
        violations = report.audit.get("violations", [])
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            for v in violations:
                fh.write(
                    json.dumps({"scenario": "serve", **v}, sort_keys=True)
                    + "\n"
                )
        print(f"violations: {len(violations)} -> {args.jsonl}")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            fh.write(report.canonical_json() + "\n")
        print(f"report: -> {args.report_json}")
    return 0 if report.clean else 1


def cmd_perf(args) -> int:
    """Profile one scenario; print the dashboard; optionally publish it."""
    from time import perf_counter

    from repro.obs.bench import BenchRecord, write_bench
    from repro.obs.dashboard import render_dashboard

    obs = _force_observer(args)
    extras: dict[str, object] = {}
    wall0 = perf_counter()
    if args.scenario == "stream":
        engine = _engine(args)
        runtime = _stream_runtime(engine, args)
        runtime.run_for(args.duration)
        extras = {
            "results": len(runtime.results),
            "wan_bytes": runtime.wan_bytes(),
        }
        config = {
            "scenario": "stream",
            "workload": args.workload,
            "duration": args.duration,
            "seed": args.seed,
        }
    else:
        from repro.api import run_experiment

        report = run_experiment(
            args.scenario,
            {"duration": args.duration},
            seed=args.seed,
            observer=obs,
        )
        extras = {"clean": report.clean}
        config = {
            "scenario": args.scenario,
            "duration": args.duration,
            "seed": args.seed,
        }
    wall = perf_counter() - wall0
    profile = obs.profiler.snapshot(wall_seconds=wall)
    print(render_dashboard(obs, top=args.top,
                           title=f"SAGE perf — {args.scenario}"))
    if args.bench_dir:
        meters = profile["meters"]
        record = BenchRecord.from_profile(
            f"perf_{args.scenario}",
            args.scenario,
            args.seed,
            profile,
            config=config,
            records=meters.get("records", {}).get("count", 0.0),
            events=meters.get("events", {}).get("count", 0.0),
            extras=extras,
        )
        path = write_bench(record, args.bench_dir)
        print(f"bench: wrote {path}")
    return 0


def cmd_dashboard(args) -> int:
    """Run a streaming workload, re-rendering the dashboard as it goes."""
    from repro.obs.dashboard import render_dashboard

    obs = _force_observer(args)
    engine = _engine(args)
    runtime = _stream_runtime(engine, args)
    title = f"SAGE dashboard — {args.workload}"
    runtime.start()
    end = engine.sim.now + args.duration
    # Re-painting with ANSI clear only makes sense on a terminal; when
    # piped (tests, logs), frames append as plain text blocks.
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    while engine.sim.now < end:
        engine.run_until(min(end, engine.sim.now + args.refresh))
        if not args.once:
            print(clear + render_dashboard(obs, top=args.top, title=title))
            print()
    runtime.stop()
    engine.run_until(engine.sim.now + runtime.job.finalize_grace + 30.0)
    print(render_dashboard(obs, top=args.top, title=f"{title} (final)"))
    return 0


def cmd_sweep(args) -> int:
    from repro.api import default_suite, run_sweep

    observer = _observer(args)
    report = run_sweep(
        default_suite(duration=args.duration, generated=args.generated),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        root_seed=args.seed,
        observer=observer,
    )
    print(report.describe())
    if args.jsonl:
        path = report.write_jsonl(args.jsonl)
        print(f"wrote shard log to {path}")
    if args.digest:
        # Bare digest on its own line: CI greps it to compare runs.
        print(report.digest())
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sage",
        description="Geo-distributed data analysis over a simulated cloud.",
    )
    parser.add_argument("--seed", type=int, default=2013, help="experiment seed")
    parser.add_argument(
        "--deploy",
        help="deployment spec REGION:N,... (default: standard 40-node)",
    )
    parser.add_argument(
        "--learning",
        type=float,
        default=300.0,
        help="monitoring learning phase in simulated seconds",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL span trace of the run to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write Prometheus-format metrics of the run to PATH",
    )
    parser.add_argument(
        "--flight-record",
        metavar="PATH",
        help="keep a flight-recorder ring of recent events and dump it "
        "as JSONL to PATH at exit (failing commands also dump "
        "automatically when any observer is active)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("map", help="print the live link throughput map")

    p = sub.add_parser("transfer", help="run a managed transfer")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("size", help="e.g. 500MB, 2GB")
    p.add_argument("--budget", type=float, help="budget in USD")
    p.add_argument("--deadline", type=float, help="deadline in seconds")
    p.add_argument("--nodes", type=int, help="fixed node count")

    p = sub.add_parser("plan", help="print the cost/time option curve")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("size")
    p.add_argument("--max-nodes", type=int, default=12)

    p = sub.add_parser("disseminate", help="replicate to several sites")
    p.add_argument("src")
    p.add_argument("destinations", help="comma-separated regions")
    p.add_argument("size")
    p.add_argument("--nodes", type=int, help="nodes per tree edge")

    p = sub.add_parser("introspect", help="delivered-SLA report")
    p.add_argument("--hours", type=float, default=1.0)

    p = sub.add_parser("stream", help="run a streaming workload")
    p.add_argument("--workload", choices=("sensors", "clicks"), default="sensors")
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument(
        "--policy",
        choices=("block", "shed", "degrade"),
        help="enable flow control with this overload policy",
    )
    p.add_argument("--max-backlog", type=int, default=50_000)

    p = sub.add_parser(
        "chaos",
        help="run the scripted fault-recovery scenario and print the report",
    )
    p.add_argument("--duration", type=float, default=240.0)
    p.add_argument(
        "--no-faults",
        action="store_true",
        help="run the identical workload without injecting faults",
    )

    p = sub.add_parser(
        "overload",
        help="run the scripted overload-recovery scenario and print the report",
    )
    p.add_argument(
        "--policy", choices=("block", "shed", "degrade"), default="block"
    )
    p.add_argument("--duration", type=float, default=240.0)
    p.add_argument("--max-backlog", type=int, default=1500)
    p.add_argument(
        "--no-brownout",
        action="store_true",
        help="skip the mid-burst WAN link outage",
    )
    p.add_argument(
        "--no-crash",
        action="store_true",
        help="skip the aggregator crash/restart",
    )

    p = sub.add_parser(
        "audit",
        help="run scenarios under the continuous SLO auditor "
        "(strict: any violation fails the command)",
    )
    p.add_argument(
        "--scenario", choices=("chaos", "overload", "all"), default="all"
    )
    p.add_argument("--duration", type=float, default=240.0)
    p.add_argument(
        "--policy",
        choices=("block", "shed", "degrade"),
        default="block",
        help="overload policy for the overload arm",
    )
    p.add_argument(
        "--max-latency",
        type=float,
        help="per-window end-to-end latency SLO in seconds",
    )
    p.add_argument(
        "--max-usd-per-1k",
        type=float,
        help="cost SLO: attributed $ per 1000 ingested records",
    )
    p.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the violation log (JSONL; empty file when clean)",
    )

    p = sub.add_parser(
        "soak",
        help="generate a seeded adversarial scenario and soak it for "
        "simulated hours under the continuous SLO auditor",
    )
    p.add_argument(
        "--hours",
        type=float,
        default=2.0,
        help="simulated hours to soak (days are fine: 48h of the "
        "default profile runs in about two wall minutes)",
    )
    p.add_argument(
        "--profile",
        choices=("calm", "diurnal", "adversarial", "hostile"),
        default="adversarial",
        help="generator intensity profile",
    )
    p.add_argument(
        "--failovers",
        type=int,
        default=0,
        help="arm the control plane with warm standbys and spread "
        "exactly N unplanned leader kills across the middle of the "
        "run (0: no control plane)",
    )
    p.add_argument(
        "--check-interval",
        type=float,
        default=30.0,
        help="simulated seconds between invariant checks",
    )
    p.add_argument(
        "--phase-hours",
        type=float,
        default=0.0,
        help="report-phase length in hours (0: auto-split into up to "
        "6 phases)",
    )
    p.add_argument(
        "--no-strict",
        action="store_true",
        help="report SLO violations without failing the command",
    )
    p.add_argument(
        "--max-latency",
        type=float,
        help="per-window end-to-end latency SLO in seconds",
    )
    p.add_argument(
        "--max-usd-per-1k",
        type=float,
        help="cost SLO: attributed $ per 1000 ingested records",
    )
    p.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the violation log (JSONL; empty file when clean)",
    )
    p.add_argument(
        "--report-json",
        metavar="PATH",
        help="write the canonical SoakReport JSON to PATH",
    )
    p.add_argument(
        "--digest",
        action="store_true",
        help="print the canonical result digest as the last line",
    )

    p = sub.add_parser(
        "serve",
        help="resident service mode: leader-lease failover, live "
        "reconfiguration, and admission control under audit",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=1800.0,
        help="simulated seconds to serve",
    )
    p.add_argument(
        "--kill-leader-every",
        type=float,
        default=420.0,
        help="kill the current lease holder every N simulated seconds "
        "(0: never); kills stop after 75%% of the run so the tail "
        "drains",
    )
    p.add_argument(
        "--max-kills",
        type=int,
        default=0,
        help="cap scheduled kills (0: no cap beyond the time window)",
    )
    p.add_argument(
        "--standbys",
        default="EUS,SUS",
        help="comma-separated warm-standby regions in promotion "
        "priority order",
    )
    p.add_argument(
        "--policy",
        choices=("block", "shed", "degrade"),
        default="block",
        help="overload policy of the serving pipeline",
    )
    p.add_argument(
        "--reconfigure-at",
        type=float,
        default=600.0,
        help="apply the scripted live reconfiguration at this "
        "simulated time (0: none)",
    )
    p.add_argument(
        "--admission-rate",
        type=float,
        default=0.0,
        help="per-site token-bucket admission rate in records/s "
        "(0: gate off)",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=10.0,
        help="leader lease TTL in simulated seconds",
    )
    p.add_argument(
        "--retry-budget",
        type=int,
        default=0,
        help="cap concurrent shipping retries across all links (0: off)",
    )
    p.add_argument(
        "--no-strict",
        action="store_true",
        help="report SLO violations without failing the command",
    )
    p.add_argument(
        "--max-latency",
        type=float,
        help="per-window end-to-end latency SLO in seconds",
    )
    p.add_argument(
        "--max-usd-per-1k",
        type=float,
        help="cost SLO: attributed $ per 1000 ingested records",
    )
    p.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the violation log (JSONL; empty file when clean)",
    )
    p.add_argument(
        "--report-json",
        metavar="PATH",
        help="write the canonical ServeReport JSON to PATH",
    )

    p = sub.add_parser(
        "perf",
        help="profile a scenario: hot stages, throughput, optional "
        "BENCH_*.json",
    )
    p.add_argument("scenario", choices=("stream", "chaos", "overload"))
    p.add_argument(
        "--workload", choices=("sensors", "clicks"), default="sensors"
    )
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--max-backlog", type=int, default=50_000)
    p.add_argument("--top", type=int, default=10, help="hot stages shown")
    p.add_argument(
        "--bench-dir",
        metavar="DIR",
        help="write BENCH_perf_<scenario>.json under DIR",
    )

    p = sub.add_parser(
        "dashboard",
        help="live-updating text perf dashboard over a streaming run",
    )
    p.add_argument(
        "--workload", choices=("sensors", "clicks"), default="sensors"
    )
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--max-backlog", type=int, default=50_000)
    p.add_argument(
        "--refresh",
        type=float,
        default=15.0,
        help="virtual seconds between dashboard frames",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="print a single final snapshot instead of live frames",
    )
    p.add_argument("--top", type=int, default=10, help="hot stages shown")

    p = sub.add_parser(
        "sweep",
        help="run the scenario suite sharded over a process pool, "
        "with result caching",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (output is bit-identical to "
        "--jobs 1)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="content-addressed result cache; warm re-runs execute "
        "zero simulations",
    )
    p.add_argument("--duration", type=float, default=240.0)
    p.add_argument(
        "--generated",
        type=int,
        default=0,
        metavar="N",
        help="append N seeded generator shards (short soaks over "
        "distinct generated scenarios, cycling the profiles)",
    )
    p.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the per-shard run log (JSONL) to PATH",
    )
    p.add_argument(
        "--digest",
        action="store_true",
        help="print the canonical result digest as the last line",
    )

    return parser


_COMMANDS = {
    "map": cmd_map,
    "transfer": cmd_transfer,
    "plan": cmd_plan,
    "disseminate": cmd_disseminate,
    "introspect": cmd_introspect,
    "stream": cmd_stream,
    "chaos": cmd_chaos,
    "overload": cmd_overload,
    "audit": cmd_audit,
    "soak": cmd_soak,
    "serve": cmd_serve,
    "perf": cmd_perf,
    "dashboard": cmd_dashboard,
    "sweep": cmd_sweep,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    for path in (args.trace, args.metrics, args.flight_record):
        if path and not os.path.isdir(os.path.dirname(path) or "."):
            print(f"error: directory does not exist: {path}", file=sys.stderr)
            return 2
    try:
        rc = _COMMANDS[args.command](args)
    except Exception:
        # A crashing command still dumps its black box — the entries
        # recorded up to the exception are exactly what the post-mortem
        # needs, and the observer bound to the engine holds them.
        _dump_flight(args, "exception")
        raise
    obs = getattr(args, "_observer", None)
    if obs is not None and obs.enabled:
        try:
            written = obs.export(
                trace_path=args.trace,
                metrics_path=args.metrics,
                flight_path=args.flight_record,
            )
        except OSError as exc:
            print(f"error: could not write observability output: {exc}",
                  file=sys.stderr)
            return 1
        if args.trace:
            print(f"trace: {written['spans']} spans -> {args.trace}")
        if args.metrics:
            print(f"metrics: {written['series']} series -> {args.metrics}")
        if args.flight_record:
            print(
                f"flight: {written['flight']} events -> {args.flight_record}"
            )
        elif rc != 0:
            # A failing run dumps its black box automatically: the last
            # ring of events is exactly what the post-mortem needs.
            _dump_flight(args, f"rc {rc}")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
