"""Introspection-as-a-Service: delivered-performance reports.

The forward-looking idea from the conclusion: the same monitoring that
drives transfer decisions can be *exposed* — to users, as visibility into
the service levels their deployment actually receives; and to providers,
as a metric describing resource configurations. This module turns a
monitoring agent's state into such a report: per-link delivered
throughput percentiles, an availability-style "within x% of nominal"
score, and the learned capacity map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitor.agent import MonitoringAgent
from repro.simulation.units import MB


@dataclass(frozen=True)
class LinkSLA:
    """Delivered service level of one directed inter-datacenter link."""

    src: str
    dst: str
    samples: int
    mean: float
    p05: float
    p50: float
    p95: float
    #: Fraction of samples delivering at least 80 % of the median.
    consistency: float
    #: Learned aggregate capacity (None until the link has been loaded).
    capacity: float | None

    @property
    def grade(self) -> str:
        """Letter grade for quick triage."""
        if self.consistency >= 0.95:
            return "A"
        if self.consistency >= 0.85:
            return "B"
        if self.consistency >= 0.70:
            return "C"
        return "D"


def link_sla(monitor: MonitoringAgent, src: str, dst: str) -> LinkSLA:
    """Compute the delivered SLA of one monitored link."""
    history = monitor.histories.get(f"thr/{src}->{dst}")
    if history is None or len(history) == 0:
        raise ValueError(f"no samples recorded for {src}->{dst}")
    values = history.values()
    p50 = float(np.percentile(values, 50))
    consistency = float((values >= 0.8 * p50).mean())
    return LinkSLA(
        src=src,
        dst=dst,
        samples=int(values.size),
        mean=float(values.mean()),
        p05=float(np.percentile(values, 5)),
        p50=p50,
        p95=float(np.percentile(values, 95)),
        consistency=consistency,
        capacity=monitor.capacity_estimate(src, dst),
    )


def introspection_report(monitor: MonitoringAgent, observer=None) -> str:
    """Render the full delivered-performance report.

    ``observer`` (a :class:`repro.obs.Observer`) folds the run's metric
    registry snapshot into the report; the monitor's own observer is used
    when it carries an enabled one and none is passed explicitly.
    """
    lines = [
        "Introspection-as-a-Service — delivered inter-datacenter performance",
        "=" * 68,
        f"{'link':12s} {'n':>5s} {'p05':>7s} {'p50':>7s} {'p95':>7s} "
        f"{'consist':>8s} {'grade':>5s} {'capacity':>9s}",
    ]
    slas = []
    for src, dst in monitor.link_map.pairs():
        try:
            slas.append(link_sla(monitor, src, dst))
        except ValueError:
            continue
    for sla in sorted(slas, key=lambda s: (s.src, s.dst)):
        cap = f"{sla.capacity / MB:.1f}MB/s" if sla.capacity else "-"
        lines.append(
            f"{sla.src}->{sla.dst:8s} {sla.samples:5d} "
            f"{sla.p05 / MB:7.2f} {sla.p50 / MB:7.2f} {sla.p95 / MB:7.2f} "
            f"{sla.consistency:8.0%} {sla.grade:>5s} {cap:>9s}"
        )
    if not slas:
        lines.append("(no monitored links)")
    if observer is None:
        observer = getattr(monitor, "observer", None)
    if observer is not None and observer.enabled and len(observer.registry):
        from repro.obs.exporters import summary_table

        lines.append("")
        lines.append(summary_table(observer.registry))
    return "\n".join(lines)


def streaming_report(runtime) -> str:
    """Per-site flow-control view of a :class:`GeoStreamRuntime` run.

    Surfaces what the overload machinery did: peak backlog against the
    configured bound, records shed/deferred, drain stalls, and the
    shipping layer's in-flight window and breaker state.
    """
    flow = getattr(runtime, "flow", None)
    bound = flow.max_backlog if flow is not None else None
    lines = [
        "Streaming flow report"
        + (f" (policy={flow.policy}, bound={bound})" if flow else " (no flow config)"),
        f"{'site':10s} {'ingested':>9s} {'processed':>10s} {'peak':>6s} "
        f"{'shed':>6s} {'defer':>6s} {'stall':>6s} {'parked':>7s} {'breaker':>9s}",
    ]
    for region, site in sorted(runtime.sites.items()):
        deferred = sum(src.max_deferred for src in site.spec.sources)
        shipping = site.shipping
        breaker = getattr(shipping, "breaker", None)
        lines.append(
            f"{region:10s} {site.records_ingested:9d} "
            f"{site.records_processed:10d} {site.max_backlog:6d} "
            f"{site.records_shed:6d} {deferred:6d} "
            f"{site.blocked_ticks + site.degraded_ticks:6d} "
            f"{getattr(shipping, 'parked', 0):7d} "
            f"{(breaker.state if breaker is not None else '-'):>9s}"
        )
    agg = runtime.aggregator
    lines.append(
        f"aggregator: {len(runtime.results)} results, "
        f"{agg.duplicates_dropped} duplicate batches dropped, "
        f"{agg.late_partials} late partials"
    )
    store = getattr(runtime, "checkpoint_store", None)
    if store is not None:
        lines.append(
            f"checkpoints: {store.saves} saved "
            f"({store.size_bytes('aggregator')} B aggregator snapshot), "
            f"{store.loads} restores"
        )
    return "\n".join(lines)
