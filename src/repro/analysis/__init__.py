"""Statistics, tables, and experiment bookkeeping for the benchmarks."""

from repro.analysis.stats import (
    StatSummary,
    confidence_interval95,
    mean_absolute_percentage_error,
    relative_error,
    summarize,
)
from repro.analysis.tables import format_row, render_table
from repro.analysis.experiments import ExperimentRecord, ShapeCheck
from repro.analysis.introspection import LinkSLA, introspection_report, link_sla

__all__ = [
    "StatSummary",
    "confidence_interval95",
    "relative_error",
    "mean_absolute_percentage_error",
    "summarize",
    "render_table",
    "format_row",
    "ExperimentRecord",
    "ShapeCheck",
    "LinkSLA",
    "link_sla",
    "introspection_report",
]
