"""Statistical helpers shared by tests and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StatSummary:
    """Mean, spread and a 95 % confidence interval of a sample."""

    n: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation σ/µ."""
        return self.std / self.mean if self.mean else float("nan")

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.ci95:.3g} (n={self.n})"


def summarize(values) -> StatSummary:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return StatSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        ci95=confidence_interval95(arr),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def confidence_interval95(values) -> float:
    """Half-width of the normal-approximation 95 % CI of the mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        return 0.0
    return float(1.96 * arr.std(ddof=1) / np.sqrt(arr.size))


def relative_error(estimate: float, truth: float) -> float:
    """|estimate − truth| / truth."""
    if truth == 0:
        raise ValueError("relative error undefined for zero truth")
    return abs(estimate - truth) / abs(truth)


def mean_absolute_percentage_error(estimates, truths) -> float:
    """MAPE over paired sequences (the estimator-accuracy metric)."""
    est = np.asarray(list(estimates), dtype=float)
    tru = np.asarray(list(truths), dtype=float)
    if est.shape != tru.shape:
        raise ValueError("estimates and truths must have the same length")
    if est.size == 0:
        raise ValueError("cannot compute MAPE of empty sequences")
    if np.any(tru == 0):
        raise ValueError("truth contains zeros")
    return float(np.mean(np.abs(est - tru) / np.abs(tru)))
