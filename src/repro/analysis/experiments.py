"""Experiment records: expected shape vs. measured outcome.

Every bench target builds an :class:`ExperimentRecord`, attaches the
measured numbers and a list of :class:`ShapeCheck` assertions (the
qualitative claims we hold the reproduction to — who wins, by what rough
factor), and prints a verdict block. EXPERIMENTS.md aggregates these.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShapeCheck:
    """One qualitative claim about an experiment's outcome."""

    claim: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"  [{mark}] {self.claim}{suffix}"

    def to_dict(self) -> dict:
        return {"claim": self.claim, "passed": self.passed, "detail": self.detail}


@dataclass
class ExperimentRecord:
    """One table/figure reproduction."""

    exp_id: str
    name: str
    seed: int
    parameters: dict = field(default_factory=dict)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def check(self, claim: str, passed: bool, detail: str = "") -> ShapeCheck:
        sc = ShapeCheck(claim, bool(passed), detail)
        self.checks.append(sc)
        return sc

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = [
            f"== {self.exp_id}: {self.name} (seed={self.seed}) ==",
        ]
        if self.parameters:
            params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
            lines.append(f"  params: {params}")
        lines.extend(c.render() for c in self.checks)
        lines.extend(f"  note: {n}" for n in self.notes)
        verdict = "SHAPE OK" if self.all_passed else "SHAPE MISMATCH"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe form, e.g. for sweep shard results and CI artifacts.

        Parameters are stringified: they are display values, and bench
        targets routinely put non-JSON objects (tuples, numpy scalars)
        in them.
        """
        return {
            "exp_id": self.exp_id,
            "name": self.name,
            "seed": self.seed,
            "parameters": {k: str(v) for k, v in self.parameters.items()},
            "checks": [c.to_dict() for c in self.checks],
            "notes": list(self.notes),
            "all_passed": self.all_passed,
        }

    def assert_shape(self) -> None:
        """Raise if any shape check failed (used by bench assertions)."""
        if not self.all_passed:
            failed = [c.claim for c in self.checks if not c.passed]
            raise AssertionError(
                f"{self.exp_id} shape mismatch: {failed}\n{self.render()}"
            )
