"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_row(values: Sequence[object], precision: int = 2) -> list[str]:
    """Stringify one row, formatting floats at a fixed precision."""
    out: list[str] = []
    for v in values:
        if isinstance(v, float):
            out.append(f"{v:.{precision}f}")
        else:
            out.append(str(v))
    return out


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render an aligned ASCII table (what the bench targets print)."""
    str_rows = [format_row(r, precision) for r in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
