"""The discrete-event simulator.

A :class:`Simulator` owns virtual time. Components schedule callbacks with
:meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.schedule_at`
(absolute time); :meth:`Simulator.run_until` drains the event queue up to a
horizon. Periodic activities (monitoring probes, capacity re-sampling,
stream ticks) use :meth:`Simulator.add_periodic`, which reschedules itself
and can be stopped through the returned :class:`PeriodicTask` handle.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs import NULL_OBSERVER
from repro.simulation.events import Event, EventQueue
from repro.simulation.random import RngRegistry


class SimulationError(RuntimeError):
    """Raised for scheduling in the past or a runaway event loop."""


class Simulator:
    """Deterministic event-driven virtual-time executor."""

    def __init__(self, seed: int = 0, max_events: int = 50_000_000) -> None:
        self.now: float = 0.0
        self.rngs = RngRegistry(seed)
        self.queue = EventQueue()
        self.events_processed: int = 0
        #: Hard cap guarding against accidental infinite self-rescheduling.
        self.max_events = max_events
        self._tracers: list[Callable[[Event], None]] = []
        self._obs_enabled = False
        self._m_events = NULL_OBSERVER.counter("sim_events_total")
        self._m_vtime = NULL_OBSERVER.gauge("sim_virtual_time_seconds")
        self._m_wall = NULL_OBSERVER.counter("sim_wall_seconds_total")
        #: ``None`` while disabled so :meth:`step` pays one comparison
        #: instead of a no-op context manager on every dispatched event.
        self._st_dispatch = None
        self._st_loop = NULL_OBSERVER.stage("sim.loop")
        self._mt_events = NULL_OBSERVER.meter("events")
        self._flight = None

    def attach_observer(self, observer) -> None:
        """Register metric/profiling handles for the event loop.

        With a disabled observer the handles are shared no-ops and
        ``run_until`` skips even the wall-clock reads, so the loop stays
        at its uninstrumented cost.
        """
        self._obs_enabled = observer.enabled
        self._m_events = observer.counter("sim_events_total")
        self._m_vtime = observer.gauge("sim_virtual_time_seconds")
        self._m_wall = observer.counter("sim_wall_seconds_total")
        self._st_loop = observer.stage("sim.loop")
        self._st_dispatch = (
            observer.stage("sim.dispatch") if observer.enabled else None
        )
        self._mt_events = observer.meter("events")
        self._flight = observer.recorder if observer.enabled else None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.queue.push(self.now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        return self.queue.push(time, callback, args, priority)

    def add_periodic(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: float | None = None,
        priority: int = 0,
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` seconds until stopped.

        ``start_delay`` defaults to one full interval (i.e. the first firing
        is at ``now + interval``); pass ``0.0`` to fire immediately.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        task = PeriodicTask(self, interval, callback, args, priority)
        task._arm(interval if start_delay is None else start_delay)
        return task

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process a single event. Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue produced time travel")
        self.now = event.time
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                "likely a runaway periodic task"
            )
        for tracer in self._tracers:
            tracer(event)
        dispatch = self._st_dispatch
        if dispatch is None:
            event.callback(*event.args)
        else:
            # ``sim.dispatch`` accumulates exactly the callback time no
            # instrumented inner stage claims for itself — the profiler's
            # "unattributed application code" bucket.
            self._mt_events.mark()
            callback = event.callback
            self._flight.record(
                "event",
                fn=getattr(callback, "__qualname__", None)
                or repr(callback),
            )
            with dispatch:
                callback(*event.args)
        return True

    def _drain(self, horizon: float) -> None:
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            self.step()

    def run_until(self, horizon: float) -> None:
        """Process events with time ≤ horizon, then set ``now = horizon``."""
        if horizon < self.now:
            raise SimulationError(f"horizon {horizon} < now {self.now}")
        if self._obs_enabled:
            wall0 = time.perf_counter()
            events0 = self.events_processed
            # ``sim.loop`` is the outermost stage: its exclusive time is
            # pure queue management (peek/pop/heap maintenance), and it
            # opens the profiled window that every nested stage's share
            # is reported against.
            with self._st_loop:
                self._drain(horizon)
            self.now = horizon
            self._m_wall.inc(time.perf_counter() - wall0)
            self._m_events.inc(self.events_processed - events0)
            self._m_vtime.set(self.now)
        else:
            self._drain(horizon)
            self.now = horizon

    def run(self) -> None:
        """Drain the queue completely (use with care: periodic tasks must
        be stopped first or this never terminates before ``max_events``)."""
        while self.step():
            pass

    def add_tracer(self, tracer: Callable[[Event], None]) -> None:
        """Register a hook called before each event executes (debug aid)."""
        self._tracers.append(tracer)


class PeriodicTask:
    """Handle for a self-rescheduling periodic callback."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        priority: int,
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.priority = priority
        self.fired: int = 0
        self._event: Event | None = None
        self._stopped = False

    def _arm(self, delay: float) -> None:
        if not self._stopped:
            self._event = self.sim.schedule(
                delay, self._fire, priority=self.priority
            )

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fired += 1
        self.callback(*self.args)
        self._arm(self.interval)

    def stop(self) -> None:
        """Stop future firings (the currently queued one is cancelled)."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped


class PeriodicGroup:
    """Many same-interval callbacks driven by ONE periodic queue event.

    Batch event scheduling for the columnar record plane: a streaming
    site with many sources costs one event-queue entry per tick instead
    of one per source, collapsing ``sim.dispatch`` volume by the fan-in
    factor. Members fire in registration order within the shared tick —
    exactly the stable same-timestamp ordering the per-event scheme
    produced for tasks armed in that same order — so simulation results
    are unchanged.

    Members join via :meth:`add`, which returns a
    :class:`GroupMember` handle compatible with :class:`PeriodicTask`
    (``stop()``, ``fired``, ``stopped``). The underlying queue event
    exists only while at least one live member remains; adding a member
    to a retired group re-arms it one full interval out, matching
    ``add_periodic`` phase.
    """

    def __init__(
        self, sim: Simulator, interval: float, priority: int = 0
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = interval
        self.priority = priority
        self._members: list[GroupMember] = []
        self._task: PeriodicTask | None = None

    def add(self, callback: Callable[[], Any]) -> "GroupMember":
        """Register ``callback`` to fire on every group tick."""
        member = GroupMember(self, callback)
        self._members.append(member)
        if self._task is None:
            self._task = self.sim.add_periodic(
                self.interval, self._fire, priority=self.priority
            )
        return member

    def _fire(self) -> None:
        # Snapshot: members added mid-tick (e.g. by another member's
        # callback) first fire on the NEXT tick, like a freshly armed
        # PeriodicTask would.
        for member in list(self._members):
            if not member.stopped:
                member.fired += 1
                member.callback()

    def _retire(self, member: "GroupMember") -> None:
        try:
            self._members.remove(member)
        except ValueError:
            pass
        if not self._members and self._task is not None:
            self._task.stop()
            self._task = None

    @property
    def members(self) -> int:
        """Number of live members."""
        return len(self._members)


class GroupMember:
    """A :class:`PeriodicTask`-compatible handle for one group member."""

    __slots__ = ("group", "callback", "fired", "_stopped")

    def __init__(self, group: PeriodicGroup, callback: Callable[[], Any]):
        self.group = group
        self.callback = callback
        self.fired = 0
        self._stopped = False

    def stop(self) -> None:
        """Leave the group (the shared event retires with the last member)."""
        self._stopped = True
        self.group._retire(self)

    @property
    def stopped(self) -> bool:
        return self._stopped
