"""Named, seeded random streams.

Every stochastic component in the simulation (each WAN link's variability
process, each workload source, each sampler's observation noise) draws from
its *own* named stream derived from a single experiment seed. This gives
two properties the experiments rely on:

* **Reproducibility** — the same seed reproduces an experiment exactly.
* **Isolation** — adding a new random consumer (e.g. one more monitoring
  probe) does not perturb the draws seen by unrelated components, so
  A/B comparisons between strategies see identical environments.

Streams are derived with :class:`numpy.random.SeedSequence` spawned from a
stable hash of the stream name, which is the NumPy-recommended way to build
independent generators.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory of independent, deterministic :class:`numpy.random.Generator` s.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.get("wan/NEU->NUS")
    >>> b = rngs.get("wan/NEU->WEU")
    >>> a is rngs.get("wan/NEU->NUS")   # cached per name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @staticmethod
    def _name_key(name: str) -> int:
        # crc32 is stable across processes and Python versions (unlike
        # hash(), which is salted for str).
        return zlib.crc32(name.encode("utf-8"))

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=(self.seed, self._name_key(name)))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours.

        Used when one experiment runs several isolated sub-simulations
        (e.g. one per strategy under test) that must each see identical
        environment randomness.
        """
        return RngRegistry(seed=self._name_key(name) ^ self.seed)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
