"""Unit constants and human-readable formatting helpers.

The simulator uses plain floats everywhere: *seconds* for time and *bytes*
for data sizes. These constants keep call sites legible (``3 * GB``,
``10 * MINUTE``) without introducing heavyweight unit types into hot paths.
"""

from __future__ import annotations

#: One kilobyte (binary, 1024 bytes) — cloud storage and transfer tools
#: overwhelmingly report KiB/MiB/GiB while labelling them KB/MB/GB.
KB: float = 1024.0
MB: float = 1024.0 * KB
GB: float = 1024.0 * MB
TB: float = 1024.0 * GB

#: One megabit per second expressed in bytes/second. VM NICs are specified
#: in Mbps (e.g. the Small instance's 100 Mbps) while the flow model works
#: in bytes/second.
MBPS: float = 1e6 / 8.0

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24.0 * HOUR


def format_bytes(size: float) -> str:
    """Render a byte count as a short human-readable string.

    >>> format_bytes(1536)
    '1.50 KB'
    >>> format_bytes(3 * GB)
    '3.00 GB'
    """
    size = float(size)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(size) >= unit:
            return f"{size / unit:.2f} {name}"
    return f"{size:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration in seconds as a short human-readable string.

    >>> format_duration(90)
    '1m30s'
    >>> format_duration(0.25)
    '250ms'
    """
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < MINUTE:
        return f"{seconds:.2f}s"
    if seconds < HOUR:
        m, s = divmod(seconds, MINUTE)
        return f"{int(m)}m{s:02.0f}s"
    if seconds < DAY:
        h, rem = divmod(seconds, HOUR)
        m = rem / MINUTE
        return f"{int(h)}h{int(m):02d}m"
    d, rem = divmod(seconds, DAY)
    h = rem / HOUR
    return f"{int(d)}d{int(h):02d}h"
