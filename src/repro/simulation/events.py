"""Event objects and the priority queue driving the simulator.

Events are ordered by ``(time, priority, seq)``. The monotonically
increasing sequence number makes ordering *total* and therefore
deterministic: two events scheduled for the same instant always fire in the
order they were scheduled, regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`EventQueue.push` (usually via
    :meth:`repro.simulation.engine.Simulator.schedule`) and should be
    treated as opaque handles whose only user-facing operation is
    :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the simulator skips it (lazy deletion)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} p={self.priority} {name}{state}>"


class EventQueue:
    """Binary-heap event queue with lazy cancellation.

    Cancelled events stay in the heap until they bubble to the top, at which
    point :meth:`pop` discards them. This keeps cancellation O(1) at the
    cost of transiently larger heaps — the right trade-off for a flow model
    that cancels and reschedules completion events on every rate change.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
