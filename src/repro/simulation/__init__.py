"""Deterministic discrete-event simulation kernel.

This package is the foundation every other subsystem builds on: a single
:class:`~repro.simulation.engine.Simulator` advances virtual time, fires
scheduled callbacks in deterministic order, and hands out named, seeded
random streams through :class:`~repro.simulation.random.RngRegistry` so that
every experiment in the repository is reproducible bit-for-bit.
"""

from repro.simulation.engine import PeriodicTask, Simulator
from repro.simulation.events import Event, EventQueue
from repro.simulation.random import RngRegistry
from repro.simulation.units import (
    DAY,
    GB,
    HOUR,
    KB,
    MB,
    MBPS,
    MINUTE,
    SECOND,
    TB,
    format_bytes,
    format_duration,
)

__all__ = [
    "Simulator",
    "PeriodicTask",
    "Event",
    "EventQueue",
    "RngRegistry",
    "KB",
    "MB",
    "GB",
    "TB",
    "MBPS",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "format_bytes",
    "format_duration",
]
