"""SAGE reproduction: geo-distributed streaming data analysis in clouds.

The package layers, bottom-up:

* :mod:`repro.simulation` — deterministic discrete-event kernel;
* :mod:`repro.cloud` — the simulated multi-datacenter cloud (regions,
  VMs, variable WAN links, blob storage, pricing);
* :mod:`repro.monitor` — the Monitoring Agent and its estimators;
* :mod:`repro.transfer` — the Transfer Agent (chunks, routes, sessions);
* :mod:`repro.core` — the Decision Manager: cost/time models, trade-off
  engine, multi-datacenter path selection, and the public
  :class:`~repro.core.api.SageSession` facade;
* :mod:`repro.streaming` — geo-distributed stream analysis on top of the
  managed transfer substrate;
* :mod:`repro.baselines` — comparison systems (direct, static parallel,
  shortest-path variants, blob staging, GridFTP-like);
* :mod:`repro.workloads` — synthetic and application workloads (A-Brain);
* :mod:`repro.analysis` — statistics and experiment-report helpers;
* :mod:`repro.runner` — parallel sweep execution with result caching.

The supported public surface is :mod:`repro.api`, re-exported here:
sessions (:class:`SageSession`), one-shot scenarios
(:func:`run_experiment`), parallel cached sweeps (:func:`run_sweep`),
and the typed config/result dataclasses. Anything deeper is
implementation detail.
"""

from repro.api import (
    ChaosConfig,
    ControlConfig,
    GenConfig,
    OverloadConfig,
    RecordPlaneConfig,
    SageSession,
    ScenarioReport,
    ServeConfig,
    SoakConfig,
    StreamReport,
    SweepReport,
    SweepRunner,
    SweepTask,
    TransferResult,
    default_record_plane,
    default_suite,
    derive_seed,
    register_scenario,
    run_experiment,
    run_serve,
    run_soak,
    run_sweep,
    set_default_record_plane,
)
from repro.core.engine import SageEngine

__version__ = "1.0.0"

__all__ = [
    "ChaosConfig",
    "ControlConfig",
    "GenConfig",
    "OverloadConfig",
    "RecordPlaneConfig",
    "SageEngine",
    "SageSession",
    "ScenarioReport",
    "ServeConfig",
    "SoakConfig",
    "StreamReport",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "TransferResult",
    "default_record_plane",
    "default_suite",
    "derive_seed",
    "register_scenario",
    "run_experiment",
    "run_serve",
    "run_soak",
    "run_sweep",
    "set_default_record_plane",
    "__version__",
]
