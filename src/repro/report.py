"""Typed result surfaces shared by scenarios, the runner, and the CLI.

Every scripted scenario (``run_chaos``, ``run_overload``, future sweeps)
returns the same :class:`ScenarioReport` envelope: the scenario name,
the exact configuration it ran with, wall/virtual time, an optional
metrics snapshot, and the scenario-specific payload under ``details``.
Attribute access falls through to the payload, so
``report.ingested`` / ``report.clean`` keep working wherever the old
payload dataclasses (``ChaosResult``, ``OverloadResult``) were used.

:meth:`ScenarioReport.canonical_dict` is the *deterministic* projection:
everything derived from the seed and the configuration, nothing derived
from the host (no wall-clock, no metrics). The sweep runner caches it,
hashes it, and compares it across ``--jobs`` levels — byte-identical
parallel output is asserted against this projection.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable form (dicts sorted at dump time).

    Dataclasses become dicts, tuples become lists, and containers recurse;
    scalars pass through. Used for cache keys and byte-identity digests,
    so the mapping must stay deterministic and total.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, float) and value != value:  # NaN → null, JSON-safe
        return None
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding of :func:`canonical_value` output."""
    return json.dumps(
        canonical_value(value), sort_keys=True, separators=(",", ":")
    )


def metrics_snapshot(observer) -> dict[str, float]:
    """Flatten an observer's counters/gauges to ``{name{labels}: value}``."""
    if observer is None or not getattr(observer, "enabled", False):
        return {}
    out: dict[str, float] = {}
    for snap in observer.registry.snapshot().values():
        if snap.kind not in ("counter", "gauge"):
            continue
        labels = ",".join(f"{k}={v}" for k, v in snap.labels)
        key = f"{snap.name}{{{labels}}}" if labels else snap.name
        out[key] = snap.value
    return out


@dataclass(frozen=True)
class ScenarioReport:
    """Uniform scenario outcome: envelope + scenario-specific payload."""

    #: Scenario name as registered with the runner ("chaos", "overload").
    scenario: str
    #: The exact configuration the run used, as a plain dict.
    config: dict
    seed: int
    #: Simulated seconds the scenario covered (deterministic).
    virtual_seconds: float
    #: Host seconds the run took (NOT part of the canonical projection).
    wall_seconds: float
    #: Scenario payload (``ChaosResult``, ``OverloadResult``, ...).
    details: Any = None
    #: Observer counter/gauge snapshot (NOT canonical; may be empty).
    metrics: dict[str, float] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        # Only called for attributes not found on the report itself:
        # fall through to the payload so legacy field access keeps
        # working (report.ingested, report.clean, report.faults, ...).
        if name.startswith("__"):
            raise AttributeError(name)
        details = object.__getattribute__(self, "details")
        try:
            return getattr(details, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!s} has no attribute {name!r} "
                f"(nor does its {type(details).__name__!s} payload)"
            ) from None

    @property
    def clean(self) -> bool:
        """The scenario's own success contract (True if it has none)."""
        return bool(getattr(self.details, "clean", True))

    def canonical_dict(self) -> dict:
        """The deterministic projection: seed + config + payload.

        Excludes wall-clock time and metrics, so two runs of the same
        configuration — serial, parallel, or on different hosts — must
        produce identical output. The sweep cache stores exactly this.
        """
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "config": canonical_value(self.config),
            "virtual_seconds": self.virtual_seconds,
            "result": canonical_value(self.details),
        }

    def canonical_json(self) -> str:
        return canonical_json(self.canonical_dict())

    def describe(self) -> str:
        head = (
            f"scenario {self.scenario}: seed={self.seed} "
            f"virtual={self.virtual_seconds:.1f}s "
            f"wall={self.wall_seconds:.2f}s"
        )
        body = getattr(self.details, "describe", None)
        return head + "\n\n" + body() if callable(body) else head


@dataclass(frozen=True)
class StreamReport:
    """Typed summary of a :class:`~repro.streaming.runtime.GeoStreamRuntime` run."""

    records_ingested: int
    records_processed: int
    results: int
    records_shed: int
    max_backlog: dict[str, int]
    duplicates_dropped: int
    late_partials: int
    wan_bytes: float
    policy: str | None = None

    @classmethod
    def from_runtime(cls, runtime) -> "StreamReport":
        flow = getattr(runtime, "flow", None)
        agg = runtime.aggregator
        return cls(
            records_ingested=sum(
                s.records_ingested for s in runtime.sites.values()
            ),
            records_processed=sum(
                s.records_processed for s in runtime.sites.values()
            ),
            results=len(runtime.results),
            records_shed=sum(s.records_shed for s in runtime.sites.values()),
            max_backlog={
                region: site.max_backlog
                for region, site in sorted(runtime.sites.items())
            },
            duplicates_dropped=agg.duplicates_dropped,
            late_partials=agg.late_partials,
            wan_bytes=runtime.wan_bytes(),
            policy=flow.policy if flow is not None else None,
        )
