"""Stream sources: where geo-distributed data is born.

Each source is attached to one site of the runtime and emits records into
it on simulator time. Emission is batched per tick (default one second of
virtual time) — event times are drawn inside the tick, so event-time
semantics stay exact while the event count stays tractable at high rates.

Sources participate in credit-based backpressure: a sink may return the
number of records it admitted (anything less than offered means the site's
ingest buffer is full under the ``block`` overload policy). The rejected
tail is *deferred* — held in the source's pending buffer with its original
event times and re-offered first on the next tick — so a throttled source
loses nothing; the deferral simply shows up as end-to-end latency.
Sinks returning ``None`` (the historical contract) admit everything.

Emission is dual-plane. Every source exposes one keyword-only surface —
``emit_batch`` / ``chunk_records`` — controlling *how* a tick's records
reach the sink: as a columnar :class:`~repro.streaming.records.RecordBatch`
(the default under the columnar record plane, resolved at attach time) or
as the legacy ``list[Record]``. The built-in sources draw from their RNG
streams in the exact same order on both planes, so a fixed seed produces
bit-identical records either way — except :class:`SensorGridSource`,
whose batch plane vectorizes the per-sensor draw loop (documented on the
class; it appears in no digest-pinned scenario).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.simulation.engine import PeriodicTask, Simulator
from repro.streaming.events import Record
from repro.streaming.records import RecordBatch


class StreamSource:
    """Base class wiring a source to the simulator.

    Subclasses implement :meth:`_emit_tick` returning the records of one
    tick interval — and, for native columnar emission,
    :meth:`_emit_tick_batch` returning the same records as one
    :class:`RecordBatch` (the base implementation materializes through
    ``_emit_tick``, so batch mode works for any subclass). ``sink`` is
    set by the runtime when the source is attached to a site.

    ``emit_batch`` — tri-state: ``True`` forces batch emission,
    ``False`` forces record lists, ``None`` (default) defers to the
    site's record plane at attach time. ``chunk_records`` caps the size
    of a single sink offer in batch mode (``None`` = one offer per
    tick); a partially accepted chunk stops the tick's offers, exactly
    like a partially accepted list did.
    """

    def __init__(
        self,
        name: str,
        tick: float = 1.0,
        record_bytes: float = 200.0,
        *,
        emit_batch: bool | None = None,
        chunk_records: int | None = None,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if chunk_records is not None and chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.name = name
        self.tick = tick
        self.record_bytes = record_bytes
        self.emit_batch = emit_batch
        self.chunk_records = chunk_records
        self.sink: Callable[[list[Record]], None] | None = None
        self.origin: str = ""
        #: Records the sink accepted (deferred records count on delivery).
        self.records_emitted = 0
        #: Sink-rejected records awaiting re-offer (block backpressure).
        #: A list on the legacy plane, a RecordBatch on the columnar one.
        self._pending: "list[Record] | RecordBatch" = []
        #: High-water mark of the pending buffer.
        self.max_deferred = 0
        self._task: PeriodicTask | None = None
        self._draining = False
        self._sim: Simulator | None = None
        self._batch_mode = bool(emit_batch)

    # ------------------------------------------------------------------
    def attach(
        self, sim: Simulator, origin: str, sink, *, batch_default: bool = False
    ) -> None:
        self._sim = sim
        self.origin = origin
        self.sink = sink
        resolved = (
            batch_default if self.emit_batch is None else self.emit_batch
        )
        self._batch_mode = bool(resolved)

    def start(self, *, schedule=None) -> None:
        """Begin ticking. ``schedule`` optionally overrides how the tick
        is driven (the site runtime passes its shared
        :meth:`~repro.simulation.engine.PeriodicGroup.add` so all of a
        site's sources ride one queue event per tick)."""
        if self._sim is None or self.sink is None:
            raise RuntimeError("source must be attached to a site first")
        if self._task is not None:
            if self._draining:  # resume a draining source in place
                self._draining = False
                return
            raise RuntimeError("source already started")
        self._draining = False
        if schedule is not None:
            self._task = schedule(self._fire)
        else:
            self._task = self._sim.add_periodic(self.tick, self._fire)

    def stop(self, drain: bool = False) -> None:
        """Stop the source; with ``drain``, finish delivering first.

        Under ``block`` the pending buffer may hold deferred records,
        and the site watermark is pinned at their oldest event time —
        a hard stop would therefore leave every later window open (and
        their already-admitted records unemitted) forever. ``drain``
        keeps the tick firing without generating fresh records, re-
        offering the deferred tail until the site admits all of it,
        then retires the task.
        """
        if drain and len(self._pending) and self._task is not None:
            self._draining = True
            return
        self._draining = False
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _fire(self) -> None:
        assert self._sim is not None and self.sink is not None
        t0 = self._sim.now - self.tick
        if self._batch_mode:
            fresh = (
                RecordBatch.empty(self.origin)
                if self._draining
                else self._emit_tick_batch(t0, self._sim.now)
            )
        else:
            fresh = (
                [] if self._draining else self._emit_tick(t0, self._sim.now)
            )
        records = self._pending + fresh if len(self._pending) else fresh
        if not records:
            if self._draining:
                self.stop()
            return
        chunk = self.chunk_records
        if self._batch_mode and chunk is not None and len(records) > chunk:
            accepted = 0
            for offset in range(0, len(records), chunk):
                piece = records[offset:offset + chunk]
                got = self.sink(piece)
                if got is None:  # legacy sink: everything admitted
                    got = len(piece)
                accepted += got
                if got < len(piece):
                    break
        else:
            accepted = self.sink(records)
            if accepted is None:  # legacy sink: everything admitted
                accepted = len(records)
        self.records_emitted += accepted
        self._pending = records[accepted:]
        if len(self._pending) > self.max_deferred:
            self.max_deferred = len(self._pending)
        if self._draining and not len(self._pending):
            self.stop()

    @property
    def pending_count(self) -> int:
        """Deferred records still waiting for ingest credits."""
        return len(self._pending)

    @property
    def running(self) -> bool:
        return self._task is not None

    @property
    def oldest_pending_time(self) -> float | None:
        """Event time of the oldest deferred record (None if empty).

        The site's watermark must not pass this: a deferred record is
        *admitted late by the site's own choice*, and turning that into
        a late-drop would make the ``block`` policy lossy.
        """
        pending = self._pending
        if not len(pending):
            return None
        if isinstance(pending, RecordBatch):
            return pending.first_event_time
        return pending[0].event_time

    def _emit_tick(self, t0: float, t1: float) -> list[Record]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _emit_tick_batch(self, t0: float, t1: float) -> RecordBatch:
        """Columnar form of :meth:`_emit_tick`.

        Base implementation materializes the per-record path — correct
        for any subclass; the built-ins override it with vectorized
        draws.
        """
        return RecordBatch.from_records(
            self._emit_tick(t0, t1), origin=self.origin
        )

    def _rng(self) -> np.random.Generator:
        assert self._sim is not None
        return self._sim.rngs.get(f"source/{self.name}")


class PoissonSource(StreamSource):
    """Memoryless arrivals at a constant mean rate."""

    def __init__(
        self,
        name: str,
        rate: float,
        keys: list[str] | None = None,
        value_fn: Callable[[np.random.Generator], float] | None = None,
        tick: float = 1.0,
        record_bytes: float = 200.0,
        *,
        emit_batch: bool | None = None,
        chunk_records: int | None = None,
    ) -> None:
        super().__init__(
            name,
            tick,
            record_bytes,
            emit_batch=emit_batch,
            chunk_records=chunk_records,
        )
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.keys = keys or ["k0"]
        #: A custom value_fn forces a per-record draw loop even on the
        #: columnar plane (to preserve its RNG stream); the default
        #: standard-normal values vectorize.
        self._default_values = value_fn is None
        self.value_fn = value_fn or (lambda rng: float(rng.normal()))
        self._key_table: tuple[str, ...] | None = None

    def _emit_tick(self, t0: float, t1: float) -> list[Record]:
        rng = self._rng()
        n = rng.poisson(self.rate * (t1 - t0))
        if n == 0:
            return []
        times = np.sort(rng.uniform(t0, t1, n))
        key_idx = rng.integers(0, len(self.keys), n)
        return [
            Record(
                event_time=float(times[i]),
                key=self.keys[key_idx[i]],
                value=self.value_fn(rng),
                origin=self.origin,
                size_bytes=self.record_bytes,
            )
            for i in range(n)
        ]

    def _emit_tick_batch(self, t0: float, t1: float) -> RecordBatch:
        # Same RNG stream order as _emit_tick: poisson, uniform(n),
        # integers(n), then n value draws (an array fill consumes the
        # bit stream exactly like n scalar calls).
        rng = self._rng()
        n = int(rng.poisson(self.rate * (t1 - t0)))
        if n == 0:
            return RecordBatch.empty(self.origin)
        times = np.sort(rng.uniform(t0, t1, n))
        key_idx = rng.integers(0, len(self.keys), n)
        if self._default_values:
            values = rng.normal(size=n)
        else:
            value_fn = self.value_fn
            values = np.fromiter(
                (float(value_fn(rng)) for _ in range(n)), np.float64, n
            )
        if self._key_table is None or len(self._key_table) != len(self.keys):
            self._key_table = tuple(self.keys)
        return RecordBatch(
            times,
            key_idx,
            values,
            np.full(n, self.record_bytes, dtype=np.float64),
            self._key_table,
            self.origin,
        )


class MmppSource(StreamSource):
    """Bursty arrivals: a two-state Markov-modulated Poisson process.

    The source alternates between a quiet state (``base_rate``) and a
    burst state (``burst_rate``); sojourn times are exponential. Models
    the load spikes that stress batching and WAN scheduling.
    """

    def __init__(
        self,
        name: str,
        base_rate: float,
        burst_rate: float,
        mean_quiet: float = 60.0,
        mean_burst: float = 10.0,
        keys: list[str] | None = None,
        tick: float = 1.0,
        record_bytes: float = 200.0,
        *,
        emit_batch: bool | None = None,
        chunk_records: int | None = None,
    ) -> None:
        super().__init__(
            name,
            tick,
            record_bytes,
            emit_batch=emit_batch,
            chunk_records=chunk_records,
        )
        if base_rate <= 0 or burst_rate <= 0:
            raise ValueError("rates must be positive")
        if mean_quiet <= 0 or mean_burst <= 0:
            raise ValueError("sojourn times must be positive")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.mean_quiet = mean_quiet
        self.mean_burst = mean_burst
        self.keys = keys or ["k0"]
        self._bursting = False
        self._switch_at: float | None = None
        self._key_table: tuple[str, ...] | None = None

    def current_rate(self) -> float:
        return self.burst_rate if self._bursting else self.base_rate

    def _advance_state(self, t0: float, t1: float, rng) -> None:
        if self._switch_at is None:
            self._switch_at = t0 + rng.exponential(self.mean_quiet)
        while self._switch_at <= t1:
            self._bursting = not self._bursting
            hold = self.mean_burst if self._bursting else self.mean_quiet
            self._switch_at += rng.exponential(hold)

    def _emit_tick(self, t0: float, t1: float) -> list[Record]:
        rng = self._rng()
        self._advance_state(t0, t1, rng)
        n = rng.poisson(self.current_rate() * (t1 - t0))
        if n == 0:
            return []
        times = np.sort(rng.uniform(t0, t1, n))
        key_idx = rng.integers(0, len(self.keys), n)
        return [
            Record(
                event_time=float(times[i]),
                key=self.keys[key_idx[i]],
                value=float(rng.normal()),
                origin=self.origin,
                size_bytes=self.record_bytes,
            )
            for i in range(n)
        ]

    def _emit_tick_batch(self, t0: float, t1: float) -> RecordBatch:
        # Identical RNG order to _emit_tick: state switches, poisson,
        # uniform(n), integers(n), normal(n).
        rng = self._rng()
        self._advance_state(t0, t1, rng)
        n = int(rng.poisson(self.current_rate() * (t1 - t0)))
        if n == 0:
            return RecordBatch.empty(self.origin)
        times = np.sort(rng.uniform(t0, t1, n))
        key_idx = rng.integers(0, len(self.keys), n)
        values = rng.normal(size=n)
        if self._key_table is None or len(self._key_table) != len(self.keys):
            self._key_table = tuple(self.keys)
        return RecordBatch(
            times,
            key_idx,
            values,
            np.full(n, self.record_bytes, dtype=np.float64),
            self._key_table,
            self.origin,
        )


class SensorGridSource(StreamSource):
    """A grid of sensors each reporting periodically with jitter.

    Values follow per-sensor slow random walks plus noise — realistic for
    environmental monitoring and easy to aggregate meaningfully (means,
    extremes per region).

    .. note:: This is the one built-in source whose columnar plane is
       *statistically* rather than bit-for-bit equivalent to its legacy
       plane: the per-sensor report loop draws (noise, jitter) sensor by
       sensor, while the batch plane draws them in vectorized rounds
       across all due sensors — same distributions, same per-tick report
       counts and report-time sequences per sensor, different RNG
       interleaving. No digest-pinned scenario uses a sensor grid.
    """

    def __init__(
        self,
        name: str,
        n_sensors: int,
        report_interval: float = 10.0,
        tick: float = 1.0,
        record_bytes: float = 120.0,
        drift_sigma: float = 0.02,
        noise_sigma: float = 0.1,
        *,
        emit_batch: bool | None = None,
        chunk_records: int | None = None,
    ) -> None:
        super().__init__(
            name,
            tick,
            record_bytes,
            emit_batch=emit_batch,
            chunk_records=chunk_records,
        )
        if n_sensors < 1:
            raise ValueError("need at least one sensor")
        if report_interval <= 0:
            raise ValueError("report_interval must be positive")
        self.n_sensors = n_sensors
        self.report_interval = report_interval
        self.drift_sigma = drift_sigma
        self.noise_sigma = noise_sigma
        self._levels: np.ndarray | None = None
        self._next_report: np.ndarray | None = None
        self._key_table: tuple[str, ...] | None = None

    def _emit_tick(self, t0: float, t1: float) -> list[Record]:
        rng = self._rng()
        if self._levels is None:
            self._levels = rng.normal(20.0, 5.0, self.n_sensors)
            self._next_report = t0 + rng.uniform(
                0, self.report_interval, self.n_sensors
            )
        assert self._next_report is not None
        self._levels += rng.normal(0, self.drift_sigma, self.n_sensors)
        out: list[Record] = []
        due = np.where(self._next_report < t1)[0]
        for idx in due:
            t = float(self._next_report[idx])
            while t < t1:
                out.append(
                    Record(
                        event_time=max(t, t0),
                        key=f"{self.name}/s{idx:04d}",
                        value=float(
                            self._levels[idx] + rng.normal(0, self.noise_sigma)
                        ),
                        origin=self.origin,
                        size_bytes=self.record_bytes,
                    )
                )
                t += self.report_interval * float(rng.uniform(0.9, 1.1))
            self._next_report[idx] = t
        out.sort(key=lambda r: r.event_time)
        return out

    def _emit_tick_batch(self, t0: float, t1: float) -> RecordBatch:
        # Vectorized rounds: each pass reports every still-due sensor
        # once, drawing its noise and next-report jitter as one array
        # each. Loop depth is max reports per sensor per tick (usually
        # 1), not total reports.
        rng = self._rng()
        if self._levels is None:
            self._levels = rng.normal(20.0, 5.0, self.n_sensors)
            self._next_report = t0 + rng.uniform(
                0, self.report_interval, self.n_sensors
            )
        assert self._next_report is not None
        self._levels += rng.normal(0, self.drift_sigma, self.n_sensors)
        if self._key_table is None:
            self._key_table = tuple(
                f"{self.name}/s{idx:04d}" for idx in range(self.n_sensors)
            )
        times: list[np.ndarray] = []
        sensor_idx: list[np.ndarray] = []
        values: list[np.ndarray] = []
        due = np.flatnonzero(self._next_report < t1)
        while due.size:
            report_t = self._next_report[due]
            times.append(np.maximum(report_t, t0))
            sensor_idx.append(due)
            values.append(
                self._levels[due] + rng.normal(0, self.noise_sigma, due.size)
            )
            self._next_report[due] = report_t + self.report_interval * (
                rng.uniform(0.9, 1.1, due.size)
            )
            due = due[self._next_report[due] < t1]
        if not times:
            return RecordBatch.empty(self.origin)
        t = np.concatenate(times)
        order = np.argsort(t, kind="stable")
        return RecordBatch(
            t[order],
            np.concatenate(sensor_idx)[order],
            np.concatenate(values)[order],
            np.full(t.size, self.record_bytes, dtype=np.float64),
            self._key_table,
            self.origin,
        )

    @property
    def mean_rate(self) -> float:
        return self.n_sensors / self.report_interval


class TraceSource(StreamSource):
    """Replays a pre-recorded list of (event_time, key, value)."""

    def __init__(
        self,
        name: str,
        trace: Iterable[tuple[float, str, object]],
        tick: float = 1.0,
        record_bytes: float = 200.0,
        *,
        emit_batch: bool | None = None,
        chunk_records: int | None = None,
    ) -> None:
        super().__init__(
            name,
            tick,
            record_bytes,
            emit_batch=emit_batch,
            chunk_records=chunk_records,
        )
        self.trace = sorted(trace, key=lambda e: e[0])
        if not self.trace:
            raise ValueError("trace is empty")
        self._cursor = 0

    def _emit_tick(self, t0: float, t1: float) -> list[Record]:
        out: list[Record] = []
        while self._cursor < len(self.trace) and self.trace[self._cursor][0] < t1:
            t, key, value = self.trace[self._cursor]
            out.append(
                Record(
                    event_time=t,
                    key=key,
                    value=value,
                    origin=self.origin,
                    size_bytes=self.record_bytes,
                )
            )
            self._cursor += 1
        return out

    def _emit_tick_batch(self, t0: float, t1: float) -> RecordBatch:
        start = self._cursor
        trace = self.trace
        cursor = start
        while cursor < len(trace) and trace[cursor][0] < t1:
            cursor += 1
        self._cursor = cursor
        rows = trace[start:cursor]
        if not rows:
            return RecordBatch.empty(self.origin)
        n = len(rows)
        t = np.fromiter((row[0] for row in rows), np.float64, n)
        table: dict[str, int] = {}
        key_idx = np.fromiter(
            (table.setdefault(row[1], len(table)) for row in rows),
            np.int64,
            n,
        )
        payloads = [row[2] for row in rows]
        if all(type(v) is float for v in payloads):
            value = np.asarray(payloads, dtype=np.float64)
        else:
            value = np.empty(n, dtype=object)
            value[:] = payloads
        return RecordBatch(
            t,
            key_idx,
            value,
            np.full(n, self.record_bytes, dtype=np.float64),
            tuple(table),
            self.origin,
        )

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.trace)


class ScheduleSource(StreamSource):
    """Poisson arrivals driven by an arbitrary rate program.

    ``rate_fn(t)`` gives the instantaneous arrival rate at time ``t``
    *relative to the source's first tick* (the same convention
    :class:`BurstSource` and fault plans use, so a generated schedule
    means the same thing regardless of engine warm-up length).
    ``bytes_fn(t)``, when given, sizes records by the same clock —
    generated scenarios use it for slow drift in record sizes. Optional
    ``key_weights`` skew the key distribution (e.g. zipf-like page
    popularity) instead of the uniform pick of :class:`PoissonSource`.

    The rate is integrated over each tick with a small fixed-step
    midpoint rule so ticks straddling a flash-crowd edge draw the right
    expected count without the schedule having to be piecewise-constant.
    """

    def __init__(
        self,
        name: str,
        rate_fn: Callable[[float], float],
        keys: list[str] | None = None,
        key_weights: list[float] | None = None,
        bytes_fn: Callable[[float], float] | None = None,
        tick: float = 1.0,
        record_bytes: float = 200.0,
        integrate_step: float = 1.0,
        *,
        emit_batch: bool | None = None,
        chunk_records: int | None = None,
    ) -> None:
        super().__init__(
            name,
            tick,
            record_bytes,
            emit_batch=emit_batch,
            chunk_records=chunk_records,
        )
        if integrate_step <= 0:
            raise ValueError("integrate_step must be positive")
        self.rate_fn = rate_fn
        self.keys = keys or ["k0"]
        if key_weights is not None:
            if len(key_weights) != len(self.keys):
                raise ValueError("key_weights must match keys in length")
            if any(w < 0 for w in key_weights) or sum(key_weights) <= 0:
                raise ValueError("key_weights must be non-negative, sum > 0")
            total = float(sum(key_weights))
            self._key_p: np.ndarray | None = (
                np.asarray(key_weights, dtype=float) / total
            )
        else:
            self._key_p = None
        self.bytes_fn = bytes_fn
        self.integrate_step = integrate_step
        self._origin_time: float | None = None
        self._key_table: tuple[str, ...] | None = None

    def rate_at(self, t: float) -> float:
        """Arrival rate at virtual time ``t`` (after the source started)."""
        origin = self._origin_time if self._origin_time is not None else 0.0
        return max(0.0, float(self.rate_fn(t - origin)))

    def _mean_count(self, t0: float, t1: float) -> float:
        assert self._origin_time is not None
        total = 0.0
        t = t0
        while t < t1:
            step = min(self.integrate_step, t1 - t)
            total += self.rate_at(t + step / 2.0) * step
            t += step
        return total

    def _emit_tick(self, t0: float, t1: float) -> list[Record]:
        rng = self._rng()
        if self._origin_time is None:
            self._origin_time = t0
        mean = self._mean_count(t0, t1)
        n = rng.poisson(mean) if mean > 0 else 0
        if n == 0:
            return []
        times = np.sort(rng.uniform(t0, t1, n))
        if self._key_p is not None:
            key_idx = rng.choice(len(self.keys), size=n, p=self._key_p)
        else:
            key_idx = rng.integers(0, len(self.keys), n)
        origin_t = self._origin_time
        if self.bytes_fn is not None:
            sizes = [
                max(1.0, float(self.bytes_fn(float(times[i]) - origin_t)))
                for i in range(n)
            ]
        else:
            sizes = [self.record_bytes] * n
        return [
            Record(
                event_time=float(times[i]),
                key=self.keys[key_idx[i]],
                value=float(rng.normal()),
                origin=self.origin,
                size_bytes=sizes[i],
            )
            for i in range(n)
        ]

    def _emit_tick_batch(self, t0: float, t1: float) -> RecordBatch:
        # Same RNG order as _emit_tick: poisson, uniform(n),
        # choice/integers(n), normal(n) — bytes_fn draws nothing.
        rng = self._rng()
        if self._origin_time is None:
            self._origin_time = t0
        mean = self._mean_count(t0, t1)
        n = int(rng.poisson(mean)) if mean > 0 else 0
        if n == 0:
            return RecordBatch.empty(self.origin)
        times = np.sort(rng.uniform(t0, t1, n))
        if self._key_p is not None:
            key_idx = np.asarray(
                rng.choice(len(self.keys), size=n, p=self._key_p),
                dtype=np.int64,
            )
        else:
            key_idx = rng.integers(0, len(self.keys), n)
        origin_t = self._origin_time
        if self.bytes_fn is not None:
            bytes_fn = self.bytes_fn
            sizes = np.fromiter(
                (
                    max(1.0, float(bytes_fn(float(times[i]) - origin_t)))
                    for i in range(n)
                ),
                np.float64,
                n,
            )
        else:
            sizes = np.full(n, self.record_bytes, dtype=np.float64)
        values = rng.normal(size=n)
        if self._key_table is None or len(self._key_table) != len(self.keys):
            self._key_table = tuple(self.keys)
        return RecordBatch(
            times, key_idx, values, sizes, self._key_table, self.origin
        )


class BurstSource(StreamSource):
    """Poisson arrivals with one scripted overload burst.

    Emits at ``base_rate`` except inside ``[burst_start, burst_end)``,
    where the rate jumps to ``burst_rate``. Unlike :class:`MmppSource`
    the burst window is part of the schedule, not random — the overload
    experiments need the 5× spike at a known time so backpressure,
    shedding, and recovery can be asserted against it deterministically.

    The burst window is *relative to the source's first tick* (like
    fault-plan times are relative to arming), so the scenario means the
    same thing regardless of how long the engine warmed up before.
    """

    def __init__(
        self,
        name: str,
        base_rate: float,
        burst_rate: float,
        burst_start: float,
        burst_end: float,
        keys: list[str] | None = None,
        tick: float = 1.0,
        record_bytes: float = 200.0,
        *,
        emit_batch: bool | None = None,
        chunk_records: int | None = None,
    ) -> None:
        super().__init__(
            name,
            tick,
            record_bytes,
            emit_batch=emit_batch,
            chunk_records=chunk_records,
        )
        if base_rate < 0 or burst_rate <= 0:
            raise ValueError("rates must be positive (base may be zero)")
        if burst_end <= burst_start:
            raise ValueError("burst window must have positive length")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.burst_start = burst_start
        self.burst_end = burst_end
        self.keys = keys or ["k0"]
        self._origin_time: float | None = None
        self._key_table: tuple[str, ...] | None = None

    def rate_at(self, t: float) -> float:
        """Arrival rate at virtual time ``t`` (after the source started)."""
        origin = self._origin_time if self._origin_time is not None else 0.0
        if origin + self.burst_start <= t < origin + self.burst_end:
            return self.burst_rate
        return self.base_rate

    def _emit_tick(self, t0: float, t1: float) -> list[Record]:
        rng = self._rng()
        if self._origin_time is None:
            self._origin_time = t0
        # Integrate the piecewise-constant rate over the tick so a tick
        # straddling a burst boundary draws the exact expected count.
        lo = self._origin_time + self.burst_start
        hi = self._origin_time + self.burst_end
        burst_overlap = max(0.0, min(t1, hi) - max(t0, lo))
        mean = (
            self.base_rate * ((t1 - t0) - burst_overlap)
            + self.burst_rate * burst_overlap
        )
        n = rng.poisson(mean) if mean > 0 else 0
        if n == 0:
            return []
        times = np.sort(rng.uniform(t0, t1, n))
        key_idx = rng.integers(0, len(self.keys), n)
        return [
            Record(
                event_time=float(times[i]),
                key=self.keys[key_idx[i]],
                value=float(rng.normal()),
                origin=self.origin,
                size_bytes=self.record_bytes,
            )
            for i in range(n)
        ]

    def _emit_tick_batch(self, t0: float, t1: float) -> RecordBatch:
        # Same RNG order as _emit_tick: poisson, uniform(n),
        # integers(n), normal(n).
        rng = self._rng()
        if self._origin_time is None:
            self._origin_time = t0
        lo = self._origin_time + self.burst_start
        hi = self._origin_time + self.burst_end
        burst_overlap = max(0.0, min(t1, hi) - max(t0, lo))
        mean = (
            self.base_rate * ((t1 - t0) - burst_overlap)
            + self.burst_rate * burst_overlap
        )
        n = int(rng.poisson(mean)) if mean > 0 else 0
        if n == 0:
            return RecordBatch.empty(self.origin)
        times = np.sort(rng.uniform(t0, t1, n))
        key_idx = rng.integers(0, len(self.keys), n)
        values = rng.normal(size=n)
        if self._key_table is None or len(self._key_table) != len(self.keys):
            self._key_table = tuple(self.keys)
        return RecordBatch(
            times,
            key_idx,
            values,
            np.full(n, self.record_bytes, dtype=np.float64),
            self._key_table,
            self.origin,
        )
