"""Window assigners for event-time aggregation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Window:
    """A half-open event-time interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("window end must be after start")

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


class TumblingWindows:
    """Fixed, non-overlapping windows of one length."""

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise ValueError("window length must be positive")
        self.length = length

    def assign(self, event_time: float) -> list[Window]:
        start = (event_time // self.length) * self.length
        return [Window(start, start + self.length)]


class SlidingWindows:
    """Overlapping windows: ``length`` long, sliding every ``slide``."""

    def __init__(self, length: float, slide: float) -> None:
        if length <= 0 or slide <= 0:
            raise ValueError("length and slide must be positive")
        if slide > length:
            raise ValueError("slide must not exceed length (gaps would drop events)")
        self.length = length
        self.slide = slide

    def assign(self, event_time: float) -> list[Window]:
        windows: list[Window] = []
        # Last window that starts at or before the event.
        last_start = (event_time // self.slide) * self.slide
        start = last_start
        while start > event_time - self.length:
            windows.append(Window(start, start + self.length))
            start -= self.slide
        return sorted(windows)
