"""Window assigners for event-time aggregation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, order=True)
class Window:
    """A half-open event-time interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("window end must be after start")

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


class TumblingWindows:
    """Fixed, non-overlapping windows of one length."""

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise ValueError("window length must be positive")
        self.length = length

    def assign(self, event_time: float) -> list[Window]:
        start = (event_time // self.length) * self.length
        return [Window(start, start + self.length)]

    def assign_starts(self, event_times: np.ndarray) -> np.ndarray:
        """Vectorized window starts, bit-identical to :meth:`assign`.

        The scalar path computes ``(t // length) * length`` with
        CPython float floor-division, which is *not* ``floor(t /
        length)``: CPython derives the quotient from ``fmod`` and
        applies a half-ulp correction, so e.g. large ``t`` just below a
        window boundary can floor differently than naive division.
        This replicates that algorithm (for the non-negative operands
        the stream plane uses) so both planes bucket every record into
        the same window.
        """
        length = self.length
        mod = np.fmod(event_times, length)
        div = (event_times - mod) / length
        floordiv = np.floor(div)
        # CPython rounds the reconstructed quotient to the nearest
        # integer when it lands within half a unit — mirror it.
        floordiv[(div - floordiv) > 0.5] += 1.0
        if np.any(event_times < 0.0):
            # Negative event times take CPython's sign-correction
            # branch; defer to the scalar path for exactness.
            neg = event_times < 0.0
            floordiv[neg] = [
                t // length for t in event_times[neg].tolist()
            ]
            return floordiv * length
        return floordiv * length


class SlidingWindows:
    """Overlapping windows: ``length`` long, sliding every ``slide``."""

    def __init__(self, length: float, slide: float) -> None:
        if length <= 0 or slide <= 0:
            raise ValueError("length and slide must be positive")
        if slide > length:
            raise ValueError("slide must not exceed length (gaps would drop events)")
        self.length = length
        self.slide = slide

    def assign(self, event_time: float) -> list[Window]:
        windows: list[Window] = []
        # Last window that starts at or before the event.
        last_start = (event_time // self.slide) * self.slide
        start = last_start
        while start > event_time - self.length:
            windows.append(Window(start, start + self.length))
            start -= self.slide
        return sorted(windows)
