"""Stream operators and mergeable aggregates.

The site-local analysis chain is a list of operators. The last stage is
usually a :class:`WindowedAggregator`, which turns raw records into
*partial aggregates* — the crucial data-reduction step before the wide
area. Partials are mergeable: the global aggregator combines partials from
every site into the exact global result, so shipping partials instead of
raw records loses nothing but volume.

The canonical operator interface is **batch-first**:
``process_batch(batch) -> RecordBatch`` transforms one columnar
:class:`~repro.streaming.records.RecordBatch` at a time (vectorized
where possible). Legacy per-record operators — anything exposing only
``process(record) -> list[Record]`` — keep working through
:class:`PerRecordAdapter`, which the site runtime wraps around them
automatically (with a :class:`DeprecationWarning`) when the columnar
plane is active.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Protocol

import numpy as np

from repro.streaming.events import Record
from repro.streaming.records import RecordBatch
from repro.streaming.windows import TumblingWindows, Window


class Operator(Protocol):
    """A batch transformation: one :class:`RecordBatch` in, one out.

    ``process_batch`` is the canonical interface; implementations that
    also serve the legacy per-record plane provide ``process(record) ->
    list[Record]`` with identical semantics. Objects exposing *only*
    ``process`` are accepted everywhere an ``Operator`` is — the
    runtime wraps them in :class:`PerRecordAdapter`.
    """

    def process_batch(
        self, batch: RecordBatch
    ) -> RecordBatch:  # pragma: no cover
        ...


class PerRecordAdapter:
    """Adapt a legacy per-record operator to the batch-first protocol.

    Materializes each batch into :class:`Record` objects, runs the
    wrapped operator's ``process`` on every one, and re-columnarizes the
    outputs — same results as the legacy plane, minus its scheduling
    overhead but plus the conversion cost. Migrate hot operators to a
    native ``process_batch`` to shed the adapter.
    """

    def __init__(self, inner) -> None:
        warnings.warn(
            f"{type(inner).__name__} implements only the per-record "
            "process() interface; wrapping it in PerRecordAdapter. "
            "Implement process_batch(batch) for native batch support.",
            DeprecationWarning,
            stacklevel=3,
        )
        self.inner = inner

    def process(self, record: Record) -> list[Record]:
        return self.inner.process(record)

    def process_batch(self, batch: RecordBatch) -> RecordBatch:
        out: list[Record] = []
        process = self.inner.process
        for record in batch.iter_records():
            out.extend(process(record))
        return RecordBatch.from_records(out, origin=batch.origin)


class MapOperator:
    """Apply a function to each record's value (and optionally key).

    ``batch_fn`` is the optional vectorized form (whole
    :class:`RecordBatch` in/out); without it, batches are materialized
    record-by-record through ``fn`` — identical results, slower.
    """

    def __init__(
        self,
        fn: Callable[[Record], Record],
        batch_fn: Callable[[RecordBatch], RecordBatch] | None = None,
    ) -> None:
        self.fn = fn
        self.batch_fn = batch_fn

    def process(self, record: Record) -> list[Record]:
        out = self.fn(record)
        return [out] if out is not None else []

    def process_batch(self, batch: RecordBatch) -> RecordBatch:
        if self.batch_fn is not None:
            return self.batch_fn(batch)
        out: list[Record] = []
        fn = self.fn
        for record in batch.iter_records():
            mapped = fn(record)
            if mapped is not None:
                out.append(mapped)
        return RecordBatch.from_records(out, origin=batch.origin)


class FilterOperator:
    """Keep records matching a predicate.

    ``batch_predicate`` is the optional vectorized form: it receives
    the whole :class:`RecordBatch` and returns a boolean mask over its
    records. Without it, the scalar ``predicate`` is applied per
    materialized record.
    """

    def __init__(
        self,
        predicate: Callable[[Record], bool],
        batch_predicate: Callable[[RecordBatch], np.ndarray] | None = None,
    ) -> None:
        self.predicate = predicate
        self.batch_predicate = batch_predicate

    def process(self, record: Record) -> list[Record]:
        return [record] if self.predicate(record) else []

    def process_batch(self, batch: RecordBatch) -> RecordBatch:
        if self.batch_predicate is not None:
            mask = np.asarray(self.batch_predicate(batch), dtype=bool)
        else:
            predicate = self.predicate
            mask = np.fromiter(
                (bool(predicate(r)) for r in batch.iter_records()),
                dtype=bool,
                count=len(batch),
            )
        return batch.where(mask)


@dataclass(frozen=True)
class AggregateFn:
    """A mergeable aggregation: zero / add / merge / result.

    ``add`` folds one raw value into a partial state; ``merge`` combines
    two partial states; ``result`` finalises. The merge must be
    associative and commutative — the property-based tests verify this for
    the built-ins.
    """

    name: str
    zero: Callable[[], Any]
    add: Callable[[Any, Any], Any]
    merge: Callable[[Any, Any], Any]
    result: Callable[[Any], Any]
    #: Optional vectorized fold: ``fold_batch(state, values)`` folds a
    #: float64 array of raw values into a partial state, **bit-identical**
    #: to applying ``add`` left-to-right over the array. Aggregates
    #: without an exactly-equivalent vectorized form (``var``) leave
    #: this ``None`` and the columnar plane falls back to per-element
    #: ``add``.
    fold_batch: Callable[[Any, np.ndarray], Any] | None = None


def _seq_sum(state: float, values: np.ndarray) -> float:
    # np.add.accumulate is a strictly sequential left-to-right fold
    # (unlike the pairwise np.add.reduce), so seeding it with the prior
    # state reproduces the scalar add-chain bit for bit.
    buf = np.empty(values.size + 1, dtype=np.float64)
    buf[0] = state
    buf[1:] = values
    np.add.accumulate(buf, out=buf)
    return float(buf[-1])


def builtin_aggregate(name: str) -> AggregateFn:
    """Built-in aggregates: count, sum, mean, min, max, var."""
    if name == "count":
        return AggregateFn(
            "count",
            zero=lambda: 0,
            add=lambda s, v: s + 1,
            merge=lambda a, b: a + b,
            result=lambda s: s,
            fold_batch=lambda s, v: s + v.size,
        )
    if name == "sum":
        return AggregateFn(
            "sum",
            zero=lambda: 0.0,
            add=lambda s, v: s + float(v),
            merge=lambda a, b: a + b,
            result=lambda s: s,
            fold_batch=_seq_sum,
        )
    if name == "min":
        return AggregateFn(
            "min",
            zero=lambda: math.inf,
            add=lambda s, v: min(s, float(v)),
            merge=min,
            result=lambda s: s,
            fold_batch=lambda s, v: float(np.minimum.reduce(v, initial=s)),
        )
    if name == "max":
        return AggregateFn(
            "max",
            zero=lambda: -math.inf,
            add=lambda s, v: max(s, float(v)),
            merge=max,
            result=lambda s: s,
            fold_batch=lambda s, v: float(np.maximum.reduce(v, initial=s)),
        )
    if name == "mean":
        # Partial state: (count, sum).
        return AggregateFn(
            "mean",
            zero=lambda: (0, 0.0),
            add=lambda s, v: (s[0] + 1, s[1] + float(v)),
            merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            result=lambda s: s[1] / s[0] if s[0] else float("nan"),
            fold_batch=lambda s, v: (s[0] + v.size, _seq_sum(s[1], v)),
        )
    if name == "var":
        # Partial state: (count, mean, M2) — population variance via the
        # Welford/Chan update. The naive (count, sum, sum-of-squares)
        # state cancels catastrophically when the mean is large relative
        # to the spread, so merged and sequential results diverged.
        # The Welford chain has no bit-exact vectorized form, so no
        # fold_batch: the columnar plane folds var per element.
        return AggregateFn(
            "var",
            zero=lambda: (0, 0.0, 0.0),
            add=_var_add,
            merge=_var_merge,
            result=lambda s: s[2] / s[0] if s[0] else float("nan"),
        )
    raise ValueError(f"unknown aggregate {name!r}")


def _var_add(s: tuple, v: float) -> tuple:
    n, mean, m2 = s
    v = float(v)
    n += 1
    delta = v - mean
    mean += delta / n
    return (n, mean, m2 + delta * (v - mean))


def _var_merge(a: tuple, b: tuple) -> tuple:
    na, mean_a, m2a = a
    nb, mean_b, m2b = b
    if na == 0:
        return b
    if nb == 0:
        return a
    n = na + nb
    delta = mean_b - mean_a
    mean = mean_a + delta * nb / n
    return (n, mean, m2a + m2b + delta * delta * na * nb / n)


@dataclass(frozen=True)
class PartialAggregate:
    """Value payload of a partial-aggregate record shipped over the WAN."""

    window: Window
    key: str
    state: Any
    count: int


class WindowedAggregator:
    """Keyed, windowed aggregation producing mergeable partials.

    Windows close on *watermark*: once the operator has seen (or been
    told) event time past ``window.end + allowed_lateness``, the window's
    partial records are emitted. Late records beyond lateness are counted
    and dropped — the global aggregator must never block on a straggler
    site's slow clock.
    """

    def __init__(
        self,
        windows,
        aggregate: AggregateFn,
        allowed_lateness: float = 0.0,
        partial_record_bytes: float = 120.0,
    ) -> None:
        self.windows = windows
        self.aggregate = aggregate
        self.allowed_lateness = allowed_lateness
        self.partial_record_bytes = partial_record_bytes
        self._state: dict[tuple[Window, str], Any] = {}
        self._counts: dict[tuple[Window, str], int] = {}
        self.records_seen = 0
        self.late_dropped = 0
        self._watermark = -math.inf

    def process(self, record: Record) -> list[Record]:
        """Fold a record in; emits nothing (emission is watermark-driven)."""
        self.records_seen += 1
        if record.event_time + self.allowed_lateness < self._watermark:
            self.late_dropped += 1
            return []
        for window in self.windows.assign(record.event_time):
            slot = (window, record.key)
            state = self._state.get(slot)
            if state is None:
                state = self.aggregate.zero()
            self._state[slot] = self.aggregate.add(state, record.value)
            self._counts[slot] = self._counts.get(slot, 0) + 1
        return []

    def process_batch(self, batch: RecordBatch) -> RecordBatch:
        """Fold a whole batch in; emits nothing (emission is watermark-driven).

        The fast path — tumbling windows, float64 values, and an
        aggregate with a ``fold_batch`` — groups the batch by (window,
        key) with one stable lexsort and folds each contiguous group in
        a single vectorized call. Everything else (sliding windows,
        object payloads, ``var``, custom aggregates) takes a per-record
        loop with semantics identical to :meth:`process`.
        """
        n = len(batch)
        if not n:
            return batch
        self.records_seen += n
        if self._watermark != -math.inf:
            keep = batch.t + self.allowed_lateness >= self._watermark
            n_keep = int(np.count_nonzero(keep))
            if n_keep != n:
                self.late_dropped += n - n_keep
                if not n_keep:
                    return RecordBatch.empty(batch.origin)
                batch = batch.where(keep)
        fold = self.aggregate.fold_batch
        if (
            fold is not None
            and isinstance(self.windows, TumblingWindows)
            and batch.value.dtype != object
        ):
            self._fold_tumbling(batch, fold)
        else:
            self._fold_slow(batch)
        return RecordBatch.empty(batch.origin)

    def _fold_tumbling(self, batch: RecordBatch, fold) -> None:
        starts = self.windows.assign_starts(batch.t)
        # Stable sort: within one (window, key) group, values keep their
        # arrival order, so sequential folds match the legacy plane's
        # interleaved per-record adds exactly.
        order = np.lexsort((batch.key_idx, starts))
        starts = starts[order]
        key_idx = batch.key_idx[order]
        values = batch.value[order]
        boundary = np.empty(len(starts), dtype=bool)
        boundary[0] = True
        np.not_equal(starts[1:], starts[:-1], out=boundary[1:])
        boundary[1:] |= key_idx[1:] != key_idx[:-1]
        group_starts = np.flatnonzero(boundary)
        group_ends = np.append(group_starts[1:], len(starts))
        length = self.windows.length
        keys = batch.keys
        state_map = self._state
        counts = self._counts
        zero = self.aggregate.zero
        for lo, hi in zip(group_starts, group_ends):
            lo = int(lo)
            hi = int(hi)
            start = starts[lo].item()
            slot = (Window(start, start + length), keys[key_idx[lo]])
            state = state_map.get(slot)
            if state is None:
                state = zero()
            state_map[slot] = fold(state, values[lo:hi])
            counts[slot] = counts.get(slot, 0) + (hi - lo)

    def _fold_slow(self, batch: RecordBatch) -> None:
        # Exact replica of the per-record fold for shapes the vectorized
        # path cannot serve bit-identically.
        add = self.aggregate.add
        zero = self.aggregate.zero
        assign = self.windows.assign
        t = batch.t
        key_idx = batch.key_idx
        keys = batch.keys
        values = batch.value
        is_obj = values.dtype == object
        state_map = self._state
        counts = self._counts
        for i in range(len(batch)):
            key = keys[key_idx[i]]
            value = values[i] if is_obj else values[i].item()
            for window in assign(t[i].item()):
                slot = (window, key)
                state = state_map.get(slot)
                if state is None:
                    state = zero()
                state_map[slot] = add(state, value)
                counts[slot] = counts.get(slot, 0) + 1

    def advance_watermark(self, watermark: float) -> list[Record]:
        """Close all windows ending before the watermark; emit partials."""
        if watermark < self._watermark:
            raise ValueError("watermark cannot move backwards")
        self._watermark = watermark
        out: list[Record] = []
        closed = [
            slot
            for slot in self._state
            if slot[0].end + self.allowed_lateness <= watermark
        ]
        for slot in sorted(closed, key=lambda s: (s[0], s[1])):
            window, key = slot
            state = self._state.pop(slot)
            count = self._counts.pop(slot)
            out.append(
                Record(
                    event_time=window.end,
                    key=key,
                    value=PartialAggregate(window, key, state, count),
                    size_bytes=self.partial_record_bytes,
                )
            )
        return out

    @property
    def open_windows(self) -> int:
        return len({w for w, _ in self._state})

    # -- checkpoint/restore --------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable view of all open window state.

        Aggregate states are stored verbatim; the built-in aggregates use
        scalars and tuples, and tuples survive a JSON round trip as lists
        whose element access the add/merge closures are agnostic to.
        """
        return {
            "watermark": (
                None if self._watermark == -math.inf else self._watermark
            ),
            "records_seen": self.records_seen,
            "late_dropped": self.late_dropped,
            "slots": [
                [w.start, w.end, key, self._state[(w, key)],
                 self._counts[(w, key)]]
                for (w, key) in sorted(
                    self._state, key=lambda s: (s[0], s[1])
                )
            ],
        }

    def restore(self, payload: dict) -> None:
        """Replace all state with a :meth:`snapshot` payload."""
        wm = payload["watermark"]
        self._watermark = -math.inf if wm is None else wm
        self.records_seen = payload["records_seen"]
        self.late_dropped = payload["late_dropped"]
        self._state = {}
        self._counts = {}
        for start, end, key, state, count in payload["slots"]:
            slot = (Window(start, end), key)
            self._state[slot] = state
            self._counts[slot] = count
