"""Stream operators and mergeable aggregates.

The site-local analysis chain is a list of operators. The last stage is
usually a :class:`WindowedAggregator`, which turns raw records into
*partial aggregates* — the crucial data-reduction step before the wide
area. Partials are mergeable: the global aggregator combines partials from
every site into the exact global result, so shipping partials instead of
raw records loses nothing but volume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.streaming.events import Record
from repro.streaming.windows import Window


class Operator(Protocol):
    """A per-record transformation. Returns zero or more records."""

    def process(self, record: Record) -> list[Record]:  # pragma: no cover
        ...


class MapOperator:
    """Apply a function to each record's value (and optionally key)."""

    def __init__(
        self,
        fn: Callable[[Record], Record],
    ) -> None:
        self.fn = fn

    def process(self, record: Record) -> list[Record]:
        out = self.fn(record)
        return [out] if out is not None else []


class FilterOperator:
    """Keep records matching a predicate."""

    def __init__(self, predicate: Callable[[Record], bool]) -> None:
        self.predicate = predicate

    def process(self, record: Record) -> list[Record]:
        return [record] if self.predicate(record) else []


@dataclass(frozen=True)
class AggregateFn:
    """A mergeable aggregation: zero / add / merge / result.

    ``add`` folds one raw value into a partial state; ``merge`` combines
    two partial states; ``result`` finalises. The merge must be
    associative and commutative — the property-based tests verify this for
    the built-ins.
    """

    name: str
    zero: Callable[[], Any]
    add: Callable[[Any, Any], Any]
    merge: Callable[[Any, Any], Any]
    result: Callable[[Any], Any]


def builtin_aggregate(name: str) -> AggregateFn:
    """Built-in aggregates: count, sum, mean, min, max, var."""
    if name == "count":
        return AggregateFn(
            "count",
            zero=lambda: 0,
            add=lambda s, v: s + 1,
            merge=lambda a, b: a + b,
            result=lambda s: s,
        )
    if name == "sum":
        return AggregateFn(
            "sum",
            zero=lambda: 0.0,
            add=lambda s, v: s + float(v),
            merge=lambda a, b: a + b,
            result=lambda s: s,
        )
    if name == "min":
        return AggregateFn(
            "min",
            zero=lambda: math.inf,
            add=lambda s, v: min(s, float(v)),
            merge=min,
            result=lambda s: s,
        )
    if name == "max":
        return AggregateFn(
            "max",
            zero=lambda: -math.inf,
            add=lambda s, v: max(s, float(v)),
            merge=max,
            result=lambda s: s,
        )
    if name == "mean":
        # Partial state: (count, sum).
        return AggregateFn(
            "mean",
            zero=lambda: (0, 0.0),
            add=lambda s, v: (s[0] + 1, s[1] + float(v)),
            merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            result=lambda s: s[1] / s[0] if s[0] else float("nan"),
        )
    if name == "var":
        # Partial state: (count, mean, M2) — population variance via the
        # Welford/Chan update. The naive (count, sum, sum-of-squares)
        # state cancels catastrophically when the mean is large relative
        # to the spread, so merged and sequential results diverged.
        return AggregateFn(
            "var",
            zero=lambda: (0, 0.0, 0.0),
            add=_var_add,
            merge=_var_merge,
            result=lambda s: s[2] / s[0] if s[0] else float("nan"),
        )
    raise ValueError(f"unknown aggregate {name!r}")


def _var_add(s: tuple, v: float) -> tuple:
    n, mean, m2 = s
    v = float(v)
    n += 1
    delta = v - mean
    mean += delta / n
    return (n, mean, m2 + delta * (v - mean))


def _var_merge(a: tuple, b: tuple) -> tuple:
    na, mean_a, m2a = a
    nb, mean_b, m2b = b
    if na == 0:
        return b
    if nb == 0:
        return a
    n = na + nb
    delta = mean_b - mean_a
    mean = mean_a + delta * nb / n
    return (n, mean, m2a + m2b + delta * delta * na * nb / n)


@dataclass(frozen=True)
class PartialAggregate:
    """Value payload of a partial-aggregate record shipped over the WAN."""

    window: Window
    key: str
    state: Any
    count: int


class WindowedAggregator:
    """Keyed, windowed aggregation producing mergeable partials.

    Windows close on *watermark*: once the operator has seen (or been
    told) event time past ``window.end + allowed_lateness``, the window's
    partial records are emitted. Late records beyond lateness are counted
    and dropped — the global aggregator must never block on a straggler
    site's slow clock.
    """

    def __init__(
        self,
        windows,
        aggregate: AggregateFn,
        allowed_lateness: float = 0.0,
        partial_record_bytes: float = 120.0,
    ) -> None:
        self.windows = windows
        self.aggregate = aggregate
        self.allowed_lateness = allowed_lateness
        self.partial_record_bytes = partial_record_bytes
        self._state: dict[tuple[Window, str], Any] = {}
        self._counts: dict[tuple[Window, str], int] = {}
        self.records_seen = 0
        self.late_dropped = 0
        self._watermark = -math.inf

    def process(self, record: Record) -> list[Record]:
        """Fold a record in; emits nothing (emission is watermark-driven)."""
        self.records_seen += 1
        if record.event_time + self.allowed_lateness < self._watermark:
            self.late_dropped += 1
            return []
        for window in self.windows.assign(record.event_time):
            slot = (window, record.key)
            state = self._state.get(slot)
            if state is None:
                state = self.aggregate.zero()
            self._state[slot] = self.aggregate.add(state, record.value)
            self._counts[slot] = self._counts.get(slot, 0) + 1
        return []

    def advance_watermark(self, watermark: float) -> list[Record]:
        """Close all windows ending before the watermark; emit partials."""
        if watermark < self._watermark:
            raise ValueError("watermark cannot move backwards")
        self._watermark = watermark
        out: list[Record] = []
        closed = [
            slot
            for slot in self._state
            if slot[0].end + self.allowed_lateness <= watermark
        ]
        for slot in sorted(closed, key=lambda s: (s[0], s[1])):
            window, key = slot
            state = self._state.pop(slot)
            count = self._counts.pop(slot)
            out.append(
                Record(
                    event_time=window.end,
                    key=key,
                    value=PartialAggregate(window, key, state, count),
                    size_bytes=self.partial_record_bytes,
                )
            )
        return out

    @property
    def open_windows(self) -> int:
        return len({w for w, _ in self._state})

    # -- checkpoint/restore --------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable view of all open window state.

        Aggregate states are stored verbatim; the built-in aggregates use
        scalars and tuples, and tuples survive a JSON round trip as lists
        whose element access the add/merge closures are agnostic to.
        """
        return {
            "watermark": (
                None if self._watermark == -math.inf else self._watermark
            ),
            "records_seen": self.records_seen,
            "late_dropped": self.late_dropped,
            "slots": [
                [w.start, w.end, key, self._state[(w, key)],
                 self._counts[(w, key)]]
                for (w, key) in sorted(
                    self._state, key=lambda s: (s[0], s[1])
                )
            ],
        }

    def restore(self, payload: dict) -> None:
        """Replace all state with a :meth:`snapshot` payload."""
        wm = payload["watermark"]
        self._watermark = -math.inf if wm is None else wm
        self.records_seen = payload["records_seen"]
        self.late_dropped = payload["late_dropped"]
        self._state = {}
        self._counts = {}
        for start, end, key, state, count in payload["slots"]:
            slot = (Window(start, end), key)
            self._state[slot] = state
            self._counts[slot] = count
