"""Hierarchical aggregation: edge sites → regional hubs → global.

With many producing sites per continent, shipping every site's partials
across the ocean wastes the most expensive links. A *regional hub* sits
between: nearby sites ship their window partials to the hub over cheap
intra-continent links; the hub merges partials per (window, key) — the
merge is associative, so hub-merged state is indistinguishable from
site state — and forwards one merged partial per window/key across the
backbone. Transcontinental volume then scales with hubs, not with sites,
at the price of one extra hold-and-merge stage of latency.

:class:`HierarchicalRuntime` wraps the flat
:class:`~repro.streaming.runtime.GeoStreamRuntime`: sites are grouped by
an assignment of site-region → hub-region; each hub runs a
:class:`HubAggregator` fed by its children's shipping backends and ships
onward with its own backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import SageEngine
from repro.streaming.batching import Batcher, HybridBatchPolicy
from repro.streaming.dataflow import StreamJob
from repro.streaming.events import Batch, Record
from repro.streaming.operators import PartialAggregate
from repro.streaming.runtime import GlobalAggregator, LatencyStats, SiteRuntime
from repro.streaming.windows import Window
from repro.simulation.units import KB


@dataclass
class _HubSlot:
    state: object = None
    count: int = 0
    sites: set | None = None
    flush_scheduled: bool = False
    #: Virtual time the hold timer fires (checkpointed for re-arming).
    due: float = 0.0


class HubAggregator:
    """Merges child-site partials and forwards merged partials onward."""

    def __init__(
        self,
        engine: SageEngine,
        job: StreamJob,
        hub_region: str,
        shipping,
        hold: float = 2.0,
    ) -> None:
        """``hold``: how long after the first partial of a (window, key)
        arrives the hub waits for siblings before forwarding the merge."""
        if hold < 0:
            raise ValueError("hold must be non-negative")
        self.engine = engine
        self.job = job
        self.hub_region = hub_region
        self.shipping = shipping
        self.hold = hold
        self.batcher = Batcher(
            HybridBatchPolicy(64 * KB, max(hold, 0.5)), origin=hub_region
        )
        self._slots: dict[tuple[Window, str], _HubSlot] = {}
        #: Trace IDs of child batches merged since the last onward batch
        #: was cut — stamped as ``parents`` on the outgoing trace, the
        #: cross-tier edge of the trace tree.
        self._parent_ids: list[str] = []
        #: ``(origin, seq)`` of merged child batches — at-least-once
        #: shipping from the edge may re-send; a duplicate must not be
        #: merged into the hub state twice.
        self._seen_batches: set[tuple[str, int]] = set()
        self.duplicates_dropped = 0
        self.partials_in = 0
        self.partials_out = 0
        #: Ticks the periodic flush was held because onward shipping was
        #: saturated (in-flight window full / breaker open) — hub-level
        #: backpressure: merged state keeps accumulating instead of
        #: piling batches onto a link that cannot take them.
        self.held_ticks = 0
        self._ticker = engine.sim.add_periodic(1.0, self._tick)

    def stop(self) -> None:
        self._ticker.stop()

    # ------------------------------------------------------------------
    def deliver(self, batch: Batch) -> None:
        """Receive a child site's batch (plugged as its delivery target)."""
        if batch.origin:
            key = (batch.origin, batch.seq)
            if key in self._seen_batches:
                self.duplicates_dropped += 1
                return
            self._seen_batches.add(key)
        if batch.trace is not None:
            self._parent_ids.append(batch.trace.trace_id)
        for record in batch.records:
            value = record.value
            if not isinstance(value, PartialAggregate):
                raise TypeError(
                    "hierarchical aggregation requires partial-aggregate "
                    "records (ship_raw_records jobs bypass hubs)"
                )
            self.partials_in += 1
            slot = self._slots.get((value.window, value.key))
            if slot is None:
                slot = self._slots[(value.window, value.key)] = _HubSlot(
                    sites=set()
                )
            if slot.state is None:
                slot.state = value.state
            else:
                slot.state = self.job.aggregate.merge(slot.state, value.state)
            slot.count += value.count
            slot.sites.add(batch.origin or "?")
            if not slot.flush_scheduled:
                slot.flush_scheduled = True
                slot.due = self.engine.sim.now + self.hold
                self.engine.sim.schedule(
                    self.hold, self._flush, (value.window, value.key)
                )

    def _flush(self, slot_key: tuple[Window, str]) -> None:
        slot = self._slots.pop(slot_key, None)
        if slot is None or slot.state is None:  # pragma: no cover
            return
        window, key = slot_key
        merged = Record(
            event_time=window.end,
            key=key,
            value=PartialAggregate(window, key, slot.state, slot.count),
            origin=self.hub_region,
            size_bytes=120.0,
        )
        self.partials_out += 1
        out = self.batcher.offer(merged, self.engine.sim.now)
        if out is not None:
            self._ship(out)

    def _tick(self) -> None:
        if getattr(self.shipping, "saturated", False):
            self.held_ticks += 1
            return
        out = self.batcher.maybe_flush(self.engine.sim.now)
        if out is not None:
            self._ship(out)

    def _ship(self, batch: Batch) -> None:
        if batch.trace is not None and self._parent_ids:
            batch.trace.parents = tuple(self._parent_ids)
            self._parent_ids.clear()
        self.shipping.ship(batch, self._delivered)

    def _delivered(self, batch: Batch) -> None:
        self.on_delivered(batch)

    #: Set by the runtime: where forwarded batches land (global aggregator).
    on_delivered = staticmethod(lambda batch: None)

    # -- checkpoint/restore --------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable hub state: merged slots + batch dedup set."""
        return {
            "seen": sorted([o, s] for (o, s) in self._seen_batches),
            "slots": [
                [w.start, w.end, key, s.state, s.count,
                 sorted(s.sites or ()), s.due]
                for (w, key), s in sorted(
                    self._slots.items(), key=lambda kv: (kv[0][0], kv[0][1])
                )
            ],
            "partials_in": self.partials_in,
            "partials_out": self.partials_out,
        }

    def restore(self, payload: dict) -> None:
        """Rebuild hub state; hold timers re-arm with remaining wait."""
        now = self.engine.sim.now
        self._seen_batches = {(o, s) for o, s in payload["seen"]}
        self.partials_in = payload["partials_in"]
        self.partials_out = payload["partials_out"]
        self._slots = {}
        for start, end, key, state, count, sites, due in payload["slots"]:
            slot_key = (Window(start, end), key)
            self._slots[slot_key] = _HubSlot(
                state=state,
                count=count,
                sites=set(sites),
                flush_scheduled=True,
                due=due,
            )
            self.engine.sim.schedule(
                max(0.0, due - now), self._flush, slot_key
            )

    @property
    def reduction_ratio(self) -> float:
        """Partials merged away by the hub (1 − out/in)."""
        if self.partials_in == 0:
            return 0.0
        return 1.0 - self.partials_out / self.partials_in


class HierarchicalRuntime:
    """Two-level aggregation: sites → hubs → global site.

    ``hubs`` maps each producing site region to its hub region. Hubs need
    at least one deployment VM. Sites whose region *is* a hub still route
    through the hub object (a same-region ship is an intra-DC hop).
    """

    def __init__(
        self,
        engine: SageEngine,
        job: StreamJob,
        hubs: dict[str, str],
        site_shipping_factory,
        hub_shipping_factory,
        per_vm_records_per_s: float = 5000.0,
        hub_hold: float = 2.0,
    ) -> None:
        if job.ship_raw_records:
            raise ValueError("hierarchical aggregation requires partials")
        missing = [s.region for s in job.sites if s.region not in hubs]
        if missing:
            raise ValueError(f"sites without a hub assignment: {missing}")
        self.engine = engine
        self.job = job
        agg_vms = engine.deployment.vms(job.aggregation_region)
        if not agg_vms:
            raise ValueError(
                f"no VMs in aggregation region {job.aggregation_region}"
            )
        self.aggregator = GlobalAggregator(engine, job)
        self.hub_aggregators: dict[str, HubAggregator] = {}
        for hub_region in sorted(set(hubs.values())):
            hub_vms = engine.deployment.vms(hub_region)
            if not hub_vms:
                raise ValueError(f"no VMs in hub region {hub_region}")
            backend = hub_shipping_factory(engine, hub_vms, agg_vms[0])
            hub = HubAggregator(
                engine, job, hub_region, backend, hold=hub_hold
            )
            hub.on_delivered = self.aggregator.deliver
            self.hub_aggregators[hub_region] = hub
        self.sites: dict[str, SiteRuntime] = {}
        for spec in job.sites:
            hub = self.hub_aggregators[hubs[spec.region]]
            src_vms = engine.deployment.vms(spec.region)
            hub_vm = engine.deployment.vms(hub.hub_region)[0]
            backend = site_shipping_factory(engine, src_vms, hub_vm)
            self.sites[spec.region] = SiteRuntime(
                engine,
                job,
                spec,
                backend,
                hub.deliver,
                per_vm_records_per_s=per_vm_records_per_s,
                flow=job.flow,
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        for site in self.sites.values():
            site.start()

    def stop(self) -> None:
        for site in self.sites.values():
            site.stop()
        for hub in self.hub_aggregators.values():
            hub.stop()

    def run_for(self, duration: float) -> None:
        self.start()
        self.engine.run_until(self.engine.sim.now + duration)
        self.stop()
        self.engine.run_until(
            self.engine.sim.now + self.job.finalize_grace + 30.0
        )

    # ------------------------------------------------------------------
    @property
    def results(self):
        return self.aggregator.results

    def latency_stats(self) -> LatencyStats:
        return self.aggregator.latency_stats()

    def backbone_bytes(self) -> float:
        """Bytes the hubs shipped onward (the transcontinental volume)."""
        return sum(h.shipping.bytes_shipped for h in self.hub_aggregators.values())

    def edge_bytes(self) -> float:
        """Bytes the sites shipped to their hubs."""
        return sum(s.shipping.bytes_shipped for s in self.sites.values())

    def records_ingested(self) -> int:
        return sum(s.records_ingested for s in self.sites.values())
