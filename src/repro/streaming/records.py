"""The columnar record plane: batches of records as parallel arrays.

A :class:`RecordBatch` carries one chunk of stream records as four
parallel numpy columns — event time ``t``, ``key_idx`` (indices into a
shared per-batch key table), ``value``, and ``size`` — plus the batch's
``origin`` site. Sources emit one batch per tick, operators transform
whole batches (vectorized where possible), and the windowed aggregator
folds grouped slices — so the per-record Python-object cost of the
legacy plane (one ``Record`` instance, one dict lookup, one method call
per record) collapses into a handful of array operations per chunk.

Semantics are pinned to the per-record plane: a batch is *defined* as
equivalent to the ordered list ``batch.to_records()``, and every
consumer preserves record order, per-record arithmetic (sequential
left-to-right folds), and front-of-chunk admission/backpressure
slicing. The equivalence suite (``tests/test_columnar_equivalence.py``)
asserts identical window results, loss identities, and soak digests
between the two planes for the same seed.

Memory layout:

* ``t``     — float64, event times (non-decreasing within one source
  emission, as with the legacy plane);
* ``key_idx`` — int64 indices into ``keys``, a per-batch tuple of key
  strings (sources with a fixed key universe share one table across
  every batch they emit);
* ``value`` — float64 for numeric streams; ``object`` dtype when a
  source carries arbitrary payloads (``TraceSource``), in which case
  consumers fall back to per-element folds;
* ``size``  — float64 record sizes in bytes.

Slicing (``batch[a:b]``) returns array *views* — deferring a rejected
tail or splitting a backlog chunk never copies record data.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

import numpy as np

from repro.streaming.events import Record

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)


class RecordBatch:
    """One chunk of stream records in columnar form."""

    __slots__ = ("t", "key_idx", "value", "size", "keys", "origin")

    def __init__(
        self,
        t: np.ndarray,
        key_idx: np.ndarray,
        value: np.ndarray,
        size: np.ndarray,
        keys: tuple[str, ...],
        origin: str = "",
    ) -> None:
        self.t = t
        self.key_idx = key_idx
        self.value = value
        self.size = size
        self.keys = keys
        self.origin = origin

    # -- construction --------------------------------------------------
    @classmethod
    def empty(cls, origin: str = "") -> "RecordBatch":
        return cls(_EMPTY_F, _EMPTY_I, _EMPTY_F, _EMPTY_F, (), origin)

    @classmethod
    def from_records(
        cls, records: list[Record], origin: str | None = None
    ) -> "RecordBatch":
        """Columnarize a record list (the legacy-plane bridge).

        ``value`` stays a float64 column only when every value is a
        plain float; any other payload switches the column to object
        dtype so ``to_records`` round-trips values verbatim.
        """
        n = len(records)
        if n == 0:
            return cls.empty(origin or "")
        t = np.fromiter((r.event_time for r in records), np.float64, n)
        size = np.fromiter((r.size_bytes for r in records), np.float64, n)
        table: dict[str, int] = {}
        key_idx = np.fromiter(
            (
                table.setdefault(r.key, len(table))
                for r in records
            ),
            np.int64,
            n,
        )
        values = [r.value for r in records]
        if all(type(v) is float for v in values):
            value = np.asarray(values, dtype=np.float64)
        else:
            value = np.empty(n, dtype=object)
            value[:] = values
        return cls(
            t,
            key_idx,
            value,
            size,
            tuple(table),
            records[0].origin if origin is None else origin,
        )

    # -- sequence protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.t)

    def __bool__(self) -> bool:
        return len(self.t) > 0

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return RecordBatch(
                self.t[idx],
                self.key_idx[idx],
                self.value[idx],
                self.size[idx],
                self.keys,
                self.origin,
            )
        i = int(idx)
        return Record(
            event_time=self.t[i].item(),
            key=self.keys[self.key_idx[i]],
            value=(
                self.value[i]
                if self.value.dtype == object
                else self.value[i].item()
            ),
            origin=self.origin,
            size_bytes=self.size[i].item(),
        )

    def __add__(self, other: "RecordBatch") -> "RecordBatch":
        if not isinstance(other, RecordBatch):
            return NotImplemented
        if not len(self):
            return other
        if not len(other):
            return self
        if self.keys == other.keys:
            keys = self.keys
            other_idx = other.key_idx
        else:
            lookup = {k: i for i, k in enumerate(self.keys)}
            remap = np.empty(len(other.keys), dtype=np.int64)
            for j, key in enumerate(other.keys):
                remap[j] = lookup.setdefault(key, len(lookup))
            keys = tuple(lookup)
            other_idx = remap[other.key_idx]
        if self.value.dtype == object or other.value.dtype == object:
            value = np.empty(len(self) + len(other), dtype=object)
            value[: len(self)] = self.value
            value[len(self):] = other.value
        else:
            value = np.concatenate((self.value, other.value))
        return RecordBatch(
            np.concatenate((self.t, other.t)),
            np.concatenate((self.key_idx, other_idx)),
            value,
            np.concatenate((self.size, other.size)),
            keys,
            self.origin or other.origin,
        )

    # -- transforms ----------------------------------------------------
    def where(self, mask: np.ndarray) -> "RecordBatch":
        """Records where ``mask`` is True (order preserved)."""
        return RecordBatch(
            self.t[mask],
            self.key_idx[mask],
            self.value[mask],
            self.size[mask],
            self.keys,
            self.origin,
        )

    def with_key(self, key: str) -> "RecordBatch":
        """Rekey every record to one key (zero-copy on data columns)."""
        return RecordBatch(
            self.t,
            np.zeros(len(self.t), dtype=np.int64),
            self.value,
            self.size,
            (key,),
            self.origin,
        )

    def split(self, chunk_records: int) -> Iterator["RecordBatch"]:
        """Yield views of at most ``chunk_records`` records each."""
        n = len(self)
        if n <= chunk_records:
            yield self
            return
        for start in range(0, n, chunk_records):
            yield self[start:start + chunk_records]

    # -- record materialization ----------------------------------------
    def to_records(self) -> list[Record]:
        """The equivalent legacy record list (bit-identical fields)."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[Record]:
        t, key_idx, value, size = self.t, self.key_idx, self.value, self.size
        keys, origin = self.keys, self.origin
        is_obj = value.dtype == object
        for i in range(len(t)):
            yield Record(
                event_time=t[i].item(),
                key=keys[key_idx[i]],
                value=value[i] if is_obj else value[i].item(),
                origin=origin,
                size_bytes=size[i].item(),
            )

    # -- introspection -------------------------------------------------
    @property
    def first_event_time(self) -> float:
        """Event time of the first (oldest-queued) record."""
        return float(self.t[0])

    @property
    def total_bytes(self) -> float:
        return float(self.size.sum())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecordBatch(n={len(self)}, keys={len(self.keys)}, "
            f"origin={self.origin!r})"
        )


class ChunkedBacklog:
    """A site ingest backlog holding :class:`RecordBatch` chunks.

    Presents *record-count* semantics (``len`` is records, not chunks)
    so overload policies and watermark logic read it exactly like the
    legacy ``deque[Record]``: ``extend`` appends at the tail,
    ``pop_upto``/``trim_to`` consume/drop from the head, preserving
    record order across chunk boundaries. Oversized batches are split
    into chunks of at most ``chunk_records`` on the way in.
    """

    __slots__ = ("chunk_records", "_chunks", "_count")

    def __init__(self, chunk_records: int = 4096) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.chunk_records = chunk_records
        self._chunks: deque[RecordBatch] = deque()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def extend(self, records: "RecordBatch | Iterable[Record]") -> None:
        if not isinstance(records, RecordBatch):
            records = RecordBatch.from_records(list(records))
        n = len(records)
        if not n:
            return
        for chunk in records.split(self.chunk_records):
            self._chunks.append(chunk)
        self._count += n

    def pop_upto(self, budget: int) -> list[RecordBatch]:
        """Remove and return up to ``budget`` records from the head.

        The final chunk is split when the budget lands inside it, so
        exactly ``min(budget, len(self))`` records are returned.
        """
        out: list[RecordBatch] = []
        taken = 0
        chunks = self._chunks
        while chunks and taken < budget:
            head = chunks[0]
            room = budget - taken
            if len(head) <= room:
                out.append(chunks.popleft())
                taken += len(head)
            else:
                out.append(head[:room])
                chunks[0] = head[room:]
                taken = budget
        self._count -= taken
        return out

    def trim_to(self, bound: int) -> int:
        """Drop oldest records until at most ``bound`` remain."""
        drop = self._count - bound
        if drop <= 0:
            return 0
        remaining = drop
        chunks = self._chunks
        while remaining > 0:
            head = chunks[0]
            if len(head) <= remaining:
                chunks.popleft()
                remaining -= len(head)
            else:
                chunks[0] = head[remaining:]
                remaining = 0
        self._count = bound
        return drop

    @property
    def first_event_time(self) -> float | None:
        """Event time of the oldest backlogged record."""
        return self._chunks[0].first_event_time if self._chunks else None
