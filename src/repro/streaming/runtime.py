"""The geo-streaming runtime: sites, shipping, global aggregation.

Execution model per site, every tick (1 s of virtual time):

1. drain the ingest backlog through the site's operator chain, limited by
   the site's processing capacity (records/s × VMs) — overload therefore
   turns into queueing latency, exactly like a real stream processor;
2. advance the event-time watermark and close finished windows into
   partial-aggregate records;
3. offer partials to the site's batcher; cut batches travel to the
   aggregation site through the configured shipping backend.

The global aggregator merges partials per (window, key) and emits each
result ``finalize_grace`` seconds after the first partial for its window
arrived, recording end-to-end latency against the window's event-time
close. Late partials are merged if the result has not been emitted yet,
and counted otherwise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.engine import SageEngine
from repro.streaming.batching import Batcher
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.events import Batch, Record
from repro.streaming.operators import PartialAggregate, WindowedAggregator
from repro.streaming.windows import Window


@dataclass(frozen=True)
class WindowResult:
    """One emitted global aggregate."""

    window: Window
    key: str
    value: object
    record_count: int
    sites: int
    emitted_at: float

    @property
    def latency(self) -> float:
        """End-to-end: window close (event time) → global emission."""
        return self.emitted_at - self.window.end


@dataclass
class LatencyStats:
    """Summary of result latencies.

    An empty summary (no results emitted) is falsy and carries NaN
    percentiles; test with ``if stats:`` or format with :meth:`describe`
    instead of printing raw fields, so ``nan`` never leaks into reports.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        """The no-results sentinel (falsy; all percentiles NaN)."""
        return cls(0, *[float("nan")] * 5)

    @classmethod
    def from_results(cls, results: list[WindowResult]) -> "LatencyStats":
        if not results:
            return cls.empty()
        lat = np.array([r.latency for r in results])
        if lat.size == 1:
            # Degenerate distribution: every quantile is the one sample.
            value = float(lat[0])
            return cls(1, value, value, value, value, value)
        return cls(
            count=len(lat),
            mean=float(lat.mean()),
            p50=float(np.percentile(lat, 50)),
            p95=float(np.percentile(lat, 95)),
            p99=float(np.percentile(lat, 99)),
            max=float(lat.max()),
        )

    def __bool__(self) -> bool:
        return self.count > 0

    def describe(self) -> str:
        """One-line human summary; safe on the empty sentinel."""
        if not self:
            return "latency: no results emitted"
        return (
            f"latency p50 {self.p50:.1f}s p95 {self.p95:.1f}s "
            f"p99 {self.p99:.1f}s max {self.max:.1f}s"
        )


class SiteRuntime:
    """One producing site: ingest → operators → windows → batcher → ship."""

    def __init__(
        self,
        engine: SageEngine,
        job: StreamJob,
        spec: SiteSpec,
        shipping,
        deliver: Callable[[Batch], None],
        per_vm_records_per_s: float = 5000.0,
        tick: float = 1.0,
    ) -> None:
        self.engine = engine
        self.job = job
        self.spec = spec
        self.shipping = shipping
        self.deliver = deliver
        self.tick = tick
        vms = engine.deployment.vms(spec.region)
        if not vms:
            raise ValueError(f"no VMs deployed in site region {spec.region}")
        self.vms = vms[: spec.n_vms] if spec.n_vms else vms
        self.capacity_per_tick = per_vm_records_per_s * len(self.vms) * tick
        self.aggregator = WindowedAggregator(job.windows, job.aggregate)
        self.batcher = Batcher(job.batch_policy_factory(), origin=spec.region)
        self._backlog: deque[Record] = deque()
        self._watermark = -float("inf")
        self.records_ingested = 0
        self.records_processed = 0
        self.max_backlog = 0
        self._task = None
        obs = engine.observer
        self._obs_on = obs.enabled
        site = spec.region
        self._m_ingested = obs.counter(
            "stream_records_ingested_total", site=site
        )
        self._m_processed = obs.counter(
            "stream_records_processed_total", site=site
        )
        self._m_backlog = obs.gauge("stream_backlog_depth", site=site)
        self._m_wm_lag = obs.gauge(
            "stream_watermark_lag_seconds", site=site
        )
        #: Estimated time for the current backlog to drain at capacity —
        #: the site's queueing latency contribution this tick.
        self._m_queue = obs.histogram(
            "stream_queue_latency_seconds", site=site
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        for source in self.spec.sources:
            source.attach(self.engine.sim, self.spec.region, self.ingest)
            source.start()
        self._task = self.engine.sim.add_periodic(self.tick, self._on_tick)

    def stop_sources(self) -> None:
        """Stop ingestion but keep the tick loop running.

        Used for clean drains: with sources quiet but ticks alive, the
        watermark keeps advancing, every open window closes, and the
        batcher flushes — so "all ingested records counted" can be
        asserted exactly (the fault-recovery experiments rely on it).
        """
        for source in self.spec.sources:
            source.stop()

    def stop(self) -> None:
        self.stop_sources()
        if self._task is not None:
            self._task.stop()
            self._task = None

    def ingest(self, records: list[Record]) -> None:
        self.records_ingested += len(records)
        self._backlog.extend(records)
        self.max_backlog = max(self.max_backlog, len(self._backlog))
        if self._obs_on:
            self._m_ingested.inc(len(records))

    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        now = self.engine.sim.now
        budget = int(self.capacity_per_tick)
        processed = 0
        while self._backlog and processed < budget:
            record = self._backlog.popleft()
            processed += 1
            self._process(record, now)
        self.records_processed += processed
        # The watermark follows the *processed* stream: under overload it
        # is held back by the oldest unprocessed record, so backlog delay
        # shows up as extra window latency (windows close later).
        watermark = now - self.job.watermark_lag
        if self._backlog:
            watermark = min(watermark, self._backlog[0].event_time)
        watermark = max(watermark, self._watermark)
        self._watermark = watermark
        partials = self.aggregator.advance_watermark(watermark)
        if self._obs_on:
            self._m_processed.inc(processed)
            self._m_backlog.set(len(self._backlog))
            self._m_wm_lag.set(now - watermark)
            self._m_queue.observe(
                len(self._backlog) / self.capacity_per_tick * self.tick
            )
            engine_obs = self.engine.observer
            for partial in partials:
                pa = partial.value
                engine_obs.record_span(
                    "window.site_close",
                    pa.window.start,
                    now,
                    site=self.spec.region,
                    key=pa.key,
                    window_end=pa.window.end,
                    records=pa.count,
                )
        for partial in partials:
            self._emit(partial, now)
        out = self.batcher.maybe_flush(now)
        if out is not None:
            self._ship(out)

    def _process(self, record: Record, now: float) -> None:
        pending = [record]
        for op in self.spec.operators:
            nxt: list[Record] = []
            for r in pending:
                nxt.extend(op.process(r))
            pending = nxt
            if not pending:
                return
        for r in pending:
            if self.job.ship_raw_records:
                self._emit(r, now)
            else:
                self.aggregator.process(r)

    def _emit(self, record: Record, now: float) -> None:
        batch = self.batcher.offer(record, now)
        if batch is not None:
            self._ship(batch)

    def _ship(self, batch: Batch) -> None:
        self.shipping.ship(batch, self.deliver)

    @property
    def backlog(self) -> int:
        return len(self._backlog)


class _PendingWindowKey:
    __slots__ = ("state", "count", "sites", "emit_scheduled")

    def __init__(self) -> None:
        self.state = None
        self.count = 0
        self.sites: set[str] = set()
        self.emit_scheduled = False


class GlobalAggregator:
    """Merges per-site partials into global window results."""

    def __init__(self, engine: SageEngine, job: StreamJob) -> None:
        self.engine = engine
        self.job = job
        self.results: list[WindowResult] = []
        self.late_partials = 0
        self.raw_records = 0
        #: Batches discarded as duplicates of an already-merged delivery.
        self.duplicates_dropped = 0
        self._pending: dict[tuple[Window, str], _PendingWindowKey] = {}
        self._emitted: set[tuple[Window, str]] = set()
        #: ``(origin, seq)`` of every batch already merged — the receiver
        #: half of at-least-once delivery: a re-sent or duplicated batch
        #: must not double-count any window.
        self._seen_batches: set[tuple[str, int]] = set()
        #: Aggregator-side windowing for jobs that ship raw records.
        self._raw_aggregator = WindowedAggregator(job.windows, job.aggregate)
        obs = engine.observer
        self._obs_on = obs.enabled
        self._m_results = obs.counter("stream_results_total")
        self._m_late = obs.counter("stream_late_partials_total")
        self._m_latency = obs.histogram("stream_window_latency_seconds")
        self._m_dups = obs.counter("agg_duplicates_dropped_total")

    def deliver(self, batch: Batch) -> None:
        now = self.engine.sim.now
        if batch.origin:
            key = (batch.origin, batch.seq)
            if key in self._seen_batches:
                self.duplicates_dropped += 1
                self._m_dups.inc()
                return
            self._seen_batches.add(key)
        for record in batch.records:
            value = record.value
            if isinstance(value, PartialAggregate):
                self._merge_partial(record, value, batch.origin, now)
            else:
                self.raw_records += 1
                self._raw_aggregator.process(record)
        if self.raw_records:
            watermark = now - self.job.watermark_lag - self.job.finalize_grace
            for partial in self._raw_aggregator.advance_watermark(watermark):
                pa = partial.value
                assert isinstance(pa, PartialAggregate)
                self._finalize_now(pa.window, pa.key, pa.state, pa.count, 1, now)

    def _merge_partial(
        self, record: Record, pa: PartialAggregate, origin: str, now: float
    ) -> None:
        slot = (pa.window, pa.key)
        if slot in self._emitted:
            self.late_partials += 1
            self._m_late.inc()
            return
        pending = self._pending.get(slot)
        if pending is None:
            pending = self._pending[slot] = _PendingWindowKey()
        if pending.state is None:
            pending.state = pa.state
        else:
            pending.state = self.job.aggregate.merge(pending.state, pa.state)
        pending.count += pa.count
        pending.sites.add(origin or "?")
        if not pending.emit_scheduled:
            pending.emit_scheduled = True
            self.engine.sim.schedule(
                self.job.finalize_grace, self._finalize, slot
            )

    def _finalize(self, slot: tuple[Window, str]) -> None:
        pending = self._pending.pop(slot, None)
        if pending is None or pending.state is None:  # pragma: no cover
            return
        window, key = slot
        self._finalize_now(
            window,
            key,
            pending.state,
            pending.count,
            len(pending.sites),
            self.engine.sim.now,
        )

    def _finalize_now(self, window, key, state, count, sites, now) -> None:
        self._emitted.add((window, key))
        self.results.append(
            WindowResult(
                window=window,
                key=key,
                value=self.job.aggregate.result(state),
                record_count=count,
                sites=sites,
                emitted_at=now,
            )
        )
        if self._obs_on:
            self._m_results.inc()
            self._m_latency.observe(now - window.end)
            # The span runs from the window's event-time close to the
            # global emission: its duration IS the end-to-end latency.
            self.engine.observer.record_span(
                "window.global_emit",
                window.end,
                now,
                key=key,
                window_start=window.start,
                records=count,
                sites=sites,
            )

    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_results(self.results)


class GeoStreamRuntime:
    """Run a :class:`StreamJob` over a SageEngine deployment."""

    def __init__(
        self,
        engine: SageEngine,
        job: StreamJob,
        shipping_factory,
        per_vm_records_per_s: float = 5000.0,
    ) -> None:
        self.engine = engine
        self.job = job
        agg_vms = engine.deployment.vms(job.aggregation_region)
        if not agg_vms:
            raise ValueError(
                f"no VMs in aggregation region {job.aggregation_region}"
            )
        self.agg_vm = agg_vms[0]
        self.aggregator = GlobalAggregator(engine, job)
        self.sites: dict[str, SiteRuntime] = {}
        for spec in job.sites:
            src_vms = engine.deployment.vms(spec.region)
            backend = shipping_factory(engine, src_vms, self.agg_vm)
            self.sites[spec.region] = SiteRuntime(
                engine,
                job,
                spec,
                backend,
                self.aggregator.deliver,
                per_vm_records_per_s=per_vm_records_per_s,
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        for site in self.sites.values():
            site.start()

    def stop(self) -> None:
        for site in self.sites.values():
            site.stop()

    def run_for(self, duration: float) -> None:
        """Convenience: start, run, stop, and let in-flight work land."""
        self.start()
        self.engine.run_until(self.engine.sim.now + duration)
        self.stop()
        # Allow shipped batches and grace timers to complete.
        self.engine.run_until(
            self.engine.sim.now + self.job.finalize_grace + 30.0
        )

    # ------------------------------------------------------------------
    @property
    def results(self) -> list[WindowResult]:
        return self.aggregator.results

    def latency_stats(self) -> LatencyStats:
        return self.aggregator.latency_stats()

    def wan_bytes(self) -> float:
        return sum(site.shipping.bytes_shipped for site in self.sites.values())

    def records_ingested(self) -> int:
        return sum(site.records_ingested for site in self.sites.values())

    def throughput(self, duration: float) -> float:
        """Processed records per second of virtual time."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return (
            sum(s.records_processed for s in self.sites.values()) / duration
        )
