"""The geo-streaming runtime: sites, shipping, global aggregation.

Execution model per site, every tick (1 s of virtual time):

1. drain the ingest backlog through the site's operator chain, limited by
   the site's processing capacity (records/s × VMs) — overload therefore
   turns into queueing latency, exactly like a real stream processor;
2. advance the event-time watermark and close finished windows into
   partial-aggregate records;
3. offer partials to the site's batcher; cut batches travel to the
   aggregation site through the configured shipping backend.

The global aggregator merges partials per (window, key) and emits each
result ``finalize_grace`` seconds after the first partial for its window
arrived, recording end-to-end latency against the window's event-time
close. Late partials are merged if the result has not been emitted yet,
and counted otherwise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.config import RecordPlaneConfig, default_record_plane
from repro.core.engine import SageEngine
from repro.flow.checkpoint import Checkpointer, CheckpointStore
from repro.flow.credits import CreditGate
from repro.flow.policy import FlowConfig, make_policy
from repro.obs.lineage import SiteLeg, WindowLineage
from repro.simulation.engine import PeriodicGroup
from repro.streaming.batching import Batcher
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.events import Batch, Record
from repro.streaming.operators import (
    PartialAggregate,
    PerRecordAdapter,
    WindowedAggregator,
)
from repro.streaming.records import ChunkedBacklog, RecordBatch
from repro.streaming.windows import Window


@dataclass(frozen=True)
class WindowResult:
    """One emitted global aggregate."""

    window: Window
    key: str
    value: object
    record_count: int
    sites: int
    emitted_at: float
    #: Causal provenance (which sites/links/attempts produced this
    #: result, with per-hop timings); ``None`` only for results built
    #: before lineage existed or by hand in tests.
    lineage: WindowLineage | None = None
    #: Leader-lease epoch the emitting aggregator served under (0 when
    #: no control plane is armed). The split-brain/exactly-once audit
    #: uses it to attribute every window to one leadership term.
    epoch: int = 0
    #: Control-plane config version active at emission (0 = the boot
    #: config). Lets the auditor attribute each window to the exact
    #: configuration it ran under across live reconfigurations.
    config_version: int = 0

    @property
    def latency(self) -> float:
        """End-to-end: window close (event time) → global emission."""
        return self.emitted_at - self.window.end


@dataclass
class LatencyStats:
    """Summary of result latencies.

    An empty summary (no results emitted) is falsy and carries NaN
    percentiles; test with ``if stats:`` or format with :meth:`describe`
    instead of printing raw fields, so ``nan`` never leaks into reports.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        """The no-results sentinel (falsy; all percentiles NaN)."""
        return cls(0, *[float("nan")] * 5)

    @classmethod
    def from_results(cls, results: list[WindowResult]) -> "LatencyStats":
        if not results:
            return cls.empty()
        lat = np.array([r.latency for r in results])
        if lat.size == 1:
            # Degenerate distribution: every quantile is the one sample.
            value = float(lat[0])
            return cls(1, value, value, value, value, value)
        return cls(
            count=len(lat),
            mean=float(lat.mean()),
            p50=float(np.percentile(lat, 50)),
            p95=float(np.percentile(lat, 95)),
            p99=float(np.percentile(lat, 99)),
            max=float(lat.max()),
        )

    def __bool__(self) -> bool:
        return self.count > 0

    def describe(self) -> str:
        """One-line human summary; safe on the empty sentinel."""
        if not self:
            return "latency: no results emitted"
        return (
            f"latency p50 {self.p50:.1f}s p95 {self.p95:.1f}s "
            f"p99 {self.p99:.1f}s max {self.max:.1f}s"
        )


class SiteRuntime:
    """One producing site: ingest → operators → windows → batcher → ship."""

    def __init__(
        self,
        engine: SageEngine,
        job: StreamJob,
        spec: SiteSpec,
        shipping,
        deliver: Callable[[Batch], None],
        per_vm_records_per_s: float = 5000.0,
        tick: float = 1.0,
        flow: FlowConfig | None = None,
        record_plane: RecordPlaneConfig | None = None,
    ) -> None:
        self.engine = engine
        self.job = job
        self.spec = spec
        self.shipping = shipping
        self.deliver = deliver
        self.tick = tick
        self.flow = flow
        self.policy = make_policy(flow) if flow is not None else None
        if record_plane is None:
            record_plane = (
                job.record_plane
                if job.record_plane is not None
                else default_record_plane()
            )
        self.record_plane = record_plane
        self._columnar = record_plane.columnar
        vms = engine.deployment.vms(spec.region)
        if not vms:
            raise ValueError(f"no VMs deployed in site region {spec.region}")
        self.vms = vms[: spec.n_vms] if spec.n_vms else vms
        self.capacity_per_tick = per_vm_records_per_s * len(self.vms) * tick
        self.aggregator = WindowedAggregator(job.windows, job.aggregate)
        self.batcher = Batcher(job.batch_policy_factory(), origin=spec.region)
        #: Operator chain as executed: on the columnar plane, anything
        #: lacking process_batch is wrapped in a PerRecordAdapter.
        if self._columnar:
            self._ops = [
                op if hasattr(op, "process_batch") else PerRecordAdapter(op)
                for op in spec.operators
            ]
        else:
            self._ops = list(spec.operators)
        self._backlog: "deque[Record] | ChunkedBacklog" = (
            ChunkedBacklog(record_plane.chunk_records)
            if self._columnar
            else deque()
        )
        self._watermark = -float("inf")
        self.records_ingested = 0
        self.records_processed = 0
        self.max_backlog = 0
        #: Overload accounting (all policies; zero when flow is off).
        self.records_shed = 0
        self.blocked_ticks = 0
        self.degraded_ticks = 0
        self.degrade_transitions = 0
        #: Batches kept for replay after an aggregator crash — enabled
        #: by the runtime when checkpointing is on, pruned per checkpoint.
        self.retain_batches = False
        self._retained: dict[int, Batch] = {}
        #: Optional ingress admission gate (token bucket) installed by
        #: the control plane; rejects records at the door *before* the
        #: overload policy spends pipeline resources on them.
        self.admission = None
        self.records_admission_rejected = 0
        self._task = None
        obs = engine.observer
        self._obs_on = obs.enabled
        site = spec.region
        #: Ingest-buffer credits: the ``block`` policy grants sources
        #: exactly the free slots; other policies leave the gate idle.
        self.credits = CreditGate(
            flow.max_backlog if flow is not None else None,
            gauge=(
                obs.gauge("flow_ingest_credits", site=site)
                if self._obs_on
                else None
            ),
        )
        self._m_ingested = obs.counter(
            "stream_records_ingested_total", site=site
        )
        self._m_processed = obs.counter(
            "stream_records_processed_total", site=site
        )
        self._m_backlog = obs.gauge("stream_backlog_depth", site=site)
        self._m_wm_lag = obs.gauge(
            "stream_watermark_lag_seconds", site=site
        )
        #: Estimated time for the current backlog to drain at capacity —
        #: the site's queueing latency contribution this tick.
        self._m_queue = obs.histogram(
            "stream_queue_latency_seconds", site=site
        )
        self._m_backlog_peak = obs.gauge("stream_backlog_peak", site=site)
        self._m_shed = obs.counter("flow_records_shed_total", site=site)
        self._m_admission = obs.counter("admission_rejected_total", site=site)
        self._m_blocked = obs.counter("flow_blocked_ticks_total", site=site)
        self._m_degraded = obs.counter("flow_degraded_ticks_total", site=site)
        self._m_degrade_active = obs.gauge("flow_degrade_active", site=site)
        #: Stage timers fire at tick granularity (cheap even as no-ops);
        #: per-operator timers are per record, so they only exist when
        #: observability is on — ``None`` keeps the disabled ``_process``
        #: at its uninstrumented cost.
        self._st_drain = obs.stage("site.drain")
        self._st_window = obs.stage("site.window")
        self._st_batch = obs.stage("site.batch")
        self._st_ship = obs.stage("ship.send")
        self._mt_records = obs.meter("records")
        self._op_stages = (
            [
                # Adapter-wrapped operators keep their inner type's
                # stage label so profiles read the same on both planes.
                (op, obs.stage(f"op.{type(getattr(op, 'inner', op)).__name__}"))
                for op in self._ops
            ]
            if self._obs_on and self._ops
            else None
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        # Batch event scheduling: on the columnar plane all of a site's
        # same-tick sources plus the site tick share ONE periodic queue
        # event (fired in registration order — identical to the stable
        # same-timestamp ordering of separate events), so a site costs
        # one dispatch per tick instead of one per source.
        sim = self.engine.sim
        group = PeriodicGroup(sim, self.tick) if self._columnar else None
        for source in self.spec.sources:
            source.attach(
                sim,
                self.spec.region,
                self.ingest,
                batch_default=self._columnar,
            )
            if group is not None and source.tick == self.tick:
                source.start(schedule=group.add)
            else:
                source.start()
        if group is not None:
            self._task = group.add(self._on_tick)
        else:
            self._task = sim.add_periodic(self.tick, self._on_tick)

    def stop_sources(self, drain: bool = False) -> None:
        """Stop ingestion but keep the tick loop running.

        Used for clean drains: with sources quiet but ticks alive, the
        watermark keeps advancing, every open window closes, and the
        batcher flushes — so "all ingested records counted" can be
        asserted exactly (the fault-recovery experiments rely on it).
        With ``drain``, sources with deferred records (``block``) keep
        offering them until admitted instead of freezing the pending
        buffer — and with it the site watermark — in place.
        """
        for source in self.spec.sources:
            source.stop(drain=drain)

    def stop(self) -> None:
        self.stop_sources()
        if self._task is not None:
            self._task.stop()
            self._task = None

    def ingest(self, records: list[Record]) -> int:
        """Offer records to the site; returns how many were consumed.

        Under the ``block`` policy fewer than offered may be consumed —
        sources defer the rejected tail. Without a flow config (legacy)
        or under ``shed``/``degrade`` everything is consumed (the latter
        two bound the buffer internally, counting what they drop).

        With an admission gate armed, records the token bucket rejects
        are *terminally dropped at the door* (cheap, before any pipeline
        work) and still count as consumed: ``records_ingested`` includes
        them, and ``records_admission_rejected`` explains them on the
        loss-identity side. The gate rejects the *front* of the chunk so
        whatever the overload policy then defers remains a contiguous
        tail — sources treat the return value as a consumed prefix.
        """
        rejected = 0
        if self.admission is not None and records:
            saturated = (
                self.flow is not None
                and len(self._backlog) >= self.flow.max_backlog
            )
            allowed = self.admission.admit(
                len(records), self.engine.sim.now, saturated=saturated
            )
            rejected = len(records) - allowed
            if rejected:
                self.records_admission_rejected += rejected
                if self._obs_on:
                    self._m_admission.inc(rejected)
                records = records[rejected:]
        if self.policy is None:
            self._backlog.extend(records)
            accepted = len(records)
        else:
            accepted = self.policy.admit(self, records)
        self.records_ingested += accepted + rejected
        if len(self._backlog) > self.max_backlog:
            self.max_backlog = len(self._backlog)
            if self._obs_on:
                self._m_backlog_peak.set(self.max_backlog)
        if self._obs_on and (accepted or rejected):
            self._m_ingested.inc(accepted + rejected)
        return accepted + rejected

    # -- overload-policy hooks (called by repro.flow.policy) -----------
    def count_shed(self, n: int) -> None:
        self.records_shed += n
        if self._obs_on:
            self._m_shed.inc(n)

    def count_blocked_tick(self) -> None:
        self.blocked_ticks += 1
        if self._obs_on:
            self._m_blocked.inc()

    def count_degraded_tick(self) -> None:
        self.degraded_ticks += 1
        if self._obs_on:
            self._m_degraded.inc()

    def count_degrade(self, active: bool) -> None:
        self.degrade_transitions += 1
        if self._obs_on:
            self._m_degrade_active.set(1 if active else 0)

    @property
    def flow_rng(self) -> np.random.Generator:
        """Named RNG stream for sampling decisions (deterministic)."""
        return self.engine.sim.rngs.get(f"flow/{self.spec.region}")

    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        now = self.engine.sim.now
        budget = int(self.capacity_per_tick)
        if self.policy is not None:
            budget = self.policy.drain_budget(self, budget)
        processed = 0
        with self._st_drain:
            if self._columnar:
                for chunk in self._backlog.pop_upto(budget):
                    processed += len(chunk)
                    self._process_batch(chunk, now)
            else:
                while self._backlog and processed < budget:
                    record = self._backlog.popleft()
                    processed += 1
                    self._process(record, now)
        self.records_processed += processed
        if processed:
            # Freed ingest slots return to the credit pool (no-op for
            # policies that never acquire).
            self.credits.release(processed)
        # The watermark follows the *processed* stream: under overload it
        # is held back by the oldest unprocessed record, so backlog delay
        # shows up as extra window latency (windows close later).
        watermark = now - self.job.watermark_lag
        if self._backlog:
            oldest_backlogged = (
                self._backlog.first_event_time
                if self._columnar
                else self._backlog[0].event_time
            )
            watermark = min(watermark, oldest_backlogged)
        for source in self.spec.sources:
            oldest = source.oldest_pending_time
            if oldest is not None:
                # Records deferred by admission control hold the
                # watermark exactly like backlogged ones: deferral must
                # surface as latency, never as late-drops.
                watermark = min(watermark, oldest)
        watermark = max(watermark, self._watermark)
        self._watermark = watermark
        with self._st_window:
            partials = self.aggregator.advance_watermark(watermark)
        if self._obs_on:
            self._mt_records.mark(processed)
            self._m_processed.inc(processed)
            self._m_backlog.set(len(self._backlog))
            self._m_wm_lag.set(now - watermark)
            self._m_queue.observe(
                len(self._backlog) / self.capacity_per_tick * self.tick
            )
            engine_obs = self.engine.observer
            for partial in partials:
                pa = partial.value
                engine_obs.record_span(
                    "window.site_close",
                    pa.window.start,
                    now,
                    site=self.spec.region,
                    key=pa.key,
                    window_end=pa.window.end,
                    records=pa.count,
                )
        with self._st_batch:
            for cut in self.batcher.offer_many(partials, now):
                self._ship(cut)
            if self.policy is None or self.policy.flush_allowed(self):
                out = self.batcher.maybe_flush(now)
                if out is not None:
                    self._ship(out)

    def _process(self, record: Record, now: float) -> None:
        pending = [record]
        if self._op_stages is None:
            for op in self._ops:
                nxt: list[Record] = []
                for r in pending:
                    nxt.extend(op.process(r))
                pending = nxt
                if not pending:
                    return
        else:
            for op, stage in self._op_stages:
                with stage:
                    nxt = []
                    for r in pending:
                        nxt.extend(op.process(r))
                pending = nxt
                if not pending:
                    return
        for r in pending:
            if self.job.ship_raw_records:
                self._emit(r, now)
            else:
                self.aggregator.process(r)

    def _process_batch(self, batch: RecordBatch, now: float) -> None:
        """Columnar drain: one backlog chunk through the operator chain
        and into the windowed aggregator (or the batcher, for raw-record
        shipping jobs)."""
        if self._op_stages is None:
            for op in self._ops:
                batch = op.process_batch(batch)
                if not len(batch):
                    return
        else:
            for op, stage in self._op_stages:
                with stage:
                    batch = op.process_batch(batch)
                if not len(batch):
                    return
        if self.job.ship_raw_records:
            for record in batch.iter_records():
                self._emit(record, now)
        else:
            self.aggregator.process_batch(batch)

    def _emit(self, record: Record, now: float) -> None:
        batch = self.batcher.offer(record, now)
        if batch is not None:
            self._ship(batch)

    def _ship(self, batch: Batch) -> None:
        if self.retain_batches:
            self._retained[batch.seq] = batch
        with self._st_ship:
            self.shipping.ship(batch, self.deliver)

    @property
    def backlog(self) -> int:
        return len(self._backlog)

    @property
    def retained_batches(self) -> int:
        return len(self._retained)

    # -- crash-recovery support ----------------------------------------
    def prune_retained(self, covered_seqs) -> int:
        """Forget retained batches a checkpoint's seen-set covers.

        Once the aggregator has durably recorded ``(origin, seq)`` as
        merged, this site will never be asked to replay that batch.
        """
        before = len(self._retained)
        for seq in list(self._retained):
            if seq in covered_seqs:
                del self._retained[seq]
        return before - len(self._retained)

    def replay_retained(self) -> int:
        """Re-ship every retained batch (after an aggregator restart).

        Replays overlap whatever the at-least-once layer still has in
        flight; the aggregator's ``(origin, seq)`` dedup absorbs the
        duplicates, so replaying everything unpruned is always safe.
        """
        for seq in sorted(self._retained):
            self.shipping.ship(self._retained[seq], self.deliver)
        return len(self._retained)

    @property
    def watermark(self) -> float:
        """Current event-time watermark (``-inf`` before the first tick).

        Monotonically non-decreasing by contract — the SLO auditor polls
        this to catch any regression.
        """
        return self._watermark

    # -- checkpoint/restore --------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable window state (backlog stays at the source
        of truth: retained batches + at-least-once shipping)."""
        return {
            "watermark": (
                None
                if self._watermark == -float("inf")
                else self._watermark
            ),
            "aggregator": self.aggregator.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        wm = payload["watermark"]
        self._watermark = -float("inf") if wm is None else wm
        self.aggregator.restore(payload["aggregator"])

    def restart(self) -> None:
        """Resume a stopped site; peak-backlog stats start afresh."""
        self.max_backlog = len(self._backlog)
        if self._obs_on:
            self._m_backlog_peak.set(self.max_backlog)
        for source in self.spec.sources:
            if not source.running and source.sink is not None:
                source.start()
        if self._task is None:
            self._task = self.engine.sim.add_periodic(self.tick, self._on_tick)


class _PendingWindowKey:
    __slots__ = ("state", "count", "sites", "emit_scheduled", "due", "legs")

    def __init__(self) -> None:
        self.state = None
        self.count = 0
        self.sites: set[str] = set()
        self.emit_scheduled = False
        #: Virtual time the finalize timer fires — checkpointed so a
        #: restored aggregator re-arms the timer with the remaining wait.
        self.due = 0.0
        #: Per-origin lineage legs, folded from the traces of every
        #: batch that delivered a partial for this (window, key).
        self.legs: dict[str, SiteLeg] = {}


class GlobalAggregator:
    """Merges per-site partials into global window results."""

    def __init__(self, engine: SageEngine, job: StreamJob) -> None:
        self.engine = engine
        self.job = job
        self.results: list[WindowResult] = []
        #: Exactly-once mode: results finalized since the last checkpoint.
        #: They move to ``results`` when :meth:`checkpoint` commits them
        #: (the transactional-sink half of exactly-once); a crash in
        #: between loses them, and replay re-derives them.
        self.uncommitted: list[WindowResult] = []
        self.exactly_once = False
        #: Set by the runtime when this instance is killed, so its
        #: still-scheduled finalize timers become no-ops.
        self.crashed = False
        #: Leadership term and config version stamped onto every emitted
        #: result. Both stay 0 unless a control plane assigns them.
        self.epoch = 0
        self.config_version = 0
        self.late_partials = 0
        #: Raw records inside late partials — the exact record count the
        #: late path cost, so overload accounting can balance to zero.
        self.late_partial_records = 0
        self.raw_records = 0
        #: Batches discarded as duplicates of an already-merged delivery.
        self.duplicates_dropped = 0
        self._pending: dict[tuple[Window, str], _PendingWindowKey] = {}
        self._emitted: set[tuple[Window, str]] = set()
        #: ``(origin, seq)`` of every batch already merged — the receiver
        #: half of at-least-once delivery: a re-sent or duplicated batch
        #: must not double-count any window.
        self._seen_batches: set[tuple[str, int]] = set()
        #: Aggregator-side windowing for jobs that ship raw records.
        self._raw_aggregator = WindowedAggregator(job.windows, job.aggregate)
        obs = engine.observer
        self._obs_on = obs.enabled
        self._m_results = obs.counter("stream_results_total")
        self._m_late = obs.counter("stream_late_partials_total")
        self._m_latency = obs.histogram("stream_window_latency_seconds")
        self._m_dups = obs.counter("agg_duplicates_dropped_total")
        self._st_merge = obs.stage("agg.merge")
        #: Lazily created per-site / per-hop latency histograms.
        self._lat_by_site: dict[str, object] = {}
        self._hop_hists: dict[tuple[str, str], object] = {}

    def deliver(self, batch: Batch) -> None:
        with self._st_merge:
            self._deliver(batch)

    def _deliver(self, batch: Batch) -> None:
        now = self.engine.sim.now
        if batch.origin:
            key = (batch.origin, batch.seq)
            if key in self._seen_batches:
                self.duplicates_dropped += 1
                self._m_dups.inc()
                return
            self._seen_batches.add(key)
        for record in batch.records:
            value = record.value
            if isinstance(value, PartialAggregate):
                self._merge_partial(record, value, batch, now)
            else:
                self.raw_records += 1
                self._raw_aggregator.process(record)
        if self.raw_records:
            watermark = now - self.job.watermark_lag - self.job.finalize_grace
            for partial in self._raw_aggregator.advance_watermark(watermark):
                pa = partial.value
                assert isinstance(pa, PartialAggregate)
                self._finalize_now(pa.window, pa.key, pa.state, pa.count, 1, now)

    def _merge_partial(
        self, record: Record, pa: PartialAggregate, batch: Batch, now: float
    ) -> None:
        origin = batch.origin
        slot = (pa.window, pa.key)
        if slot in self._emitted:
            self.late_partials += 1
            self.late_partial_records += pa.count
            self._m_late.inc()
            return
        pending = self._pending.get(slot)
        if pending is None:
            pending = self._pending[slot] = _PendingWindowKey()
        if pending.state is None:
            pending.state = pa.state
        else:
            pending.state = self.job.aggregate.merge(pending.state, pa.state)
        pending.count += pa.count
        site = origin or "?"
        pending.sites.add(site)
        leg = pending.legs.get(site)
        if leg is None:
            leg = pending.legs[site] = SiteLeg(site=site)
        leg.absorb(batch.trace, pa.count, record.size_bytes, now)
        if not pending.emit_scheduled:
            pending.emit_scheduled = True
            pending.due = now + self.job.finalize_grace
            self.engine.sim.schedule(
                self.job.finalize_grace, self._finalize, slot
            )

    def _finalize(self, slot: tuple[Window, str]) -> None:
        if self.crashed:
            return
        pending = self._pending.pop(slot, None)
        if pending is None or pending.state is None:  # pragma: no cover
            return
        window, key = slot
        self._finalize_now(
            window,
            key,
            pending.state,
            pending.count,
            len(pending.sites),
            self.engine.sim.now,
            legs=pending.legs,
        )

    def _finalize_now(
        self, window, key, state, count, sites, now, legs=None
    ) -> None:
        self._emitted.add((window, key))
        lineage = WindowLineage(
            window_start=window.start,
            window_end=window.end,
            key=key,
            emitted_at=now,
            legs=tuple(
                legs[site] for site in sorted(legs)
            ) if legs else (),
        )
        sink = self.uncommitted if self.exactly_once else self.results
        sink.append(
            WindowResult(
                window=window,
                key=key,
                value=self.job.aggregate.result(state),
                record_count=count,
                sites=sites,
                emitted_at=now,
                lineage=lineage,
                epoch=self.epoch,
                config_version=self.config_version,
            )
        )
        if self._obs_on:
            self._m_results.inc()
            self._m_latency.observe(now - window.end)
            breakdown = lineage.breakdown()
            for leg in lineage.legs:
                self._e2e_hist(leg.site).observe(now - window.end)
                for hop_name, seconds in breakdown[leg.site].items():
                    if seconds == seconds:  # skip NaN (incomplete legs)
                        self._hop_hist(hop_name, leg.site).observe(seconds)
            # The span runs from the window's event-time close to the
            # global emission: its duration IS the end-to-end latency.
            self.engine.observer.record_span(
                "window.global_emit",
                window.end,
                now,
                key=key,
                window_start=window.start,
                records=count,
                sites=sites,
                lineage_complete=lineage.complete,
            )

    def _e2e_hist(self, site: str):
        """Per-site end-to-end latency histogram, created lazily (sites
        are only known once their first window result lands)."""
        hist = self._lat_by_site.get(site)
        if hist is None:
            hist = self._lat_by_site[site] = self.engine.observer.histogram(
                "stream_e2e_latency_seconds", site=site
            )
        return hist

    def _hop_hist(self, hop: str, site: str):
        key = (hop, site)
        hist = self._hop_hists.get(key)
        if hist is None:
            hist = self._hop_hists[key] = self.engine.observer.histogram(
                "lineage_hop_seconds", hop=hop, site=site
            )
        return hist

    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_results(self.results + self.uncommitted)

    # -- checkpoint/restore --------------------------------------------
    def checkpoint(self) -> dict:
        """Commit uncommitted results; return a restorable snapshot.

        The commit makes the snapshot and the externally visible results
        agree: a window result leaves the process at the checkpoint that
        records its (window, key) as emitted. A crash therefore can
        neither lose a result the outside world has seen nor re-emit one
        — replayed partials for committed windows hit ``_emitted`` and
        are counted late, not emitted twice.
        """
        self.results.extend(self.uncommitted)
        self.uncommitted.clear()
        return {
            "emitted": sorted(
                [w.start, w.end, k] for (w, k) in self._emitted
            ),
            "seen": sorted([o, s] for (o, s) in self._seen_batches),
            "pending": [
                [w.start, w.end, key, p.state, p.count,
                 sorted(p.sites), p.due,
                 [p.legs[s].to_dict() for s in sorted(p.legs)]]
                for (w, key), p in sorted(
                    self._pending.items(),
                    key=lambda kv: (kv[0][0], kv[0][1]),
                )
            ],
            "raw": self._raw_aggregator.snapshot(),
            "counters": {
                "late_partials": self.late_partials,
                "late_partial_records": self.late_partial_records,
                "raw_records": self.raw_records,
                "duplicates_dropped": self.duplicates_dropped,
            },
        }

    def restore(self, payload: dict) -> None:
        """Rebuild from a :meth:`checkpoint` payload after a restart.

        Finalize timers lost in the crash are re-armed with each pending
        window's remaining grace (zero if its due time already passed).
        """
        now = self.engine.sim.now
        self._emitted = {
            (Window(s, e), k) for s, e, k in payload["emitted"]
        }
        self._seen_batches = {(o, q) for o, q in payload["seen"]}
        counters = payload["counters"]
        self.late_partials = counters["late_partials"]
        self.late_partial_records = counters["late_partial_records"]
        self.raw_records = counters["raw_records"]
        self.duplicates_dropped = counters["duplicates_dropped"]
        self._raw_aggregator.restore(payload["raw"])
        self._pending = {}
        for row in payload["pending"]:
            start, end, key, state, count, sites, due = row[:7]
            pending = _PendingWindowKey()
            pending.state = state
            pending.count = count
            pending.sites = set(sites)
            pending.emit_scheduled = True
            pending.due = due
            # Row 8 (legs) appeared with lineage; absent in older
            # checkpoints, whose windows restore without provenance.
            if len(row) > 7:
                pending.legs = {
                    leg["site"]: SiteLeg.from_dict(leg) for leg in row[7]
                }
            slot = (Window(start, end), key)
            self._pending[slot] = pending
            self.engine.sim.schedule(
                max(0.0, due - now), self._finalize, slot
            )


class GeoStreamRuntime:
    """Run a :class:`StreamJob` over a SageEngine deployment."""

    def __init__(
        self,
        engine: SageEngine,
        job: StreamJob,
        shipping_factory,
        per_vm_records_per_s: float = 5000.0,
        flow: FlowConfig | None = None,
        record_plane: RecordPlaneConfig | None = None,
    ) -> None:
        self.engine = engine
        self.job = job
        self.flow = flow if flow is not None else job.flow
        if record_plane is None:
            record_plane = (
                job.record_plane
                if job.record_plane is not None
                else default_record_plane()
            )
        self.record_plane = record_plane
        agg_vms = engine.deployment.vms(job.aggregation_region)
        if not agg_vms:
            raise ValueError(
                f"no VMs in aggregation region {job.aggregation_region}"
            )
        self.agg_vm = agg_vms[0]
        #: Live aggregation region — starts at the job's, moves on
        #: failover via :meth:`retarget_aggregation`.
        self.aggregation_region = job.aggregation_region
        self.aggregator = GlobalAggregator(engine, job)
        #: Aggregator process liveness: while False, transport-level
        #: deliveries are dropped at the door (and recovered by replay).
        self._agg_up = True
        #: Results committed by aggregator instances that later crashed
        #: — they survive because commit handed them to the outside.
        self._delivered_results: list[WindowResult] = []
        self.batches_dropped_while_down = 0
        self.aggregator_crashes = 0
        self.checkpoint_store: CheckpointStore | None = None
        self._checkpointer: Checkpointer | None = None
        self.sites: dict[str, SiteRuntime] = {}
        for spec in job.sites:
            src_vms = engine.deployment.vms(spec.region)
            backend = shipping_factory(engine, src_vms, self.agg_vm)
            self.sites[spec.region] = SiteRuntime(
                engine,
                job,
                spec,
                backend,
                self._deliver,
                per_vm_records_per_s=per_vm_records_per_s,
                flow=self.flow,
                record_plane=record_plane,
            )

    def _deliver(self, batch: Batch) -> None:
        if not self._agg_up:
            # The transport delivered and the ack stands (at-least-once
            # is the link's contract, not the process's); the batch is
            # recovered from its origin site's retention replay.
            self.batches_dropped_while_down += 1
            return
        self.aggregator.deliver(batch)

    # ------------------------------------------------------------------
    def start(self) -> None:
        for site in self.sites.values():
            site.start()

    def stop(self) -> None:
        for site in self.sites.values():
            site.stop()
        if self._checkpointer is not None:
            self._checkpointer.stop()

    # -- checkpointing and crash recovery ------------------------------
    def enable_checkpointing(
        self,
        store: CheckpointStore | None = None,
        interval: float = 15.0,
    ) -> Checkpointer:
        """Turn on periodic snapshots and exactly-once emission.

        Every ``interval`` seconds of virtual time the aggregator
        commits its uncommitted results and snapshots; each site
        snapshots its window state. Sites start retaining shipped
        batches, pruned down to those the latest checkpoint does not
        cover — the replay set an aggregator restart needs.
        """
        if self._checkpointer is not None:
            return self._checkpointer
        self.checkpoint_store = store if store is not None else CheckpointStore()
        self.aggregator.exactly_once = True
        for site in self.sites.values():
            site.retain_batches = True
        checkpointer = Checkpointer(
            self.engine, self.checkpoint_store, interval
        )
        checkpointer.register("aggregator", self._checkpoint_aggregator)
        for region, site in self.sites.items():
            checkpointer.register(f"site/{region}", site.snapshot)
        self._checkpointer = checkpointer
        checkpointer.start()
        return checkpointer

    def _checkpoint_aggregator(self) -> dict | None:
        if not self._agg_up:
            # Skip the round; retention keeps growing until restart.
            return None
        payload = self.aggregator.checkpoint()
        covered: dict[str, set[int]] = {}
        for origin, seq in payload["seen"]:
            covered.setdefault(origin, set()).add(seq)
        for region, site in self.sites.items():
            site.prune_retained(covered.get(region, set()))
        return payload

    def crash_aggregator(self) -> None:
        """Kill the aggregator process: volatile state and timers die.

        Results committed at earlier checkpoints already left through
        the transactional sink and survive; uncommitted ones are lost
        here and re-derived after restart from checkpoint + replay.
        """
        if not self._agg_up:
            return
        self._agg_up = False
        self.aggregator_crashes += 1
        old = self.aggregator
        old.crashed = True  # disarm its outstanding finalize timers
        self._delivered_results.extend(old.results)
        old.results = []

    def restart_aggregator(self) -> None:
        """Boot a fresh aggregator from the last checkpoint, then replay."""
        if self._agg_up:
            return
        old = self.aggregator
        self.aggregator = GlobalAggregator(self.engine, self.job)
        # Epoch/config stamps carry across a plain same-leader restart;
        # a control-plane promotion overwrites them right after this.
        self.aggregator.epoch = old.epoch
        self.aggregator.config_version = old.config_version
        if self.checkpoint_store is not None:
            self.aggregator.exactly_once = True
            payload = self.checkpoint_store.load("aggregator")
            if payload is not None:
                self.aggregator.restore(payload)
        self._agg_up = True
        for site in self.sites.values():
            site.replay_retained()

    def retarget_aggregation(self, region: str) -> None:
        """Re-point every site's shipping at a new aggregation region.

        Used by the control plane when a standby in ``region`` takes
        over the leader lease: the destination VM becomes the first live
        VM there and each site backend's ``retarget`` rebuilds plans and
        instruments for the new destination. In-flight deliveries to the
        dead leader finish or time out under the old coordinates; their
        retries (and the retention replay) go to the new one.
        """
        vms = self.engine.deployment.vms(region)
        if not vms:
            raise ValueError(f"no VMs in new aggregation region {region}")
        live = [vm for vm in vms if vm.alive]
        self.agg_vm = (live or vms)[0]
        self.aggregation_region = region
        for site in self.sites.values():
            retarget = getattr(site.shipping, "retarget", None)
            if retarget is not None:
                retarget(self.agg_vm)

    @property
    def aggregator_up(self) -> bool:
        return self._agg_up

    def run_for(self, duration: float) -> None:
        """Convenience: start, run, stop, and let in-flight work land."""
        self.start()
        self.engine.run_until(self.engine.sim.now + duration)
        self.stop()
        # Allow shipped batches and grace timers to complete.
        self.engine.run_until(
            self.engine.sim.now + self.job.finalize_grace + 30.0
        )

    # ------------------------------------------------------------------
    @property
    def results(self) -> list[WindowResult]:
        """Every result delivered to the outside world, crashes included."""
        return (
            self._delivered_results
            + self.aggregator.results
            + self.aggregator.uncommitted
        )

    def results_since(
        self, start: int, include_uncommitted: bool = False
    ) -> list[WindowResult]:
        """Results appended at or after flat index ``start`` — O(new).

        The durable sequence ``_delivered_results + aggregator.results``
        is append-stable: a checkpoint commit *appends* uncommitted
        results to ``aggregator.results`` and a crash *moves* them to
        ``_delivered_results`` preserving order, so a flat cursor into
        it never re-reads an already-seen result. ``uncommitted``
        results are excluded by default because a crash discards them
        (they are re-derived after replay — an incremental scanner that
        had counted the discarded copies would then report phantom
        duplicates); pass ``include_uncommitted`` only for a final scan
        at quiescence. Continuous auditing over multi-day soaks relies
        on this instead of rebuilding :attr:`results` every tick.
        """
        d = self._delivered_results
        r = self.aggregator.results
        nd, nr = len(d), len(r)
        out: list[WindowResult] = []
        if start < nd:
            out.extend(d[start:] if start else d)
            start = nd
        if start < nd + nr:
            out.extend(r[start - nd:])
            start = nd + nr
        if include_uncommitted:
            u = self.aggregator.uncommitted
            if start < nd + nr + len(u):
                out.extend(u[start - nd - nr:])
        return out

    def in_pipe(self) -> int:
        """Records still somewhere in the pipeline (0 == quiescent).

        Counts every stage that can hold data: site ingest backlogs,
        batcher buffers, shipping inflight/parked queues, and source
        pending buffers — plus 1 while the aggregator is down (results
        may still be trapped in retained batches awaiting replay).
        Drain-to-quiescence loops poll this instead of re-deriving the
        stage list themselves.
        """
        pending = 0
        for site in self.sites.values():
            pending += site.backlog
            pending += site.batcher.buffered_count
            pending += getattr(site.shipping, "inflight", 0)
            pending += getattr(site.shipping, "parked", 0)
            for src in site.spec.sources:
                pending += src.pending_count
        if not self._agg_up:
            pending += 1
        return pending

    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_results(self.results)

    def lineage_stats(self) -> dict:
        """How much of the emitted output carries full provenance.

        ``complete`` counts results whose every leg has a cut, send and
        arrival timestamp — i.e. windows the lineage layer can decompose
        into site_close/queue/transit/merge hops end to end.
        """
        results = self.results
        with_lineage = [r for r in results if r.lineage is not None]
        return {
            "results": len(results),
            "with_lineage": len(with_lineage),
            "complete": sum(
                1 for r in with_lineage if r.lineage.complete
            ),
        }

    def wan_bytes(self) -> float:
        return sum(site.shipping.bytes_shipped for site in self.sites.values())

    def records_ingested(self) -> int:
        return sum(site.records_ingested for site in self.sites.values())

    def records_shed(self) -> int:
        """Records all sites dropped under overload (site + shipping)."""
        return sum(site.records_shed for site in self.sites.values()) + sum(
            getattr(site.shipping, "records_shed", 0)
            for site in self.sites.values()
        )

    def records_admission_rejected(self) -> int:
        """Records dropped at the door by per-site admission gates."""
        return sum(
            site.records_admission_rejected for site in self.sites.values()
        )

    def records_in_results(self) -> int:
        """Raw records accounted for by emitted window results."""
        return sum(r.record_count for r in self.results)

    def throughput(self, duration: float) -> float:
        """Processed records per second of virtual time."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return (
            sum(s.records_processed for s in self.sites.values()) / duration
        )
