"""Geo-distributed stream analysis.

Data is *produced* at many sites (sensors, experiment stations, other
datacenters) and must be *analysed globally*. The layer follows the SAGE
pipeline: site-local operator chains reduce each stream to windowed partial
aggregates; a batching policy packs partials for the wide area; a shipping
backend (the managed transfer substrate, a plain direct flow, or the
blob-staging baseline) moves them to the aggregation site; a global
aggregator merges partials per window and emits results with end-to-end
latency accounting.
"""

from repro.streaming.batching import (
    AdaptiveBatchPolicy,
    Batcher,
    BatchPolicy,
    HybridBatchPolicy,
    SizeBatchPolicy,
    TimeBatchPolicy,
)
from repro.streaming.events import Batch, Record
from repro.streaming.operators import (
    AggregateFn,
    FilterOperator,
    MapOperator,
    Operator,
    PerRecordAdapter,
    WindowedAggregator,
    builtin_aggregate,
)
from repro.streaming.records import ChunkedBacklog, RecordBatch
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.hierarchy import HierarchicalRuntime, HubAggregator
from repro.streaming.runtime import (
    GeoStreamRuntime,
    LatencyStats,
    WindowResult,
)
from repro.streaming.shipping import (
    BlobShipping,
    DirectShipping,
    ReliableShipping,
    SageShipping,
    ShippingBackend,
    UdpShipping,
)
from repro.streaming.sources import (
    MmppSource,
    PoissonSource,
    SensorGridSource,
    StreamSource,
    TraceSource,
)
from repro.streaming.windows import SlidingWindows, TumblingWindows, Window

__all__ = [
    "Record",
    "RecordBatch",
    "ChunkedBacklog",
    "Batch",
    "Operator",
    "MapOperator",
    "FilterOperator",
    "PerRecordAdapter",
    "WindowedAggregator",
    "AggregateFn",
    "builtin_aggregate",
    "Window",
    "TumblingWindows",
    "SlidingWindows",
    "BatchPolicy",
    "SizeBatchPolicy",
    "TimeBatchPolicy",
    "HybridBatchPolicy",
    "AdaptiveBatchPolicy",
    "Batcher",
    "StreamSource",
    "PoissonSource",
    "MmppSource",
    "SensorGridSource",
    "TraceSource",
    "SiteSpec",
    "StreamJob",
    "GeoStreamRuntime",
    "HierarchicalRuntime",
    "HubAggregator",
    "WindowResult",
    "LatencyStats",
    "ShippingBackend",
    "SageShipping",
    "DirectShipping",
    "BlobShipping",
    "UdpShipping",
    "ReliableShipping",
]
