"""Batching policies: how long to hold partials before crossing the WAN.

Per-record shipping wastes the wide area (each transfer pays chunk
metadata, acknowledgement latency, and a TCP ramp); huge batches add
staleness. Policies decide when the buffered set is "full":

* :class:`SizeBatchPolicy` — flush at a byte threshold;
* :class:`TimeBatchPolicy` — flush at a maximum hold time;
* :class:`HybridBatchPolicy` — whichever fires first (the common default);
* :class:`AdaptiveBatchPolicy` — picks the byte threshold from the current
  link estimate so each batch occupies the pipe for approximately a target
  duration: batches grow when the link is fast (efficiency is cheap) and
  shrink when it is slow (latency already suffers).
"""

from __future__ import annotations

from typing import Callable

from repro.obs.lineage import BatchTrace
from repro.streaming.events import Batch, Record


class BatchPolicy:
    """Decides whether the buffer must be flushed."""

    def should_flush(
        self, buffered_bytes: float, buffered_count: int, oldest_age: float
    ) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class SizeBatchPolicy(BatchPolicy):
    def __init__(self, max_bytes: float) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes

    def should_flush(self, buffered_bytes, buffered_count, oldest_age) -> bool:
        return buffered_bytes >= self.max_bytes

    def describe(self) -> str:
        return f"size({self.max_bytes:.0f}B)"


class TimeBatchPolicy(BatchPolicy):
    def __init__(self, max_delay: float) -> None:
        if max_delay <= 0:
            raise ValueError("max_delay must be positive")
        self.max_delay = max_delay

    def should_flush(self, buffered_bytes, buffered_count, oldest_age) -> bool:
        return oldest_age >= self.max_delay

    def describe(self) -> str:
        return f"time({self.max_delay:.1f}s)"


class HybridBatchPolicy(BatchPolicy):
    def __init__(self, max_bytes: float, max_delay: float) -> None:
        self.size = SizeBatchPolicy(max_bytes)
        self.time = TimeBatchPolicy(max_delay)

    def should_flush(self, buffered_bytes, buffered_count, oldest_age) -> bool:
        return self.size.should_flush(
            buffered_bytes, buffered_count, oldest_age
        ) or self.time.should_flush(buffered_bytes, buffered_count, oldest_age)

    def describe(self) -> str:
        return f"hybrid({self.size.max_bytes:.0f}B,{self.time.max_delay:.1f}s)"


class AdaptiveBatchPolicy(BatchPolicy):
    """Link-aware thresholding.

    ``throughput_fn`` returns the current estimated link throughput in
    bytes/s (normally the monitoring agent's estimate for the site's WAN
    link). The byte threshold is ``throughput × target_occupancy`` clamped
    to sane bounds; a hard ``max_delay`` bounds staleness regardless.
    """

    def __init__(
        self,
        throughput_fn: Callable[[], float],
        target_occupancy: float = 0.5,
        max_delay: float = 5.0,
        min_bytes: float = 16_384.0,
        max_bytes: float = 64 * 1024 * 1024.0,
    ) -> None:
        if target_occupancy <= 0:
            raise ValueError("target_occupancy must be positive")
        self.throughput_fn = throughput_fn
        self.target_occupancy = target_occupancy
        self.max_delay = max_delay
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes

    def current_threshold(self) -> float:
        thr = self.throughput_fn()
        if thr != thr or thr <= 0:  # NaN or unmonitored: be conservative
            return self.min_bytes
        return min(self.max_bytes, max(self.min_bytes, thr * self.target_occupancy))

    def should_flush(self, buffered_bytes, buffered_count, oldest_age) -> bool:
        if oldest_age >= self.max_delay:
            return True
        return buffered_bytes >= self.current_threshold()

    def describe(self) -> str:
        return f"adaptive(occ={self.target_occupancy}, {self.max_delay:.1f}s)"


class Batcher:
    """Buffers records and cuts batches according to a policy."""

    def __init__(self, policy: BatchPolicy, origin: str) -> None:
        self.policy = policy
        self.origin = origin
        self._buffer: list[Record] = []
        self._buffered_bytes = 0.0
        self._oldest_arrival: float | None = None
        self._seq = 0
        self.batches_cut = 0
        self.records_buffered = 0

    def offer(self, record: Record, now: float) -> Batch | None:
        """Add a record; returns a batch when the policy fires."""
        self._buffer.append(record)
        self._buffered_bytes += record.size_bytes
        self.records_buffered += 1
        if self._oldest_arrival is None:
            self._oldest_arrival = now
        return self.maybe_flush(now)

    def offer_many(self, records: list[Record], now: float) -> list[Batch]:
        """Offer records in order; returns every batch the policy cut.

        Semantically identical to calling :meth:`offer` per record —
        the policy is consulted after each append, so batch boundaries
        land exactly where the one-at-a-time path puts them.
        """
        out: list[Batch] = []
        for record in records:
            batch = self.offer(record, now)
            if batch is not None:
                out.append(batch)
        return out

    def maybe_flush(self, now: float) -> Batch | None:
        """Check the policy (also called on timer ticks)."""
        if not self._buffer:
            return None
        age = now - (self._oldest_arrival if self._oldest_arrival is not None else now)
        if self.policy.should_flush(self._buffered_bytes, len(self._buffer), age):
            return self.flush(now)
        return None

    def flush(self, now: float) -> Batch | None:
        """Unconditionally cut a batch from whatever is buffered."""
        if not self._buffer:
            return None
        batch = Batch(self._buffer, self.origin, created_at=now, seq=self._seq)
        batch.trace = BatchTrace.stamp(self.origin, self._seq, now)
        self._seq += 1
        self.batches_cut += 1
        self._buffer = []
        self._buffered_bytes = 0.0
        self._oldest_arrival = None
        return batch

    @property
    def buffered_bytes(self) -> float:
        return self._buffered_bytes

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)
