"""Shipping backends: how partial aggregates cross the wide area.

The streaming runtime is backend-agnostic; three backends implement the
comparison the evaluation keeps returning to:

* :class:`SageShipping` — the managed substrate: batches travel over a
  decision-manager plan (parallel helpers / multi-datacenter paths) that
  is refreshed as the environment drifts and invalidated the moment a
  fault event lands;
* :class:`DirectShipping` — one plain TCP flow per batch, round-robin
  over the site's sender VMs, no awareness;
* :class:`BlobShipping` — the cloud's out-of-the-box answer: stage the
  batch into the destination region's object store, then read it back.

:class:`ReliableShipping` wraps any of them with at-least-once delivery:
per-batch sequence tracking, a delivery timeout, exponential backoff with
jitter, and bounded retries. Duplicates it may create are removed by the
aggregator's ``(origin, seq)`` dedup.

``ship`` may return a cancellable handle (anything with ``cancel()``) so
a reliability wrapper can abandon a stalled attempt and free its network
resources; backends without one return ``None``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Protocol

from repro.cloud.vm import VM
from repro.core.engine import SageEngine
from repro.streaming.events import Batch
from repro.transfer.plan import TransferPlan

DeliveryCallback = Callable[[Batch], None]

#: Fault kinds that change what a good route looks like — a cached plan
#: must not outlive any of them. Batch-level faults (drop/duplicate) are
#: deliberately absent: they affect delivery, not routing.
_ROUTING_FAULTS = (
    "vm.crash",
    "vm.restart",
    "vm.suspected",
    "vm.recovered",
    "link.down",
    "link.up",
    "link.flap",
    "partition",
    "partition.heal",
    "flow.stall",
)


class ShipHandle:
    """Cancellable handle for an in-flight shipped batch.

    Covers the window between ``ship()`` and transfer start (coordination
    latency) as well as the transfer itself.
    """

    __slots__ = ("session", "cancelled")

    def __init__(self) -> None:
        self.session = None
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        s = self.session
        if s is not None and not s.done and not s.cancelled:
            s.cancel()


class _ShipInstruments:
    """Shared observability plumbing for shipping backends.

    One span per batch covers ship → arrival; its duration is the
    wide-area delivery latency and ``bps`` the achieved link throughput.

    Independently of the observer, every attempt appends a lineage
    :class:`~repro.obs.lineage.Hop` to the batch's trace — causal
    metadata like ``seq``, always on (one small allocation per batch
    attempt, nothing per record).
    """

    __slots__ = ("_obs", "_on", "_sim", "_backend", "_link", "_m_bytes",
                 "_m_batches", "_mt_batches", "_mt_bytes")

    def __init__(self, engine: SageEngine, backend: str, src: str, dst: str):
        obs = engine.observer
        self._obs = obs
        self._on = obs.enabled
        self._sim = engine.sim
        self._backend = backend
        self._link = f"{src}->{dst}"
        self._m_bytes = obs.counter(
            "ship_bytes_total", backend=backend, link=self._link
        )
        self._m_batches = obs.counter(
            "ship_batches_total", backend=backend, link=self._link
        )
        #: Global throughput meters (unlabelled: the dashboard reports
        #: whole-run batches/sec and bytes/sec across links).
        self._mt_batches = obs.meter("batches")
        self._mt_bytes = obs.meter("bytes")

    def wrap(
        self, batch: Batch, on_delivered: DeliveryCallback
    ) -> DeliveryCallback:
        """Count the batch; return a delivery callback closing its span."""
        sim = self._sim
        trace = batch.trace
        hop = (
            trace.begin_hop(self._link, self._backend, sim.now)
            if trace is not None
            else None
        )
        if not self._on:
            if hop is None:
                return on_delivered

            def _arrived(b: Batch) -> None:
                hop.arrived_at = sim.now
                on_delivered(b)

            return _arrived
        self._m_bytes.inc(batch.size_bytes)
        self._m_batches.inc()
        self._mt_batches.mark()
        self._mt_bytes.mark(batch.size_bytes)
        span = self._obs.start_span(
            "ship.batch",
            backend=self._backend,
            link=self._link,
            bytes=batch.size_bytes,
            records=len(batch.records),
        )

        def _delivered(b: Batch) -> None:
            if hop is not None:
                hop.arrived_at = sim.now
            span.finish()
            if span.duration > 0:
                span.attrs["bps"] = batch.size_bytes / span.duration
            on_delivered(b)

        return _delivered


class ShippingBackend(Protocol):
    """Moves batches from one site to the aggregation site."""

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        ...  # pragma: no cover - protocol

    @property
    def bytes_shipped(self) -> float:
        ...  # pragma: no cover - protocol


class DirectShipping:
    """One unmanaged flow per batch, round-robin over the sender VMs.

    Accepts a single VM (the historical signature) or the site's whole
    VM list; successive batches rotate through the senders so one busy
    or crashed NIC does not serialise the site's entire egress. Crashed
    senders are skipped while any live one remains.
    """

    def __init__(
        self,
        engine: SageEngine,
        src_vms: VM | list[VM],
        dst_vm: VM,
        streams: int = 1,
    ):
        self.engine = engine
        self.src_vms = [src_vms] if isinstance(src_vms, VM) else list(src_vms)
        if not self.src_vms:
            raise ValueError("DirectShipping needs at least one sender VM")
        self.dst_vm = dst_vm
        self.streams = streams
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self._rr = 0
        self._inst = _ShipInstruments(
            engine, "direct", self.src_vms[0].region_code, dst_vm.region_code
        )

    @property
    def src_vm(self) -> VM:
        """The next sender (historical single-VM attribute)."""
        return self.src_vms[self._rr % len(self.src_vms)]

    def _next_sender(self) -> VM:
        n = len(self.src_vms)
        for i in range(n):
            vm = self.src_vms[(self._rr + i) % n]
            if vm.alive:
                self._rr = (self._rr + i + 1) % n
                return vm
        # Every sender is down: keep rotating anyway — the transfer will
        # stall until a restore, and the reliability layer retries.
        vm = self.src_vms[self._rr % n]
        self._rr = (self._rr + 1) % n
        return vm

    def ship(self, batch: Batch, on_delivered: DeliveryCallback):
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)
        return self.engine.transfers.execute(
            TransferPlan.direct(self._next_sender(), self.dst_vm,
                                streams=self.streams, label="ship-direct"),
            batch.size_bytes,
            on_complete=lambda _s: on_delivered(batch),
        )

    def retarget(self, dst_vm: VM) -> None:
        """Point this backend at a new destination VM (leader failover)."""
        self.dst_vm = dst_vm
        self._inst = _ShipInstruments(
            self.engine, "direct",
            self.src_vms[0].region_code, dst_vm.region_code,
        )

    @classmethod
    def factory(cls, streams: int = 1):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(engine, src_vms, dst_vm, streams=streams)

        return build


class SageShipping:
    """Batches ride a decision-managed plan, refreshed periodically.

    Building a full managed transfer per (small) batch would pay planning
    overhead per batch; instead the backend asks the Decision Manager for
    a plan once and re-asks every ``plan_ttl`` seconds so route choice
    follows the environment. The cached plan's VMs are *reserved* with
    the Decision Manager (concurrent plans route around them) and every
    superseded plan is released; fault events — crashes, suspicions,
    link outages, flow stalls — invalidate the cache immediately instead
    of letting a dead route survive to its TTL.
    """

    def __init__(
        self,
        engine: SageEngine,
        src_region: str,
        dst_region: str,
        n_nodes: int = 3,
        plan_ttl: float = 60.0,
        intrusiveness: float | None = None,
        coordination_latency: float | None = None,
    ) -> None:
        self.engine = engine
        self.src_region = src_region
        self.dst_region = dst_region
        self.n_nodes = n_nodes
        self.plan_ttl = plan_ttl
        self.intrusiveness = intrusiveness
        #: Re-derive the coordination latency when the destination moves
        #: (failover retarget) — unless the caller pinned it explicitly.
        self._auto_coord = coordination_latency is None
        if coordination_latency is None:
            # Each item is registered with the Decision Manager, matched to
            # routes and acknowledged: two control round-trips plus DM
            # processing. This fixed per-item cost is why blob staging is
            # competitive for tiny files (experiment E8) — the managed
            # machinery only pays off once transfer time dominates.
            rtt = engine.env.topology.rtt(src_region, dst_region)
            coordination_latency = 2.0 * rtt + 0.1
        self.coordination_latency = coordination_latency
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self.plans_built = 0
        self.plan_invalidations = 0
        self._plan: TransferPlan | None = None
        self._plan_reserved = False
        self._plan_expiry = -1.0
        self._inst = _ShipInstruments(engine, "sage", src_region, dst_region)
        engine.on_fault(self._on_fault)

    # ------------------------------------------------------------------
    def _on_fault(self, kind: str, target: str) -> None:
        if kind in _ROUTING_FAULTS:
            self.invalidate_plan()

    def invalidate_plan(self) -> None:
        """Drop the cached plan (and its VM reservations) immediately.

        The next batch re-plans against the post-fault environment
        instead of riding a route through a crashed VM or dead link
        until the TTL expires.
        """
        if self._plan is None and self._plan_expiry < 0:
            return
        self._drop_plan()
        self.plan_invalidations += 1

    def _drop_plan(self) -> None:
        if self._plan_reserved:
            self.engine.decisions.release_plan(self._plan)
            self._plan_reserved = False
        self._plan = None
        self._plan_expiry = -1.0

    def _current_plan(self) -> TransferPlan | None:
        """The active plan, or ``None`` for in-memory local handover."""
        now = self.engine.sim.now
        if self._plan is None or now >= self._plan_expiry:
            self._drop_plan()
            if self.src_region == self.dst_region:
                # Site-local delivery: one intra-datacenter hop, no WAN
                # planning needed. Prefer live VMs; with a single VM in
                # the region there is nothing to transfer across — the
                # batch is handed over in memory (plan None).
                vms = self.engine.deployment.vms(self.src_region)
                live = [vm for vm in vms if vm.alive] or vms
                if len(live) >= 2:
                    self._plan = TransferPlan.direct(
                        live[0], live[-1], label="ship-sage-local"
                    )
            else:
                self._plan = self.engine.decisions.reserve_plan(
                    self.engine.decisions.build_plan(
                        self.src_region,
                        self.dst_region,
                        self.n_nodes,
                        intrusiveness=self.intrusiveness,
                        label=f"ship-sage:{self.src_region}->{self.dst_region}",
                    )
                )
                self._plan_reserved = True
            self._plan_expiry = now + self.plan_ttl
            self.plans_built += 1
        return self._plan

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> ShipHandle:
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)
        handle = ShipHandle()

        def _start() -> None:
            if handle.cancelled:
                return
            plan = self._current_plan()
            if plan is None:
                # Single-VM site: producer and aggregator share the box.
                on_delivered(batch)
                return
            handle.session = self.engine.transfers.execute(
                plan,
                batch.size_bytes,
                on_complete=lambda _s: on_delivered(batch),
            )

        self.engine.sim.schedule(self.coordination_latency, _start)
        return handle

    def retarget(self, dst_vm: VM) -> None:
        """Point this backend at a new aggregation region (failover).

        Drops the cached plan (releasing its reservations) so the next
        batch plans a route to the new destination, and re-derives the
        coordination latency for the new region pair. A retarget into
        the site's own region downgrades to local handover — exactly the
        ``_current_plan`` same-region path.
        """
        dst_region = dst_vm.region_code
        self.invalidate_plan()
        if dst_region == self.dst_region:
            return
        self.dst_region = dst_region
        if self._auto_coord:
            if self.src_region == dst_region:
                # Local handover: no WAN control round-trips, only the
                # Decision Manager's fixed processing share.
                self.coordination_latency = 0.1
            else:
                rtt = self.engine.env.topology.rtt(self.src_region, dst_region)
                self.coordination_latency = 2.0 * rtt + 0.1
        self._inst = _ShipInstruments(
            self.engine, "sage", self.src_region, dst_region
        )

    @classmethod
    def factory(cls, n_nodes: int = 3, plan_ttl: float = 60.0,
                intrusiveness: float | None = None,
                coordination_latency: float | None = None):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(
                engine,
                src_vms[0].region_code,
                dst_vm.region_code,
                n_nodes=n_nodes,
                plan_ttl=plan_ttl,
                intrusiveness=intrusiveness,
                coordination_latency=coordination_latency,
            )

        return build


class RetryBudget:
    """Global cap on concurrently in-flight retry *attempts*.

    Shared by every link built from one :meth:`ReliableShipping.factory`
    closure: a correlated regional outage makes every link time out and
    back off together, and without a shared bound their synchronized
    retries amplify into a storm against whatever survived (typically
    the freshly promoted leader). A retry holds one budget unit from
    dispatch until its attempt resolves (ack, timeout, or cancel);
    retries that find the budget exhausted are *deferred* — never
    dropped — so at-least-once delivery is unaffected, only smeared out
    in time.
    """

    def __init__(self, max_concurrent: int) -> None:
        if max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        self.max_concurrent = max_concurrent
        self.active = 0
        #: Times a retry found no budget and had to defer.
        self.exhausted_total = 0

    def try_acquire(self) -> bool:
        if self.active >= self.max_concurrent:
            self.exhausted_total += 1
            return False
        self.active += 1
        return True

    def release(self) -> None:
        if self.active > 0:
            self.active -= 1


class _Delivery:
    """Tracking state of one batch inside :class:`ReliableShipping`."""

    __slots__ = ("batch", "on_delivered", "attempt", "acked", "abandoned",
                 "cancelled", "handle", "timer", "parked", "active",
                 "budgeted")

    def __init__(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        self.batch = batch
        self.on_delivered = on_delivered
        self.attempt = 0
        self.acked = False
        self.abandoned = False
        self.cancelled = False
        self.handle = None
        #: The pending timeout/retry timer event (cancellable).
        self.timer = None
        #: Waiting for an in-flight slot or a closed breaker.
        self.parked = False
        #: Currently occupying an in-flight slot.
        self.active = False
        #: Currently holding one unit of the shared retry budget.
        self.budgeted = False

    @property
    def finished(self) -> bool:
        return self.acked or self.abandoned or self.cancelled


class ReliableHandle:
    """Cancellable handle for a :class:`ReliableShipping` delivery.

    ``cancel()`` stops the *whole* delivery, not just the current
    attempt: the pending timeout/retry timer is cancelled, the inner
    transfer (if any) is cancelled so its network resources free up,
    and the delivery is removed from the in-flight map — a cancelled
    batch can never be retried again nor consume WAN capacity.
    """

    __slots__ = ("_shipping", "_delivery")

    def __init__(self, shipping: "ReliableShipping", delivery: _Delivery):
        self._shipping = shipping
        self._delivery = delivery

    @property
    def cancelled(self) -> bool:
        return self._delivery.cancelled

    def cancel(self) -> None:
        self._shipping._cancel(self._delivery)


class ReliableShipping:
    """At-least-once delivery over any inner shipping backend.

    Each batch is identified by its ``(origin, seq)`` pair (the batcher
    assigns sequence numbers per site). An attempt that has not been
    acknowledged within ``delivery_timeout`` is cancelled — freeing its
    network resources — and re-sent after exponential backoff with
    jitter, up to ``max_retries`` re-sends; then the batch is abandoned
    and counted. The wrapper consults the armed fault injector per
    attempt, so injected in-flight drops surface as lost acks (the
    retry path) and injected duplicates surface as double deliveries
    (the aggregator's dedup path). Retries re-enter the inner backend,
    so their wide-area bytes are billed like any other batch — the cost
    accounting of a faulty run stays honest.

    At-least-once means duplicates are possible by design (a late first
    copy can land after its retry was already sent); the global
    aggregator removes them by ``(origin, seq)``.

    Flow control (all optional, off by default):

    * ``max_inflight`` bounds concurrently attempting deliveries — the
      credit window the receiver side grants this link. Excess batches
      *park* in FIFO order and dispatch as slots free up.
    * ``breaker`` (a :class:`repro.flow.CircuitBreaker`) gates attempts:
      while open, batches park instead of being queued into a link the
      failure detector or consecutive timeouts have declared dead, and a
      half-open probe re-opens the flow when the link heals.
    * ``max_pending`` bounds the parked queue; on overflow the *oldest*
      parked delivery is shed (counted, with its record count) so a dead
      link cannot grow memory without bound under the ``shed`` policy.
    """

    def __init__(
        self,
        engine: SageEngine,
        inner,
        delivery_timeout: float = 20.0,
        max_retries: int = 6,
        backoff_base: float = 2.0,
        backoff_cap: float = 60.0,
        name: str | None = None,
        max_inflight: int | None = None,
        max_pending: int | None = None,
        breaker=None,
        retry_budget: RetryBudget | None = None,
    ) -> None:
        if delivery_timeout <= 0:
            raise ValueError("delivery_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError("max_inflight must be positive (or None)")
        if max_pending is not None and max_pending <= 0:
            raise ValueError("max_pending must be positive (or None)")
        self.engine = engine
        self.inner = inner
        self.delivery_timeout = delivery_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.name = name or type(inner).__name__
        self._rng = engine.sim.rngs.get(f"reliable/{self.name}")
        self.retries = 0
        self.abandoned = 0
        self.acked = 0
        self.cancels = 0
        self.duplicates_delivered = 0
        # Flow control -------------------------------------------------
        from repro.flow.credits import CreditGate

        self.max_inflight = max_inflight
        self.max_pending = max_pending
        self.breaker = breaker
        #: Shared (cross-link) retry-storm guard; ``None`` = unlimited.
        self.retry_budget = retry_budget
        self.retry_budget_exhausted = 0
        self.batches_shed = 0
        self.records_shed = 0
        self.records_abandoned = 0
        obs = engine.observer
        self._credits = CreditGate(
            max_inflight,
            gauge=(
                obs.gauge("flow_credits_available", link=self.name)
                if obs.enabled and max_inflight is not None
                else None
            ),
        )
        #: All unfinished deliveries, keyed by ``(origin, seq)``.
        self._inflight: dict[tuple[str, int], _Delivery] = {}
        #: Deliveries waiting for a slot / closed breaker, FIFO.
        self._parked: deque[_Delivery] = deque()
        self._probe_scheduled = False
        self._m_retries = obs.counter("ship_retries_total")
        self._m_abandoned = obs.counter("ship_batches_abandoned_total")
        self._m_duplicates = obs.counter("ship_duplicates_delivered_total")
        self._m_parked = obs.counter("ship_batches_parked_total")
        self._m_shed = obs.counter("ship_batches_shed_total")
        self._m_cancelled = obs.counter("ship_batches_cancelled_total")
        self._m_budget_exhausted = obs.counter("retry_budget_exhausted_total")

    # Cost accounting stays the inner backend's: retries pass through it.
    @property
    def bytes_shipped(self) -> float:
        return self.inner.bytes_shipped

    @property
    def batches_shipped(self) -> int:
        return self.inner.batches_shipped

    @property
    def inflight(self) -> int:
        """Deliveries currently occupying an in-flight slot."""
        return self._credits.in_use

    @property
    def parked(self) -> int:
        return len(self._parked)

    @property
    def saturated(self) -> bool:
        """Upstream should stop producing: the credit window is full and
        batches are already queueing behind it (or an open breaker)."""
        return self._credits.exhausted and bool(self._parked)

    def ship(
        self, batch: Batch, on_delivered: DeliveryCallback
    ) -> ReliableHandle:
        existing = self._inflight.get((batch.origin, batch.seq))
        if existing is not None and not existing.finished:
            # Idempotent re-ship (crash-recovery replay overlaps the
            # original delivery): the pending delivery already covers it.
            return ReliableHandle(self, existing)
        d = _Delivery(batch, on_delivered)
        self._inflight[(batch.origin, batch.seq)] = d
        self._dispatch(d)
        return ReliableHandle(self, d)

    # ------------------------------------------------------------------
    def _dispatch(self, d: _Delivery) -> None:
        """Attempt now if a slot is free and the breaker allows; else park."""
        if d.finished:
            return
        if self.breaker is not None and not self.breaker.allow():
            self._park(d)
            self._schedule_probe()
            return
        if self._credits.acquire(1) == 0:
            self._park(d)
            return
        d.active = True
        self._attempt(d)

    def _park(self, d: _Delivery) -> None:
        d.parked = True
        self._parked.append(d)
        self._m_parked.inc()
        if self.max_pending is not None:
            while len(self._parked) > self.max_pending:
                oldest = self._parked.popleft()
                oldest.parked = False
                if oldest.finished:
                    continue
                # Bounded shipping buffer: shed the oldest parked batch
                # (quantified loss) rather than grow without limit.
                oldest.cancelled = True
                self._finish(oldest)
                self.batches_shed += 1
                self.records_shed += _record_weight(oldest.batch)
                self._m_shed.inc()

    def _schedule_probe(self) -> None:
        """Wake the parked queue when the breaker's probe window opens.

        Only needed while the breaker is *open*: in half-open the probe
        attempt is already in flight, and its ack or timeout frees a slot
        and pumps the queue.
        """
        if self._probe_scheduled or self.breaker is None:
            return
        delay = self.breaker.probe_delay()
        if delay <= 0.0:
            return
        self._probe_scheduled = True

        def _probe() -> None:
            self._probe_scheduled = False
            self._pump()

        self.engine.sim.schedule(delay, _probe)

    def _pump(self) -> None:
        """Dispatch parked deliveries into freed slots."""
        while self._parked:
            if self.breaker is not None and not self.breaker.allow():
                self._schedule_probe()
                return
            if self._credits.exhausted:
                return
            d = self._parked.popleft()
            d.parked = False
            if d.finished:
                continue
            self._credits.acquire(1)
            d.active = True
            self._attempt(d)

    def _release_slot(self, d: _Delivery) -> None:
        if d.active:
            d.active = False
            self._credits.release(1)
            self._pump()

    def _release_budget(self, d: _Delivery) -> None:
        if d.budgeted:
            d.budgeted = False
            self.retry_budget.release()

    def _finish(self, d: _Delivery) -> None:
        """Delivery reached a terminal state: free its slot and map entry."""
        if d.timer is not None:
            d.timer.cancel()
            d.timer = None
        if d.handle is not None and hasattr(d.handle, "cancel"):
            d.handle.cancel()
        d.handle = None
        self._release_slot(d)
        self._release_budget(d)
        key = (d.batch.origin, d.batch.seq)
        if self._inflight.get(key) is d:
            del self._inflight[key]

    def _cancel(self, d: _Delivery) -> None:
        """Abort a delivery entirely (see :class:`ReliableHandle`)."""
        if d.finished:
            return
        d.cancelled = True
        self.cancels += 1
        self._m_cancelled.inc()
        self._finish(d)

    def _attempt(self, d: _Delivery) -> None:
        d.attempt += 1
        attempt_no = d.attempt
        verdict = "deliver"
        faults = getattr(self.engine, "faults", None)
        if faults is not None:
            verdict = faults.intercept_batch(d.batch.origin, d.batch.seq)

        def _arrived(batch: Batch) -> None:
            if d.cancelled:
                # Cancelled mid-flight: the copy still physically lands,
                # but the delivery no longer exists — drop silently.
                return
            if d.acked:
                # A retry already delivered this batch; the late copy
                # still reaches the receiver — dedup removes it there.
                self.duplicates_delivered += 1
                self._m_duplicates.inc()
                d.on_delivered(batch)
                return
            if verdict == "drop":
                # Lost in flight: the receiver never saw it, the ack
                # never comes, and the timeout path re-sends.
                return
            d.acked = True
            self.acked += 1
            if self.breaker is not None:
                self.breaker.record_success()
            cb = d.on_delivered
            self._finish(d)
            cb(batch)
            if verdict == "duplicate":
                self.duplicates_delivered += 1
                self._m_duplicates.inc()
                cb(batch)

        d.handle = self.inner.ship(d.batch, _arrived)
        d.timer = self.engine.sim.schedule(
            self.delivery_timeout, self._on_timeout, d, attempt_no
        )

    def _on_timeout(self, d: _Delivery, attempt_no: int) -> None:
        if d.finished or d.attempt != attempt_no:
            return
        d.timer = None
        handle = d.handle
        if handle is not None and hasattr(handle, "cancel"):
            handle.cancel()
        d.handle = None
        # The attempt is over either way: free the slot (and the network)
        # before the backoff, so other batches can use the link meanwhile.
        self._release_slot(d)
        self._release_budget(d)
        if self.breaker is not None:
            self.breaker.record_failure()
        if d.attempt > self.max_retries:
            d.abandoned = True
            self.abandoned += 1
            self.records_abandoned += _record_weight(d.batch)
            self._m_abandoned.inc()
            self._finish(d)
            return
        self.retries += 1
        self._m_retries.inc()
        delay = min(
            self.backoff_cap, self.backoff_base * 2.0 ** (d.attempt - 1)
        )
        # Jitter in [0.5, 1.5): retries of batches lost together do not
        # re-collide on the recovering link.
        delay *= 0.5 + self._rng.random()
        d.timer = self.engine.sim.schedule(delay, self._retry, d)

    def _retry(self, d: _Delivery) -> None:
        if d.finished:
            return
        d.timer = None
        budget = self.retry_budget
        if budget is not None:
            if not budget.try_acquire():
                # Storm guard: too many retries already pounding the
                # network fleet-wide. Defer (jittered, so deferred
                # retries do not re-collide), never drop — delivery
                # stays at-least-once, just smeared out in time.
                self.retry_budget_exhausted += 1
                self._m_budget_exhausted.inc()
                d.timer = self.engine.sim.schedule(
                    self.backoff_base * (0.5 + self._rng.random()),
                    self._retry,
                    d,
                )
                return
            d.budgeted = True
        self._dispatch(d)

    @classmethod
    def factory(
        cls,
        inner_factory,
        delivery_timeout: float = 20.0,
        max_retries: int = 6,
        backoff_base: float = 2.0,
        backoff_cap: float = 60.0,
        max_inflight: int | None = None,
        max_pending: int | None = None,
        breaker: bool = False,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        retry_budget: int | None = None,
    ):
        """Wrap another backend factory with at-least-once delivery.

        ``breaker=True`` attaches a per-link circuit breaker wired to the
        engine's fault bus (see :class:`repro.flow.CircuitBreaker`).
        ``retry_budget`` caps *concurrent retry attempts across every
        link this factory builds* (one shared :class:`RetryBudget`), so
        a correlated outage cannot amplify into a cross-site retry storm.
        """
        shared_budget = (
            RetryBudget(retry_budget) if retry_budget is not None else None
        )

        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            link = (src_vms[0].region_code, dst_vm.region_code)
            brk = None
            if breaker:
                from repro.flow.breaker import CircuitBreaker

                brk = CircuitBreaker(
                    engine,
                    link=link,
                    failure_threshold=breaker_threshold,
                    reset_timeout=breaker_reset,
                )
            return cls(
                engine,
                inner_factory(engine, src_vms, dst_vm),
                delivery_timeout=delivery_timeout,
                max_retries=max_retries,
                backoff_base=backoff_base,
                backoff_cap=backoff_cap,
                name=f"{link[0]}->{link[1]}",
                max_inflight=max_inflight,
                max_pending=max_pending,
                breaker=brk,
                retry_budget=shared_budget,
            )

        return build

    def retarget(self, dst_vm: VM) -> None:
        """Re-point the inner backend at a new destination (failover).

        In-flight attempts finish or time out under the old coordinates;
        their retries — and everything shipped afterwards — go to the
        new one. The wrapper's identity (name, RNG stream, counters)
        deliberately survives the move: it is the *site's* link, not the
        destination's.
        """
        inner_retarget = getattr(self.inner, "retarget", None)
        if inner_retarget is not None:
            inner_retarget(dst_vm)


def _record_weight(batch: Batch) -> int:
    """Raw-record count a batch carries (partials weigh their fold count)."""
    from repro.streaming.operators import PartialAggregate

    total = 0
    for record in batch.records:
        value = record.value
        total += value.count if isinstance(value, PartialAggregate) else 1
    return total


class UdpShipping:
    """Datagram shipping for latency-critical geographical streams.

    The protocol extension the system design reserves for streaming data:
    batches travel as UDP datagram trains — no congestion window (the
    flow runs at NIC/link-share rate even on long-RTT paths) and no
    acknowledgement round-trip, so delivery latency drops; in exchange,
    a batch crossing a link in bad weather can be *lost*. Lost batches
    are counted, never retried — staleness beats reliability for this
    class of data, and the windowed aggregation downstream tolerates
    gaps.
    """

    def __init__(
        self,
        engine: SageEngine,
        src_vm: VM,
        dst_vm: VM,
        base_loss: float = 0.005,
        weather_loss: float = 0.25,
    ) -> None:
        if not 0 <= base_loss < 1:
            raise ValueError("base_loss must be in [0, 1)")
        if not 0 <= weather_loss < 1:
            raise ValueError("weather_loss must be in [0, 1)")
        self.engine = engine
        self.src_vm = src_vm
        self.dst_vm = dst_vm
        self.base_loss = base_loss
        self.weather_loss = weather_loss
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self.batches_lost = 0
        self._rng = engine.sim.rngs.get(
            f"udp/{src_vm.region_code}->{dst_vm.region_code}"
        )
        self._inst = _ShipInstruments(
            engine, "udp", src_vm.region_code, dst_vm.region_code
        )
        self._m_lost = engine.observer.counter(
            "ship_batches_lost_total",
            backend="udp",
            link=f"{src_vm.region_code}->{dst_vm.region_code}",
        )

    def _loss_probability(self) -> float:
        """Loss grows as the link's weather worsens."""
        link_key = (self.src_vm.region_code, self.dst_vm.region_code)
        if self.src_vm.region_code == self.dst_vm.region_code:
            return self.base_loss
        link = self.engine.env.topology.link(*link_key)
        weather = min(1.0, link.process.factor(self.engine.sim.now))
        return min(0.9, self.base_loss + self.weather_loss * (1.0 - weather))

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)
        lost = self._rng.random() < self._loss_probability()

        def _done(_session) -> None:
            if lost:
                self.batches_lost += 1
                self._m_lost.inc()
            else:
                on_delivered(batch)

        from repro.transfer.session import TransferSession

        TransferSession(
            self.engine.env.network,
            TransferPlan.direct(self.src_vm, self.dst_vm, label="ship-udp"),
            batch.size_bytes,
            chunk_size=64 * 1024.0,
            meter=self.engine.env.meter,
            on_complete=_done,
            ack_overhead=False,  # no acknowledgement round-trip
            transport="udp",  # no congestion window on the wire
        ).start()

    @property
    def loss_rate(self) -> float:
        return self.batches_lost / self.batches_shipped if self.batches_shipped else 0.0

    @classmethod
    def factory(cls, base_loss: float = 0.005, weather_loss: float = 0.25):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(engine, src_vms[0], dst_vm, base_loss, weather_loss)

        return build


class BlobShipping:
    """Stage through the destination region's blob store (the baseline)."""

    def __init__(self, engine: SageEngine, src_vm: VM, dst_vm: VM) -> None:
        self.engine = engine
        self.src_vm = src_vm
        self.dst_vm = dst_vm
        self.store = engine.env.blob(dst_vm.region_code)
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self._seq = 0
        self._inst = _ShipInstruments(
            engine, "blob", src_vm.region_code, dst_vm.region_code
        )

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)
        name = f"ship/{self.src_vm.region_code}/{self._seq}"
        self._seq += 1

        def _staged(obj) -> None:
            self.store.get(self.dst_vm, name, on_done=lambda _o: on_delivered(batch))

        self.store.put(self.src_vm, name, batch.size_bytes, on_done=_staged)

    @classmethod
    def factory(cls):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(engine, src_vms[0], dst_vm)

        return build
