"""Shipping backends: how partial aggregates cross the wide area.

The streaming runtime is backend-agnostic; three backends implement the
comparison the evaluation keeps returning to:

* :class:`SageShipping` — the managed substrate: batches travel over a
  decision-manager plan (parallel helpers / multi-datacenter paths) that
  is refreshed as the environment drifts;
* :class:`DirectShipping` — one plain TCP flow per batch, no awareness;
* :class:`BlobShipping` — the cloud's out-of-the-box answer: stage the
  batch into the destination region's object store, then read it back.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.cloud.vm import VM
from repro.core.engine import SageEngine
from repro.streaming.events import Batch
from repro.transfer.plan import TransferPlan

DeliveryCallback = Callable[[Batch], None]


class _ShipInstruments:
    """Shared observability plumbing for shipping backends.

    One span per batch covers ship → arrival; its duration is the
    wide-area delivery latency and ``bps`` the achieved link throughput.
    """

    __slots__ = ("_obs", "_on", "_backend", "_link", "_m_bytes", "_m_batches")

    def __init__(self, engine: SageEngine, backend: str, src: str, dst: str):
        obs = engine.observer
        self._obs = obs
        self._on = obs.enabled
        self._backend = backend
        self._link = f"{src}->{dst}"
        self._m_bytes = obs.counter(
            "ship_bytes_total", backend=backend, link=self._link
        )
        self._m_batches = obs.counter(
            "ship_batches_total", backend=backend, link=self._link
        )

    def wrap(
        self, batch: Batch, on_delivered: DeliveryCallback
    ) -> DeliveryCallback:
        """Count the batch; return a delivery callback closing its span."""
        if not self._on:
            return on_delivered
        self._m_bytes.inc(batch.size_bytes)
        self._m_batches.inc()
        span = self._obs.start_span(
            "ship.batch",
            backend=self._backend,
            link=self._link,
            bytes=batch.size_bytes,
            records=len(batch.records),
        )

        def _delivered(b: Batch) -> None:
            span.finish()
            if span.duration > 0:
                span.attrs["bps"] = batch.size_bytes / span.duration
            on_delivered(b)

        return _delivered


class ShippingBackend(Protocol):
    """Moves batches from one site to the aggregation site."""

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        ...  # pragma: no cover - protocol

    @property
    def bytes_shipped(self) -> float:
        ...  # pragma: no cover - protocol


class DirectShipping:
    """One unmanaged flow per batch, source VM to aggregation VM."""

    def __init__(self, engine: SageEngine, src_vm: VM, dst_vm: VM, streams: int = 1):
        self.engine = engine
        self.src_vm = src_vm
        self.dst_vm = dst_vm
        self.streams = streams
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self._inst = _ShipInstruments(
            engine, "direct", src_vm.region_code, dst_vm.region_code
        )

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)
        self.engine.transfers.execute(
            TransferPlan.direct(self.src_vm, self.dst_vm, streams=self.streams,
                                label="ship-direct"),
            batch.size_bytes,
            on_complete=lambda _s: on_delivered(batch),
        )

    @classmethod
    def factory(cls, streams: int = 1):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(engine, src_vms[0], dst_vm, streams=streams)

        return build


class SageShipping:
    """Batches ride a decision-managed plan, refreshed periodically.

    Building a full managed transfer per (small) batch would pay planning
    overhead per batch; instead the backend asks the Decision Manager for
    a plan once and re-asks every ``plan_ttl`` seconds so route choice
    follows the environment.
    """

    def __init__(
        self,
        engine: SageEngine,
        src_region: str,
        dst_region: str,
        n_nodes: int = 3,
        plan_ttl: float = 60.0,
        intrusiveness: float | None = None,
        coordination_latency: float | None = None,
    ) -> None:
        self.engine = engine
        self.src_region = src_region
        self.dst_region = dst_region
        self.n_nodes = n_nodes
        self.plan_ttl = plan_ttl
        self.intrusiveness = intrusiveness
        if coordination_latency is None:
            # Each item is registered with the Decision Manager, matched to
            # routes and acknowledged: two control round-trips plus DM
            # processing. This fixed per-item cost is why blob staging is
            # competitive for tiny files (experiment E8) — the managed
            # machinery only pays off once transfer time dominates.
            rtt = engine.env.topology.rtt(src_region, dst_region)
            coordination_latency = 2.0 * rtt + 0.1
        self.coordination_latency = coordination_latency
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self.plans_built = 0
        self._plan: TransferPlan | None = None
        self._plan_expiry = -1.0
        self._inst = _ShipInstruments(engine, "sage", src_region, dst_region)

    def _current_plan(self) -> TransferPlan:
        now = self.engine.sim.now
        if self._plan is None or now >= self._plan_expiry:
            if self.src_region == self.dst_region:
                # Site-local delivery: one intra-datacenter hop, no WAN
                # planning needed.
                vms = self.engine.deployment.vms(self.src_region)
                self._plan = TransferPlan.direct(
                    vms[0], vms[-1], label="ship-sage-local"
                )
            else:
                self._plan = self.engine.decisions.build_plan(
                    self.src_region,
                    self.dst_region,
                    self.n_nodes,
                    intrusiveness=self.intrusiveness,
                    label=f"ship-sage:{self.src_region}->{self.dst_region}",
                )
            self._plan_expiry = now + self.plan_ttl
            self.plans_built += 1
        return self._plan

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)

        def _start() -> None:
            self.engine.transfers.execute(
                self._current_plan(),
                batch.size_bytes,
                on_complete=lambda _s: on_delivered(batch),
            )

        self.engine.sim.schedule(self.coordination_latency, _start)

    @classmethod
    def factory(cls, n_nodes: int = 3, plan_ttl: float = 60.0,
                intrusiveness: float | None = None,
                coordination_latency: float | None = None):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(
                engine,
                src_vms[0].region_code,
                dst_vm.region_code,
                n_nodes=n_nodes,
                plan_ttl=plan_ttl,
                intrusiveness=intrusiveness,
                coordination_latency=coordination_latency,
            )

        return build


class UdpShipping:
    """Datagram shipping for latency-critical geographical streams.

    The protocol extension the system design reserves for streaming data:
    batches travel as UDP datagram trains — no congestion window (the
    flow runs at NIC/link-share rate even on long-RTT paths) and no
    acknowledgement round-trip, so delivery latency drops; in exchange,
    a batch crossing a link in bad weather can be *lost*. Lost batches
    are counted, never retried — staleness beats reliability for this
    class of data, and the windowed aggregation downstream tolerates
    gaps.
    """

    def __init__(
        self,
        engine: SageEngine,
        src_vm: VM,
        dst_vm: VM,
        base_loss: float = 0.005,
        weather_loss: float = 0.25,
    ) -> None:
        if not 0 <= base_loss < 1:
            raise ValueError("base_loss must be in [0, 1)")
        if not 0 <= weather_loss < 1:
            raise ValueError("weather_loss must be in [0, 1)")
        self.engine = engine
        self.src_vm = src_vm
        self.dst_vm = dst_vm
        self.base_loss = base_loss
        self.weather_loss = weather_loss
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self.batches_lost = 0
        self._rng = engine.sim.rngs.get(
            f"udp/{src_vm.region_code}->{dst_vm.region_code}"
        )
        self._inst = _ShipInstruments(
            engine, "udp", src_vm.region_code, dst_vm.region_code
        )
        self._m_lost = engine.observer.counter(
            "ship_batches_lost_total",
            backend="udp",
            link=f"{src_vm.region_code}->{dst_vm.region_code}",
        )

    def _loss_probability(self) -> float:
        """Loss grows as the link's weather worsens."""
        link_key = (self.src_vm.region_code, self.dst_vm.region_code)
        if self.src_vm.region_code == self.dst_vm.region_code:
            return self.base_loss
        link = self.engine.env.topology.link(*link_key)
        weather = min(1.0, link.process.factor(self.engine.sim.now))
        return min(0.9, self.base_loss + self.weather_loss * (1.0 - weather))

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)
        lost = self._rng.random() < self._loss_probability()

        def _done(_session) -> None:
            if lost:
                self.batches_lost += 1
                self._m_lost.inc()
            else:
                on_delivered(batch)

        from repro.transfer.session import TransferSession

        TransferSession(
            self.engine.env.network,
            TransferPlan.direct(self.src_vm, self.dst_vm, label="ship-udp"),
            batch.size_bytes,
            chunk_size=64 * 1024.0,
            meter=self.engine.env.meter,
            on_complete=_done,
            ack_overhead=False,  # no acknowledgement round-trip
            transport="udp",  # no congestion window on the wire
        ).start()

    @property
    def loss_rate(self) -> float:
        return self.batches_lost / self.batches_shipped if self.batches_shipped else 0.0

    @classmethod
    def factory(cls, base_loss: float = 0.005, weather_loss: float = 0.25):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(engine, src_vms[0], dst_vm, base_loss, weather_loss)

        return build


class BlobShipping:
    """Stage through the destination region's blob store (the baseline)."""

    def __init__(self, engine: SageEngine, src_vm: VM, dst_vm: VM) -> None:
        self.engine = engine
        self.src_vm = src_vm
        self.dst_vm = dst_vm
        self.store = engine.env.blob(dst_vm.region_code)
        self.bytes_shipped = 0.0
        self.batches_shipped = 0
        self._seq = 0
        self._inst = _ShipInstruments(
            engine, "blob", src_vm.region_code, dst_vm.region_code
        )

    def ship(self, batch: Batch, on_delivered: DeliveryCallback) -> None:
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        on_delivered = self._inst.wrap(batch, on_delivered)
        name = f"ship/{self.src_vm.region_code}/{self._seq}"
        self._seq += 1

        def _staged(obj) -> None:
            self.store.get(self.dst_vm, name, on_done=lambda _o: on_delivered(batch))

        self.store.put(self.src_vm, name, batch.size_bytes, on_done=_staged)

    @classmethod
    def factory(cls):
        def build(engine: SageEngine, src_vms: list[VM], dst_vm: VM):
            return cls(engine, src_vms[0], dst_vm)

        return build
