"""Declarative description of a geo-streaming job.

A :class:`StreamJob` says *what* to compute (operators, windows,
aggregate) and *where* data is born (one :class:`SiteSpec` per producing
region); the runtime turns it into running sites. Keeping the description
separate from execution lets the same job run under different shipping
backends and batching policies — which is exactly how the comparison
experiments are written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.config import RecordPlaneConfig
from repro.flow.policy import FlowConfig
from repro.streaming.batching import BatchPolicy, HybridBatchPolicy
from repro.streaming.operators import AggregateFn, Operator, builtin_aggregate
from repro.streaming.sources import StreamSource
from repro.streaming.windows import TumblingWindows
from repro.simulation.units import KB


@dataclass
class SiteSpec:
    """One producing site of a streaming job."""

    region: str
    sources: list[StreamSource]
    #: Per-record operators applied before windowed aggregation.
    operators: list[Operator] = field(default_factory=list)
    #: VMs to use at this site (None = all deployment VMs there).
    n_vms: int | None = None

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError(f"site {self.region} needs at least one source")


@dataclass
class StreamJob:
    """A complete geo-distributed streaming analysis."""

    name: str
    sites: list[SiteSpec]
    aggregation_region: str
    #: Window assigner shared by all sites (event-time).
    windows: object = field(default_factory=lambda: TumblingWindows(10.0))
    #: Mergeable aggregate applied per (window, key).
    aggregate: AggregateFn = field(default_factory=lambda: builtin_aggregate("mean"))
    #: Batching policy factory (one batcher per site).
    batch_policy_factory: Callable[[], BatchPolicy] = field(
        default_factory=lambda: (lambda: HybridBatchPolicy(256 * KB, 2.0))
    )
    #: Ship raw records instead of site-local partials (ablation arm:
    #: quantifies what local aggregation saves on the WAN).
    ship_raw_records: bool = False
    #: Event-time slack before closing windows at each site.
    watermark_lag: float = 2.0
    #: Wait this long after a window's first partial reaches the
    #: aggregator before emitting the merged result.
    finalize_grace: float = 5.0
    #: Flow-control and overload behaviour (``None`` = legacy unbounded
    #: buffers, no backpressure — exactly the pre-flow semantics).
    flow: FlowConfig | None = None
    #: Record-plane selection: ``None`` defers to the process default
    #: (:func:`repro.config.default_record_plane` — columnar), a pinned
    #: :class:`~repro.config.RecordPlaneConfig` overrides it per job.
    record_plane: RecordPlaneConfig | None = None

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("job needs at least one site")
        regions = [s.region for s in self.sites]
        if len(set(regions)) != len(regions):
            raise ValueError(f"duplicate site regions: {regions}")
        if self.finalize_grace < 0 or self.watermark_lag < 0:
            raise ValueError("grace/lag must be non-negative")

    def site_regions(self) -> list[str]:
        return [s.region for s in self.sites]
