"""Stream records and wide-area batches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.lineage import BatchTrace


@dataclass(frozen=True)
class Record:
    """One stream event.

    ``event_time`` is when the phenomenon happened (source clock);
    end-to-end latency is always measured against event time, so queueing,
    batching and WAN delays all show up in it.
    """

    event_time: float
    key: str
    value: Any
    origin: str = ""
    size_bytes: float = 200.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("record size must be positive")


@dataclass
class Batch:
    """A set of records (or partial aggregates) packed for the WAN."""

    records: list[Record]
    origin: str
    created_at: float
    seq: int = 0
    #: Causal trace context stamped at cut time; shared across retries,
    #: duplicates, and checkpoint replay of the same batch object.
    trace: BatchTrace | None = None

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a batch cannot be empty")

    @property
    def size_bytes(self) -> float:
        return sum(r.size_bytes for r in self.records)

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def oldest_event_time(self) -> float:
        return min(r.event_time for r in self.records)
