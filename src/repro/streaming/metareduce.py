"""Multi-site MapReduce with a Meta-Reducer.

The pattern behind the A-Brain deployment: the application's resource
needs exceed what one datacenter will grant, so a MapReduce stage runs in
*each* datacenter over its local partition, and the per-site reducer
outputs (many partial-result files) are shipped to a single Meta-Reducer
site that merges them into the global result. Wide-area shipping of those
partial files is the dominant cost — and the piece the transfer substrate
accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.engine import SageEngine
from repro.simulation.units import MB
from repro.streaming.events import Batch, Record


@dataclass
class MapReduceSiteSpec:
    """One site's share of the job."""

    region: str
    #: Sizes (bytes) of the partial-result files the site produces.
    partial_files: list[float]
    #: Seconds of site-local compute before partials start flowing.
    compute_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.partial_files:
            raise ValueError(f"site {self.region} produces no partials")
        if any(sz <= 0 for sz in self.partial_files):
            raise ValueError("partial file sizes must be positive")


@dataclass
class MetaReduceReport:
    """Outcome of one multi-site run."""

    completion_time: float
    transfer_time: float
    files_delivered: int
    bytes_delivered: float
    per_site_transfer_time: dict[str, float]

    @property
    def mean_file_time(self) -> float:
        return self.transfer_time / self.files_delivered if self.files_delivered else 0.0


class MetaReducer:
    """Runs the shipping phase of a multi-site MapReduce to completion.

    ``shipping_factory(engine, src_vms, dst_vm)`` builds the backend per
    site — the same factories the streaming runtime uses (Sage, direct,
    blob), so backends are compared on identical workloads.
    """

    def __init__(
        self,
        engine: SageEngine,
        sites: list[MapReduceSiteSpec],
        reducer_region: str,
        shipping_factory,
        files_in_flight_per_site: int = 4,
        reduce_rate: float = 200 * MB,
    ) -> None:
        if not sites:
            raise ValueError("need at least one map site")
        self.engine = engine
        self.sites = sites
        self.reducer_region = reducer_region
        reducer_vms = engine.deployment.vms(reducer_region)
        if not reducer_vms:
            raise ValueError(f"no VMs in reducer region {reducer_region}")
        self.reducer_vm = reducer_vms[0]
        self.files_in_flight = files_in_flight_per_site
        self.reduce_rate = reduce_rate
        self._backends = {}
        for spec in sites:
            src_vms = engine.deployment.vms(spec.region)
            if not src_vms:
                raise ValueError(f"no VMs in map region {spec.region}")
            self._backends[spec.region] = shipping_factory(
                engine, src_vms, self.reducer_vm
            )

    # ------------------------------------------------------------------
    def run(self, timeout: float = 7 * 24 * 3600.0) -> MetaReduceReport:
        """Execute shipping + final reduce; blocks in simulated time."""
        start = self.engine.sim.now
        state = {
            "delivered": 0,
            "bytes": 0.0,
            "site_done_at": {},
            "all_shipped_at": None,
        }
        total_files = sum(len(s.partial_files) for s in self.sites)

        for spec in self.sites:
            self._start_site(spec, state, start)

        deadline = start + timeout
        while state["delivered"] < total_files and self.engine.sim.now < deadline:
            self.engine.run_until(min(self.engine.sim.now + 10.0, deadline))
        if state["delivered"] < total_files:
            raise TimeoutError(
                f"meta-reduce shipped {state['delivered']}/{total_files} "
                f"files before timeout"
            )
        transfer_end = self.engine.sim.now
        # Final reduce pass over everything received.
        reduce_time = state["bytes"] / self.reduce_rate
        self.engine.run_until(transfer_end + reduce_time)
        return MetaReduceReport(
            completion_time=self.engine.sim.now - start,
            transfer_time=transfer_end - start,
            files_delivered=state["delivered"],
            bytes_delivered=state["bytes"],
            per_site_transfer_time={
                region: t - start for region, t in state["site_done_at"].items()
            },
        )

    def _start_site(self, spec: MapReduceSiteSpec, state: dict, start: float) -> None:
        backend = self._backends[spec.region]
        queue = list(enumerate(spec.partial_files))
        outstanding = {"n": 0}

        def _pump() -> None:
            while queue and outstanding["n"] < self.files_in_flight:
                idx, size = queue.pop(0)
                outstanding["n"] += 1
                record = Record(
                    event_time=self.engine.sim.now,
                    key=f"{spec.region}/part-{idx:05d}",
                    value=None,
                    origin=spec.region,
                    size_bytes=size,
                )
                batch = Batch([record], spec.region, self.engine.sim.now, seq=idx)
                backend.ship(batch, _delivered)

        def _delivered(batch: Batch) -> None:
            outstanding["n"] -= 1
            state["delivered"] += 1
            state["bytes"] += batch.size_bytes
            if not queue and outstanding["n"] == 0:
                state["site_done_at"][spec.region] = self.engine.sim.now
            _pump()

        self.engine.sim.schedule(spec.compute_time, _pump)
