#!/usr/bin/env python
"""Quickstart: cost/time-aware wide-area transfers in five minutes.

Provisions a small deployment over four cloud regions, lets the
monitoring agent learn the inter-datacenter links, then moves the same
payload three ways:

1. with no constraint — the engine picks the knee of the cost/time curve;
2. under a hard budget — fastest plan whose predicted cost fits;
3. under a deadline — cheapest plan predicted to make it.

Run: ``python examples/quickstart.py``
"""

from repro import SageSession
from repro.analysis.tables import render_table
from repro.simulation.units import GB, MB, format_bytes, format_duration

SIZE = 2 * GB


def main() -> None:
    print("Provisioning 14 VMs over NEU/WEU/EUS/NUS and learning the links...")
    session = SageSession(
        deployment={"NEU": 5, "WEU": 2, "EUS": 2, "NUS": 5},
        seed=2013,
    )

    print("\nLive inter-datacenter throughput map (MB/s):")
    for row in session.link_map_rows():
        print("   " + " | ".join(f"{c:>8s}" for c in row))

    rows = []
    print(f"\nTransferring {format_bytes(SIZE)} NEU -> NUS three ways...")
    r = session.transfer("NEU", "NUS", SIZE)
    rows.append(["knee (default)", format_duration(r.seconds), f"${r.usd:.3f}",
                 r.nodes_used, r.schema.split("(")[0]])

    r = session.transfer("NEU", "NUS", SIZE, budget_usd=0.30)
    rows.append(["budget $0.30", format_duration(r.seconds), f"${r.usd:.3f}",
                 r.nodes_used, ""])

    r = session.transfer("NEU", "NUS", SIZE, deadline_s=90.0)
    rows.append(["deadline 90 s", format_duration(r.seconds), f"${r.usd:.3f}",
                 r.nodes_used, ""])

    print()
    print(
        render_table(
            ["constraint", "time", "cost", "nodes", "plan"],
            rows,
            title="Managed transfers (same payload, three constraints)",
        )
    )

    session.close()  # ends leases so VM time is billed
    costs = session.costs()
    print(
        f"\nSession totals: egress {format_bytes(costs.egress_bytes)} "
        f"(${costs.egress_usd:.3f}), VM leases ${costs.vm_usd:.3f} "
        f"({costs.vm_seconds / 3600:.1f} VM-hours)"
    )


if __name__ == "__main__":
    main()
